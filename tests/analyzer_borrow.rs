//! Borrow × reuse interaction, seen through the static analyzer:
//!
//! 1. Enabling borrow inference (`with_borrow(true)`) never *increases*
//!    the analyzer's worst-case dup/drop count — borrowing only removes
//!    ownership transfers (§6; Counting-Immutable-Beans-style calling
//!    convention), it never adds reference-count traffic.
//! 2. Under `PassConfig::perceus_borrowing()` the L3 (borrowable
//!    parameter) lint vanishes: the active configuration adopts exactly
//!    the masks the lint is computed from.
//!
//! Both properties are checked over `genprog`-generated random programs
//! (proptest-driven) and over the registered workloads.

use perceus_core::analysis::{Bound, LintCode};
use perceus_core::passes::PassConfig;
use perceus_core::Pipeline;
use perceus_suite::genprog::random_program;
use perceus_suite::workloads;
use proptest::prelude::*;

/// The worst-case dup+drop bound of the whole program under a config:
/// the sum over all function summaries at the final stage (entry
/// summaries alone would hide functions only reachable through
/// closures).
fn total_dup_drop_hi(config: PassConfig, p: perceus_core::Program) -> Bound {
    let analyzed = Pipeline::new(config).analyze(p).unwrap();
    let mut total = Bound::Finite(0);
    for f in &analyzed.final_stage().analysis.functions {
        let iv = f.cost.dup_drop();
        total = match (total, iv.hi) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a + b),
            _ => Bound::Unbounded,
        };
    }
    total
}

fn l3_count(config: PassConfig, p: perceus_core::Program) -> usize {
    let analyzed = Pipeline::new(config).analyze(p).unwrap();
    analyzed
        .final_stage()
        .analysis
        .diagnostics
        .count(LintCode::BorrowableParam)
}

/// `hi(borrowed) ≤ hi(owned)` in the ω-topped order.
fn not_worse(borrowed: Bound, owned: Bound) -> bool {
    match (borrowed, owned) {
        (Bound::Finite(b), Bound::Finite(o)) => b <= o,
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, Bound::Finite(_)) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Borrow inference never increases the static worst-case dup/drop
    /// count of a generated program.
    #[test]
    fn borrowing_never_increases_worst_case_dup_drop(seed in any::<u64>(), size in 8u32..40) {
        let p = random_program(seed, size);
        let owned = total_dup_drop_hi(PassConfig::perceus(), p.clone());
        let borrowed = total_dup_drop_hi(PassConfig::perceus().with_borrow(true), p);
        prop_assert!(
            not_worse(borrowed, owned),
            "borrowing increased worst-case dup/drop: {borrowed:?} > {owned:?} (seed {seed}, size {size})"
        );
    }

    /// L3 lints vanish once the configuration adopts the inferred
    /// borrow masks.
    #[test]
    fn l3_vanishes_under_borrowing_config(seed in any::<u64>(), size in 8u32..40) {
        let p = random_program(seed, size);
        let n = l3_count(PassConfig::perceus_borrowing(), p);
        prop_assert_eq!(n, 0, "L3 must vanish under perceus_borrowing (seed {}, size {})", seed, size);
    }
}

/// The same two properties on every registered workload — real programs
/// with data structures, recursion and higher-order code.
#[test]
fn borrow_properties_hold_on_workloads() {
    for w in workloads() {
        let p = perceus_lang::compile_str(w.source).unwrap();
        let owned = total_dup_drop_hi(PassConfig::perceus(), p.clone());
        let borrowed = total_dup_drop_hi(PassConfig::perceus().with_borrow(true), p.clone());
        assert!(
            not_worse(borrowed, owned),
            "{}: borrowing increased worst-case dup/drop: {borrowed:?} > {owned:?}",
            w.name
        );
        assert_eq!(
            l3_count(PassConfig::perceus_borrowing(), p),
            0,
            "{}: L3 must vanish under perceus_borrowing",
            w.name
        );
    }
}

/// Sanity: on at least one workload the owned configuration really does
/// leave borrowable parameters on the table (so the L3 lint is not
/// vacuously quiet).
#[test]
fn l3_fires_under_owned_config_somewhere() {
    let fired = workloads().iter().any(|w| {
        let p = perceus_lang::compile_str(w.source).unwrap();
        l3_count(PassConfig::perceus(), p) > 0
    });
    assert!(
        fired,
        "no workload produced an L3 lint under the owned config"
    );
}
