//! Differential test of the Okasaki red-black tree (Appendix A) against
//! a Rust reference: the benchmark's fold counts distinct inserted keys
//! with `k % 10 == 0`, which a set-based reference computes directly.
//! Also validates the red-black invariants through the read-back tree.

use perceus_runtime::machine::{DeepValue, RunConfig};
use perceus_suite::{compile_workload, run_workload, workload, Strategy};
use std::collections::HashSet;

fn reference_count(n: i64) -> i64 {
    let mut keys = HashSet::new();
    for i in 0..n {
        keys.insert((i * 17 + 3) % n);
    }
    keys.iter().filter(|k| *k % 10 == 0).count() as i64
}

#[test]
fn rbtree_counts_match_reference_for_many_sizes() {
    let w = workload("rbtree").unwrap();
    for s in [Strategy::Perceus, Strategy::Gc] {
        let compiled = compile_workload(w.source, s).unwrap();
        for n in [1, 2, 3, 7, 10, 50, 128, 129, 777, 2048, 5000] {
            let out = run_workload(&compiled, s, n, RunConfig::default()).unwrap();
            assert_eq!(
                format!("{}", out.value),
                format!("{}", reference_count(n)),
                "n={n} under {}",
                s.label()
            );
        }
    }
}

/// Builds the tree itself (instead of the count) and verifies the
/// red-black invariants on the read-back value: no red node has a red
/// child, and every root-to-leaf path has the same number of black
/// nodes; plus the keys come out in sorted order.
#[test]
fn rbtree_invariants_hold_on_the_actual_tree() {
    // Reuse the workload's source but return the tree from main.
    let src = workload("rbtree").unwrap().source.replace(
        "fun main(n: int): int {\n  fold-true(build(0, n, Leaf), 0)\n}",
        "fun main(n: int): tree {\n  build(0, n, Leaf)\n}",
    );
    assert!(src.contains("fun main(n: int): tree"), "patch applied");
    let compiled = compile_workload(&src, Strategy::Perceus).unwrap();
    for n in [1, 5, 37, 256, 999] {
        let mut m = perceus_runtime::Machine::new(
            &compiled,
            perceus_runtime::ReclaimMode::Rc,
            RunConfig::default(),
        );
        let v = m.run_entry(vec![perceus_runtime::Value::Int(n)]).unwrap();
        let deep = m.read_back(v).unwrap();
        let mut keys = Vec::new();
        let (black_height, _) = check_node(&deep, &mut keys);
        assert!(black_height > 0, "n={n}");
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted, "in-order keys sorted and distinct (n={n})");
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0);
    }
}

/// Returns (black-height, is-red); panics on an invariant violation.
fn check_node(t: &DeepValue, keys: &mut Vec<i64>) -> (usize, bool) {
    match t {
        DeepValue::Ctor(name, fields) if name == "Leaf" && fields.is_empty() => (1, false),
        DeepValue::Ctor(name, fields) if name == "Node" => {
            let [color, left, key, _value, right] = fields.as_slice() else {
                panic!("Node arity");
            };
            let is_red = matches!(color, DeepValue::Ctor(c, _) if c == "Red");
            let (lh, lred) = check_node(left, keys);
            if let DeepValue::Int(k) = key {
                keys.push(*k);
            } else {
                panic!("key not an int: {key}");
            }
            let (rh, rred) = check_node(right, keys);
            assert_eq!(lh, rh, "black heights balance");
            assert!(
                !(is_red && (lred || rred)),
                "red node must not have a red child"
            );
            (lh + usize::from(!is_red), is_red)
        }
        other => panic!("unexpected node {other}"),
    }
}
