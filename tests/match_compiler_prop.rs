//! Property test for the nested-pattern match compiler: random pattern
//! matrices and random scrutinee values, checked against a direct
//! reference matcher (first arm whose pattern matches, top-down — the
//! semantics nested `match` is specified to have).

use perceus_runtime::machine::RunConfig;
use perceus_suite::compile_and_run;
use perceus_suite::Strategy as RcStrategy;
use proptest::prelude::*;

/// The test data type:  type t { A; B(t); C(t, t); D(int) }
#[derive(Debug, Clone, PartialEq)]
enum Val {
    A,
    B(Box<Val>),
    C(Box<Val>, Box<Val>),
    D(i64),
}

#[derive(Debug, Clone)]
enum Pat {
    Wild,
    Var,
    A,
    B(Box<Pat>),
    C(Box<Pat>, Box<Pat>),
    /// `D(p)` where the field pattern is a literal, wildcard or var.
    D(Option<i64>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    let leaf = prop_oneof![Just(Val::A), (0i64..4).prop_map(Val::D)];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            Just(Val::A),
            (0i64..4).prop_map(Val::D),
            inner.clone().prop_map(|v| Val::B(Box::new(v))),
            (inner.clone(), inner).prop_map(|(a, b)| Val::C(Box::new(a), Box::new(b))),
        ]
    })
}

fn pat_strategy() -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        Just(Pat::Wild),
        Just(Pat::Var),
        Just(Pat::A),
        proptest::option::of(0i64..4).prop_map(Pat::D),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            Just(Pat::Wild),
            Just(Pat::Var),
            Just(Pat::A),
            proptest::option::of(0i64..4).prop_map(Pat::D),
            inner.clone().prop_map(|p| Pat::B(Box::new(p))),
            (inner.clone(), inner).prop_map(|(a, b)| Pat::C(Box::new(a), Box::new(b))),
        ]
    })
}

/// Reference semantics: does `p` match `v`?
fn matches(p: &Pat, v: &Val) -> bool {
    match (p, v) {
        (Pat::Wild | Pat::Var, _) => true,
        (Pat::A, Val::A) => true,
        (Pat::B(p1), Val::B(v1)) => matches(p1, v1),
        (Pat::C(p1, p2), Val::C(v1, v2)) => matches(p1, v1) && matches(p2, v2),
        (Pat::D(None), Val::D(_)) => true,
        (Pat::D(Some(k)), Val::D(n)) => k == n,
        _ => false,
    }
}

/// Renders a value as a surface-language expression.
fn val_src(v: &Val) -> String {
    match v {
        Val::A => "A".to_string(),
        Val::B(x) => format!("B({})", val_src(x)),
        Val::C(x, y) => format!("C({}, {})", val_src(x), val_src(y)),
        Val::D(n) => format!("D({n})"),
    }
}

/// Renders a pattern, generating distinct variable names.
fn pat_src(p: &Pat, next: &mut u32) -> String {
    match p {
        Pat::Wild => "_".to_string(),
        Pat::Var => {
            *next += 1;
            format!("v{next}")
        }
        Pat::A => "A".to_string(),
        Pat::B(x) => format!("B({})", pat_src(x, next)),
        Pat::C(x, y) => {
            let a = pat_src(x, next);
            let b = pat_src(y, next);
            format!("C({a}, {b})")
        }
        Pat::D(None) => "D(_)".to_string(),
        Pat::D(Some(k)) => format!("D({k})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The compiled match selects the same arm as the reference matcher
    /// (or aborts when nothing matches), under full Perceus, with no
    /// leaks.
    #[test]
    fn compiled_match_agrees_with_reference(
        pats in proptest::collection::vec(pat_strategy(), 1..6),
        v in val_strategy(),
    ) {
        // Expected: index of the first matching arm (1-based), or None.
        let expected = pats.iter().position(|p| matches(p, &v));

        let mut arms = String::new();
        for (i, p) in pats.iter().enumerate() {
            let mut next = 0;
            arms.push_str(&format!("    {} -> {}\n", pat_src(p, &mut next), i + 1));
        }
        let src = format!(
            "type t {{ A; B(x: t); C(x: t, y: t); D(n: int) }}\n\
             fun main(n: int): int {{\n  match {} {{\n{arms}  }}\n}}\n",
            val_src(&v)
        );
        let out = compile_and_run(&src, RcStrategy::Perceus, 0, RunConfig::default());
        match (expected, out) {
            (Some(i), Ok(out)) => {
                prop_assert_eq!(format!("{}", out.value), format!("{}", i + 1), "{}", src);
                prop_assert_eq!(out.leaked_blocks, 0, "{}", src);
            }
            (None, Err(e)) => {
                prop_assert!(
                    format!("{e}").contains("non-exhaustive"),
                    "{src}\n{e}"
                );
            }
            (Some(i), Err(e)) => {
                return Err(TestCaseError::fail(format!(
                    "expected arm {i} but failed: {e}\n{src}"
                )));
            }
            (None, Ok(out)) => {
                return Err(TestCaseError::fail(format!(
                    "expected match failure but got {}\n{src}",
                    out.value
                )));
            }
        }
    }
}
