//! Quantitative reuse-analysis quality gates: the paper's headline
//! optimization claims pinned as regression tests, so a pass change
//! that silently degrades reuse fails CI.

use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workload, Strategy};

fn reuse_rate(name: &str, n: i64) -> (f64, perceus_runtime::Stats) {
    let w = workload(name).expect("registered");
    let c = compile_workload(w.source, Strategy::Perceus).unwrap();
    let out = run_workload(&c, Strategy::Perceus, n, RunConfig::default()).unwrap();
    assert_eq!(out.leaked_blocks, 0, "{name}");
    (out.stats.reuse_rate(), out.stats)
}

/// §2.5: "every Node is reused in the fast path without doing any
/// allocations" — on unique trees the insertion path is ≈ fully reused.
#[test]
fn rbtree_reuse_rate_above_85_percent() {
    let (rate, _) = reuse_rate("rbtree", 4_000);
    assert!(rate > 0.85, "rbtree reuse rate {rate:.3}");
}

/// map over a fresh list reuses every input cell (half of all
/// constructions: build allocates n, map reuses n).
#[test]
fn map_reuses_every_input_cell() {
    let (rate, st) = reuse_rate("map", 5_000);
    assert!((rate - 0.5).abs() < 0.01, "rate {rate:.3}");
    assert_eq!(st.reuses, 5_000);
}

/// The FBIP traversal does 3 reuses per node and zero fresh
/// allocations beyond the build (+1 closure).
#[test]
fn fbip_tmap_allocates_nothing_in_traversal() {
    let w = workload("tmap").unwrap();
    let c = compile_workload(w.source, Strategy::Perceus).unwrap();
    let out = run_workload(&c, Strategy::Perceus, 3_000, RunConfig::default()).unwrap();
    assert_eq!(out.stats.allocations, 3_001);
    assert_eq!(out.stats.reuses, 9_000);
}

/// Merge sort on a unique list is largely in-place: the split/merge
/// cells are recycled rather than reallocated.
#[test]
fn msort_is_mostly_in_place() {
    let (rate, st) = reuse_rate("msort", 2_000);
    assert!(
        rate > 0.75,
        "msort reuse rate {rate:.3} (allocs {} reuses {})",
        st.allocations,
        st.reuses
    );
}

/// The queue's reversal recycles every Cons: the whole run allocates
/// far less than it constructs.
#[test]
fn queue_reversal_reuses() {
    let (rate, _) = reuse_rate("queue", 3_000);
    assert!(rate > 0.5, "queue reuse rate {rate:.3}");
}

/// Sharing defeats reuse, as §4 observes on deriv: the rate collapses
/// relative to rbtree.
#[test]
fn sharing_suppresses_reuse_on_deriv() {
    let (rate, _) = reuse_rate("deriv", 200);
    let (rb, _) = reuse_rate("rbtree", 1_000);
    assert!(
        rate < rb / 2.0,
        "deriv {rate:.3} should be far below rbtree {rb:.3}"
    );
}

/// rbtree-ck (checkpointing) lowers the reuse rate relative to rbtree
/// but keeps it meaningful — the shared spine copies, the unshared
/// parts still update in place (§2.5's persistence paragraph).
#[test]
fn rbtree_ck_keeps_partial_reuse() {
    let (ck, _) = reuse_rate("rbtree-ck", 3_000);
    let (rb, _) = reuse_rate("rbtree", 3_000);
    assert!(ck > 0.2, "rbtree-ck rate {ck:.3}");
    assert!(ck < rb, "checkpointing must hurt: {ck:.3} vs {rb:.3}");
}

/// Reuse specialization's skipped writes only ever appear when reuse
/// fires, and they are a large fraction of rbtree's field writes.
#[test]
fn reuse_specialization_skips_rbtree_writes() {
    let w = workload("rbtree").unwrap();
    let c = compile_workload(w.source, Strategy::Perceus).unwrap();
    let out = run_workload(&c, Strategy::Perceus, 4_000, RunConfig::default()).unwrap();
    let total = out.stats.field_writes + out.stats.skipped_writes;
    let frac = out.stats.skipped_writes as f64 / total as f64;
    assert!(frac > 0.4, "skipped fraction {frac:.3}");
}
