//! Executable counterparts of the paper's theorems, checked over the
//! whole benchmark suite and every pass configuration.
//!
//! * **Lemma 1** — a Perceus translation only inserts `dup`/`drop`:
//!   erasing the insertion output recovers the input program.
//! * **Theorem 1 (soundness)** — the reference-counted machine computes
//!   the same value (and output) as the standard semantics of Fig. 6.
//! * **Theorem 2/4 (garbage-free)** — with the auditor running every few
//!   steps, every heap block stays reachable from the machine roots; and
//!   after the final result is dropped the heap is empty.
//! * **Theorem 3 (syntax-directed ⊆ declarative)** — everything the
//!   passes emit satisfies the linear resource discipline, checked by
//!   the resource checker.

use perceus_core::check as linear;
use perceus_core::ir::{erase_program, Program};
use perceus_core::passes::{insert, normalize, Ablation, PassConfig, Pipeline};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, oracle_run, run_workload, workloads, Strategy};

fn lowered(src: &str) -> Program {
    perceus_lang::compile_str(src).expect("suite programs compile")
}

/// Lemma 1: erase(insert(e)) == e, for every suite program.
#[test]
fn lemma1_insertion_only_adds_dup_drop() {
    for w in workloads() {
        let mut p = lowered(w.source);
        normalize::normalize_program(&mut p);
        let before = p.clone();
        insert::insert_program(&mut p).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let erased = erase_program(&p);
        for ((_, fa), (_, fb)) in before.funs().zip(erased.funs()) {
            assert_eq!(
                fa.body, fb.body,
                "{}: erasure must recover `{}`",
                w.name, fa.name
            );
        }
    }
}

/// Theorem 3: every strategy and ablation produces linear code.
#[test]
fn theorem3_all_pass_outputs_are_linear() {
    let mut configs: Vec<(String, PassConfig)> = vec![
        ("perceus".into(), PassConfig::perceus()),
        ("no-opt".into(), PassConfig::perceus_no_opt()),
        ("scoped".into(), PassConfig::scoped()),
        ("borrowing".into(), PassConfig::perceus_borrowing()),
    ];
    for ab in [
        Ablation::Reuse,
        Ablation::ReuseSpec,
        Ablation::DropSpec,
        Ablation::Fuse,
        Ablation::Inline,
    ] {
        configs.push((
            format!("perceus-without-{ab:?}"),
            PassConfig::perceus().without(ab),
        ));
    }
    for w in workloads() {
        for (name, cfg) in &configs {
            let p = Pipeline::new(cfg.clone())
                .run(lowered(w.source))
                .unwrap_or_else(|e| panic!("{} under {name}: {e}", w.name));
            linear::check_program(&p)
                .unwrap_or_else(|e| panic!("{} under {name}: {e}\n{p}", w.name));
        }
    }
}

/// Theorem 1: machine result == oracle result, for every strategy.
#[test]
fn theorem1_machine_agrees_with_standard_semantics() {
    for w in workloads() {
        let (oracle_value, oracle_output) = oracle_run(w.source, w.test_n, 2_000_000_000)
            .unwrap_or_else(|e| panic!("oracle {}: {e}", w.name));
        for s in Strategy::ALL {
            let c = compile_workload(w.source, s)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, s.label()));
            let out = run_workload(&c, s, w.test_n, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, s.label()));
            assert_eq!(
                out.value,
                oracle_value,
                "{}({}) under {}",
                w.name,
                w.test_n,
                s.label()
            );
            assert_eq!(out.output, oracle_output, "{} output", w.name);
        }
    }
}

/// Theorem 2/4: the periodic auditor passes and the end state is empty,
/// for both rc strategies, on every workload.
#[test]
fn theorem2_garbage_free_audited() {
    for w in workloads() {
        for s in [Strategy::Perceus, Strategy::PerceusNoOpt] {
            let c = compile_workload(w.source, s).unwrap();
            let config = RunConfig::new().with_audit_every(Some(97));
            let out = run_workload(&c, s, w.test_n, config)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, s.label()));
            // refs.pk intentionally demonstrates reference cells; its
            // cells are reclaimed too (no cycles are formed), so even
            // there the end state must be empty.
            assert_eq!(
                out.leaked_blocks,
                0,
                "{} under {} left garbage",
                w.name,
                s.label()
            );
        }
    }
}

/// The scoped baseline is balanced (no leaks), just not garbage-free
/// *during* the run: its peak memory exceeds Perceus's.
#[test]
fn scoped_is_balanced_but_retains_more() {
    let w = perceus_suite::workload("map").unwrap();
    let perceus = run_workload(
        &compile_workload(w.source, Strategy::Perceus).unwrap(),
        Strategy::Perceus,
        2_000,
        RunConfig::default(),
    )
    .unwrap();
    let scoped = run_workload(
        &compile_workload(w.source, Strategy::Scoped).unwrap(),
        Strategy::Scoped,
        2_000,
        RunConfig::default(),
    )
    .unwrap();
    assert_eq!(scoped.leaked_blocks, 0);
    // §2.2: under scoped rc both lists are live across the map; under
    // Perceus the input is reclaimed while the output is built.
    assert!(
        scoped.stats.peak_live_words as f64 >= 1.9 * perceus.stats.peak_live_words as f64,
        "scoped {} vs perceus {}",
        scoped.stats.peak_live_words,
        perceus.stats.peak_live_words
    );
    // And it executes strictly more rc operations.
    assert!(scoped.stats.rc_ops() > perceus.stats.rc_ops());
}

/// The §6 borrowing extension: same results, strictly fewer rc
/// operations on inspection-heavy code, balanced heap at exit (the
/// caller releases after each borrowed call) — but no longer
/// garbage-free *during* the run, which is exactly the trade-off §6
/// describes.
#[test]
fn borrowing_extension_reduces_rc_ops() {
    use perceus_suite::compile_with_config;
    for w in workloads() {
        let (oracle_value, _) = oracle_run(w.source, w.test_n, 2_000_000_000).unwrap();
        let owned = run_workload(
            &compile_workload(w.source, Strategy::Perceus).unwrap(),
            Strategy::Perceus,
            w.test_n,
            RunConfig::default(),
        )
        .unwrap();
        let borrowed = run_workload(
            &compile_with_config(w.source, PassConfig::perceus_borrowing()).unwrap(),
            Strategy::Perceus,
            w.test_n,
            RunConfig::default(),
        )
        .unwrap();
        assert_eq!(borrowed.value, oracle_value, "{}", w.name);
        assert_eq!(borrowed.leaked_blocks, 0, "{} leaked", w.name);
        assert!(
            borrowed.stats.rc_ops() <= owned.stats.rc_ops(),
            "{}: borrowing must not add rc ops ({} vs {})",
            w.name,
            borrowed.stats.rc_ops(),
            owned.stats.rc_ops()
        );
    }
    // On the inspection-heavy rbtree (is-red, fold) the reduction is
    // strict.
    let w = perceus_suite::workload("rbtree").unwrap();
    let owned = run_workload(
        &compile_workload(w.source, Strategy::Perceus).unwrap(),
        Strategy::Perceus,
        w.test_n,
        RunConfig::default(),
    )
    .unwrap();
    let borrowed = run_workload(
        &compile_with_config(w.source, PassConfig::perceus_borrowing()).unwrap(),
        Strategy::Perceus,
        w.test_n,
        RunConfig::default(),
    )
    .unwrap();
    assert!(
        borrowed.stats.rc_ops() < owned.stats.rc_ops(),
        "rbtree: {} vs {}",
        borrowed.stats.rc_ops(),
        owned.stats.rc_ops()
    );
}

/// Exact-count adequacy (Appendix D.3 lower bound) is enforced by the
/// auditor during `theorem2_garbage_free_audited`; this test drives the
/// heap-level checker directly on a mid-run snapshot.
#[test]
fn audit_detects_planted_leak() {
    use perceus_runtime::audit::check_heap;
    use perceus_runtime::heap::{BlockTag, Heap, ReclaimMode};
    use perceus_runtime::Value;
    let mut h = Heap::new(ReclaimMode::Rc);
    let kept = h.alloc(BlockTag::Ctor(perceus_core::ir::CtorId(2)), Box::new([]));
    let _lost = h.alloc(
        BlockTag::Ctor(perceus_core::ir::CtorId(2)),
        Box::new([Value::Int(1)]),
    );
    let err = check_heap(&h, &[kept]).unwrap_err();
    assert!(err.contains("unreachable"), "{err}");
}
