//! Driver-level features: tracing through the run API, custom GC
//! policies, and pipeline determinism.

use perceus_core::passes::{PassConfig, Pipeline};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workload, Strategy};

/// Tracing can be enabled per run and surfaces the event tail.
#[test]
fn run_outcome_exposes_trace_tail() {
    let w = workload("map").unwrap();
    let c = compile_workload(w.source, Strategy::Perceus).unwrap();
    let config = RunConfig::new().with_trace_capacity(Some(32));
    let out = run_workload(&c, Strategy::Perceus, 20, config).unwrap();
    let tail = out.trace_tail.expect("tracing enabled");
    assert!(tail.contains("free"), "{tail}");
    assert!(tail.lines().count() <= 32);
    // Without tracing, no tail.
    let out = run_workload(&c, Strategy::Perceus, 20, RunConfig::default()).unwrap();
    assert!(out.trace_tail.is_none());
}

/// The pass pipeline is deterministic: compiling the same program twice
/// yields structurally identical functions.
#[test]
fn pipeline_is_deterministic() {
    let src = workload("rbtree").unwrap().source;
    let run = || {
        let p = perceus_lang::compile_str(src).unwrap();
        let p = Pipeline::new(PassConfig::perceus()).run(p).unwrap();
        perceus_core::ir::pretty::program_to_string(&p)
    };
    assert_eq!(run(), run());
}

/// GC policy knobs are honored: a tiny threshold collects often, a
/// huge one never does.
#[test]
fn gc_policy_is_respected() {
    let w = workload("rbtree").unwrap();
    let c = compile_workload(w.source, Strategy::Gc).unwrap();
    let eager = run_workload(
        &c,
        Strategy::Gc,
        500,
        RunConfig::new().with_gc(Some(perceus_runtime::gc::GcConfig {
            initial_threshold: 64,
            growth_factor: 1.2,
        })),
    )
    .unwrap();
    let lazy = run_workload(
        &c,
        Strategy::Gc,
        500,
        RunConfig::new().with_gc(Some(perceus_runtime::gc::GcConfig {
            initial_threshold: 1 << 30,
            growth_factor: 2.0,
        })),
    )
    .unwrap();
    assert!(eager.stats.gc_collections > 0);
    assert_eq!(lazy.stats.gc_collections, 0);
    assert_eq!(eager.value, lazy.value);
    assert!(eager.stats.peak_live_words < lazy.stats.peak_live_words);
}

/// Strategy metadata is complete and self-consistent.
#[test]
fn strategy_metadata() {
    for s in Strategy::ALL {
        assert!(!s.label().is_empty());
        assert!(!s.paper_column().is_empty());
        assert_eq!(
            s.is_rc(),
            s.reclaim_mode() == perceus_runtime::ReclaimMode::Rc
        );
    }
}
