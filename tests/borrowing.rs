//! End-to-end tests of the §6 borrowing extension: inference decisions
//! on real programs, code shape, and the semantics trade-offs.

use perceus_core::ir::pretty::program_to_string;
use perceus_core::passes::{borrow, normalize, PassConfig};
use perceus_core::Pipeline;
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_with_config, run_workload, Strategy};

/// On rbtree, inference borrows the inspection helpers (`is-red`,
/// `fold-true`'s tree) and keeps the reuse-consumed `ins`/`insert`
/// parameters owned.
#[test]
fn rbtree_inference_decisions() {
    let src = perceus_suite::workload("rbtree").unwrap().source;
    let mut p = perceus_lang::compile_str(src).unwrap();
    normalize::normalize_program(&mut p);
    // Reuse first (the pipeline ordering), then inference.
    perceus_core::passes::reuse::reuse_program(
        &mut p,
        &perceus_core::passes::reuse::ReuseConfig::default(),
    );
    let masks = borrow::infer_borrows(&p);
    let by_name = |name: &str| {
        let id = p.find_fun(name).unwrap_or_else(|| panic!("{name} missing"));
        masks[id.0 as usize].clone()
    };
    assert!(by_name("is-red")[0], "is-red only inspects: borrowed");
    assert!(by_name("fold-true")[0], "fold-true only inspects: borrowed");
    assert!(!by_name("ins")[0], "ins's tree is consumed by reuse: owned");
    assert!(
        !by_name("insert")[0],
        "insert passes t to owned positions: owned"
    );
    assert!(
        by_name("main").iter().all(|b| !b),
        "entry params always owned"
    );
}

/// The generated code for a borrowed `is-red` contains no rc operation
/// at all — the §6 motivation, visible in the output.
#[test]
fn borrowed_is_red_is_rc_free() {
    let simple = r#"
type color { Red; Black }
type tree { Leaf; Node(c: color, l: tree, k: int, v: bool, r: tree) }
fun is-red(t: tree): bool {
  match t {
    Node(Red) -> True
    _ -> False
  }
}
fun main(n: int): int { if is-red(Leaf) then 1 else 0 }
"#;
    let mut p = perceus_lang::compile_str(simple).unwrap();
    p = Pipeline::new(PassConfig::perceus_borrowing())
        .run(p)
        .unwrap();
    let printed = program_to_string(&p);
    let is_red = printed
        .split("fun is-red")
        .nth(1)
        .unwrap()
        .split("fun main")
        .next()
        .unwrap();
    assert!(
        !is_red.contains("dup") && !is_red.contains("drop"),
        "borrowed is-red must be rc-free:\n{is_red}"
    );
}

/// Borrowing preserves results and balance on every workload at its
/// default-ish size (larger than the theorem test's `test_n`).
#[test]
fn borrowing_preserves_results_at_scale() {
    for (name, n) in [("rbtree", 3_000i64), ("msort", 2_000), ("queue", 2_000)] {
        let w = perceus_suite::workload(name).unwrap();
        let owned = run_workload(
            &compile_with_config(w.source, PassConfig::perceus()).unwrap(),
            Strategy::Perceus,
            n,
            RunConfig::default(),
        )
        .unwrap();
        let borrowed = run_workload(
            &compile_with_config(w.source, PassConfig::perceus_borrowing()).unwrap(),
            Strategy::Perceus,
            n,
            RunConfig::default(),
        )
        .unwrap();
        assert_eq!(borrowed.value, owned.value, "{name}");
        assert_eq!(borrowed.leaked_blocks, 0, "{name}");
        assert!(
            borrowed.stats.rc_ops() <= owned.stats.rc_ops(),
            "{name}: {} vs {}",
            borrowed.stats.rc_ops(),
            owned.stats.rc_ops()
        );
    }
}

/// Borrowing must not regress reuse: the reuse-beats-borrowing ordering
/// keeps rbtree's in-place rate intact.
#[test]
fn borrowing_keeps_reuse_rate() {
    let w = perceus_suite::workload("rbtree").unwrap();
    let owned = run_workload(
        &compile_with_config(w.source, PassConfig::perceus()).unwrap(),
        Strategy::Perceus,
        3_000,
        RunConfig::default(),
    )
    .unwrap();
    let borrowed = run_workload(
        &compile_with_config(w.source, PassConfig::perceus_borrowing()).unwrap(),
        Strategy::Perceus,
        3_000,
        RunConfig::default(),
    )
    .unwrap();
    assert!(
        (borrowed.stats.reuse_rate() - owned.stats.reuse_rate()).abs() < 0.02,
        "{} vs {}",
        borrowed.stats.reuse_rate(),
        owned.stats.reuse_rate()
    );
}

/// Explicit `borrow` annotations in the surface language are honored
/// even with inference disabled, and inference never demotes them.
#[test]
fn explicit_borrow_annotations() {
    let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun len(borrow xs: list<int>, acc: int): int {
  match xs {
    Cons(_, t) -> len(t, acc + 1)
    Nil -> acc
  }
}

fun build(i: int, n: int): list<int> {
  if i >= n then Nil else Cons(i, build(i + 1, n))
}

fun main(n: int): int {
  val xs = build(0, n)
  len(xs, 0) + len(xs, 0)
}
"#;
    // Default pipeline (inference off): the annotation still applies.
    let out = run_workload(
        &compile_with_config(src, PassConfig::perceus()).unwrap(),
        Strategy::Perceus,
        200,
        RunConfig::default(),
    )
    .unwrap();
    assert_eq!(format!("{}", out.value), "400");
    assert_eq!(out.leaked_blocks, 0);
    // The two len() calls add **zero** rc traffic: xs is walked borrowed
    // both times and released after the second call.
    let plain_src = src.replace("borrow xs", "xs");
    let plain = run_workload(
        &compile_with_config(&plain_src, PassConfig::perceus()).unwrap(),
        Strategy::Perceus,
        200,
        RunConfig::default(),
    )
    .unwrap();
    assert!(
        out.stats.rc_ops() < plain.stats.rc_ops(),
        "annotated {} vs plain {}",
        out.stats.rc_ops(),
        plain.stats.rc_ops()
    );
}

/// An explicitly borrowed parameter with a consuming use stays sound:
/// the body retains before consuming (svar-dup), the caller releases.
#[test]
fn explicit_borrow_with_owning_use_is_sound() {
    let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun keep(borrow xs: list<int>): list<int> { xs }

fun main(n: int): int {
  match keep(Cons(n, Nil)) {
    Cons(x, _) -> x
    Nil -> 0
  }
}
"#;
    let out = run_workload(
        &compile_with_config(src, PassConfig::perceus()).unwrap(),
        Strategy::Perceus,
        7,
        RunConfig::default(),
    )
    .unwrap();
    assert_eq!(format!("{}", out.value), "7");
    assert_eq!(out.leaked_blocks, 0);
}

/// Entry-point parameters cannot be borrowed (the host passes owned
/// values); the front end rejects the annotation.
#[test]
fn borrow_on_main_is_rejected() {
    let err = perceus_lang::compile_str("fun main(borrow n: int): int { n }").unwrap_err();
    assert!(err.message.contains("entry-point"), "{err}");
}

/// `borrow` stays usable as an ordinary identifier.
#[test]
fn borrow_is_a_soft_keyword() {
    let src = "fun f(borrow: int): int { borrow + 1 }\nfun main(n: int): int { f(n) }";
    let out = run_workload(
        &compile_with_config(src, PassConfig::perceus()).unwrap(),
        Strategy::Perceus,
        41,
        RunConfig::default(),
    )
    .unwrap();
    assert_eq!(format!("{}", out.value), "42");
}
