//! Property-based tests: random well-formed programs are pushed through
//! every pipeline configuration, and the paper's theorems are checked
//! for each — far beyond the hand-written suite.

use perceus_core::check as linear;
use perceus_core::ir::{erase_program, wf};
use perceus_core::passes::{insert, normalize, Ablation, PassConfig, Pipeline};
use perceus_runtime::code;
use perceus_runtime::machine::{Machine, RunConfig};
use perceus_runtime::standard::{to_deep, Oracle, SValue};
use perceus_runtime::{ReclaimMode, Value};
use perceus_suite::genprog::random_program;
use proptest::prelude::*;

const ORACLE_FUEL: u64 = 5_000_000;

/// Debug-build frames are fat and proptest explores adversarial shapes;
/// run each case on a roomy stack so depth never flakes the suite.
fn with_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn test thread")
        .join()
        .expect("test thread must not panic")
}

fn configs() -> Vec<(String, PassConfig, ReclaimMode)> {
    let mut out = vec![
        ("perceus".into(), PassConfig::perceus(), ReclaimMode::Rc),
        (
            "no-opt".into(),
            PassConfig::perceus_no_opt(),
            ReclaimMode::Rc,
        ),
        ("scoped".into(), PassConfig::scoped(), ReclaimMode::Rc),
        ("gc".into(), PassConfig::erased(), ReclaimMode::Gc),
        ("arena".into(), PassConfig::erased(), ReclaimMode::Arena),
    ];
    out.push((
        "perceus-borrowing".into(),
        PassConfig::perceus_borrowing(),
        ReclaimMode::Rc,
    ));
    for ab in [
        Ablation::Reuse,
        Ablation::ReuseSpec,
        Ablation::DropSpec,
        Ablation::Fuse,
    ] {
        out.push((
            format!("perceus-without-{ab:?}"),
            PassConfig::perceus().without(ab),
            ReclaimMode::Rc,
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random programs are well-formed, and every configuration agrees
    /// with the oracle, passes the linear checker, audits garbage-free,
    /// and leaves an empty heap.
    #[test]
    fn pipeline_respects_all_theorems(seed in any::<u64>(), size in 8u32..64) {
        with_stack(move || run_pipeline_case(seed, size)).unwrap();
    }

    /// Lemma 1 on random programs: erasing insertion output recovers
    /// the normalized input exactly.
    #[test]
    fn lemma1_on_random_programs(seed in any::<u64>(), size in 8u32..64) {
        let mut p = random_program(seed, size);
        normalize::normalize_program(&mut p);
        let before = p.clone();
        insert::insert_program(&mut p).unwrap();
        let erased = erase_program(&p);
        for ((_, fa), (_, fb)) in before.funs().zip(erased.funs()) {
            prop_assert_eq!(&fa.body, &fb.body, "seed {}", seed);
        }
    }

    /// Determinism: the same seed and configuration give the same
    /// statistics (the machine and heap have no hidden nondeterminism).
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        let mut program = random_program(seed, 32);
        normalize::normalize_program(&mut program);
        let compiled_prog = Pipeline::new(PassConfig::perceus()).run(program).unwrap();
        let compiled = code::compile(&compiled_prog).unwrap();
        let run = || {
            let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
            let v = m.run_entry(vec![Value::Int(3)]).unwrap();
            m.drop_result(v).unwrap();
            m.heap.stats
        };
        prop_assert_eq!(run(), run());
    }
}

/// The body of `pipeline_respects_all_theorems`, on its own stack.
fn run_pipeline_case(seed: u64, size: u32) -> Result<(), String> {
    {
        let mut program = random_program(seed, size);
        // The generator leaves capture lists empty; normalization fills
        // them (and establishes ANF) exactly as in the real pipeline.
        normalize::normalize_program(&mut program);
        wf::check_program(&program).expect("generated program well-formed");

        // Oracle value first (erased program, plain semantics).
        let erased = erase_program(&program);
        let mut oracle = Oracle::new(&erased, ORACLE_FUEL).with_max_depth(100_000);
        let oracle_out = oracle.run_entry(vec![SValue::Int(3)]);
        let oracle_deep = match oracle_out {
            Ok(v) => to_deep(&v, &erased.types),
            Err(e) => {
                // Generated programs always terminate; only aborts (none
                // generated) or fuel could fail, and fuel is generous.
                panic!("oracle failed on seed {seed}: {e}");
            }
        };

        for (name, cfg, mode) in configs() {
            let compiled_prog = Pipeline::new(cfg)
                .run(program.clone())
                .unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}"));
            if mode == ReclaimMode::Rc {
                linear::check_program(&compiled_prog)
                    .unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}\n{compiled_prog}"));
            }
            let compiled = code::compile(&compiled_prog)
                .unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}"));
            let mut m = Machine::new(
                &compiled,
                mode,
                RunConfig::new()
                    .with_audit_every(Some(7))
                    .with_step_limit(Some(50_000_000)),
            );
            let v = m
                .run_entry(vec![Value::Int(3)])
                .unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}"));
            let deep = m.read_back(v).unwrap();
            if deep != oracle_deep {
                return Err(format!(
                    "{name} (seed {seed}): machine {deep} vs oracle {oracle_deep}"
                ));
            }
            m.drop_result(v).unwrap();
            if mode == ReclaimMode::Rc && m.heap.live_blocks() != 0 {
                return Err(format!(
                    "{name} (seed {seed}) leaked {} blocks",
                    m.heap.live_blocks()
                ));
            }
        }
    }
    Ok(())
}

/// Regression: the fuzzer's seed 10388505666114613092 (and the shrunk
/// 504/13) exposed the audit firing at `&x` — a state *inside* the
/// expanded drop-reuse where the dismantled cell's fields transiently
/// dangle (exactly the states Theorem 4's side condition excludes).
/// Without fusion the child drops precede the claim, so the window is
/// observable; with fusion they cancel. Both must audit cleanly.
#[test]
fn regression_unfused_drop_reuse_window() {
    for (seed, size) in [(10388505666114613092u64, 51u32), (504, 13)] {
        with_stack(move || run_pipeline_case(seed, size))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
