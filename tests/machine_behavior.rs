//! Machine-level behavioral tests: tail calls, closures, aborts, step
//! limits, deep data, and the §2.6 constant-stack claim.

use perceus_runtime::machine::RunConfig;
use perceus_runtime::RuntimeError;
use perceus_suite::{compile_and_run, compile_workload, run_workload, Strategy, SuiteError};

/// Tail calls must not grow the continuation stack: a 10-million
/// iteration loop completes (a frame-pushing machine would hold 10M
/// frames; at ~50 bytes each that is half a gigabyte and seconds of
/// allocation — instead this runs flat).
#[test]
fn tail_calls_run_in_constant_stack() {
    let src = r#"
fun countdown(n: int, acc: int): int {
  if n == 0 then acc else countdown(n - 1, acc + 1)
}
fun main(n: int): int { countdown(n, 0) }
"#;
    let out = compile_and_run(src, Strategy::Perceus, 10_000_000, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", out.value), "10000000");
}

/// The FBIP traversal of §2.6 is all tail calls: it maps a tree far
/// deeper than any native stack could handle if the machine recursed.
#[test]
fn fbip_traversal_is_stackless_on_degenerate_trees() {
    // A left spine of 200k nodes: the recursive tmap would need 200k
    // continuation frames just to descend; the visitor program needs
    // none.
    let src = r#"
type tree { Tip; Bin(left: tree, value: int, right: tree) }
type visitor {
  Done
  BinR(right: tree, value: int, visit: visitor)
  BinL(left: tree, value: int, visit: visitor)
}
type direction { Up; Down }

fun tmap-fbip(f: (int) -> int, t: tree, visit: visitor, d: direction): tree {
  match d {
    Down -> match t {
      Bin(l, x, r) -> tmap-fbip(f, l, BinR(r, x, visit), Down)
      Tip -> tmap-fbip(f, Tip, visit, Up)
    }
    Up -> match visit {
      Done -> t
      BinR(r, x, v) -> tmap-fbip(f, r, BinL(t, f(x), v), Down)
      BinL(l, x, v) -> tmap-fbip(f, Bin(l, x, t), v, Up)
    }
  }
}

fun spine(i: int, n: int, acc: tree): tree {
  if i >= n then acc
  else spine(i + 1, n, Bin(acc, i, Tip))
}

fun tsum(t: tree, acc: int): int {
  match t {
    Tip -> acc
    Bin(l, x, r) -> tsum(r, tsum(l, acc) + x)  // fine: left-deep only
  }
}

fun main(n: int): int {
  val t = spine(0, n, Tip)
  val t2 = tmap-fbip(fn(x) { x + 1 }, t, Done, Down)
  match t2 {
    Bin(_, x, _) -> x
    Tip -> 0 - 1
  }
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 200_000, RunConfig::default()).unwrap();
    // Top of the spine holds value n-1, mapped to n.
    assert_eq!(format!("{}", out.value), "200000");
    assert_eq!(out.leaked_blocks, 0);
}

/// A non-exhaustive match aborts with a useful message instead of
/// undefined behavior.
#[test]
fn match_failure_aborts() {
    let src = r#"
type t { A; B }
fun f(x: t): int {
  match x { A -> 1 }
}
fun main(n: int): int { f(B) }
"#;
    let err = compile_and_run(src, Strategy::Perceus, 0, RunConfig::default()).unwrap_err();
    match err {
        SuiteError::Runtime(RuntimeError::Abort(msg)) => {
            assert!(msg.contains("non-exhaustive"), "{msg}");
            assert!(msg.contains('f'), "{msg}");
        }
        other => panic!("expected abort, got {other}"),
    }
}

/// Division by zero is a checked runtime error.
#[test]
fn division_by_zero_is_checked() {
    let src = "fun main(n: int): int { 10 / n }";
    let err = compile_and_run(src, Strategy::Perceus, 0, RunConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        SuiteError::Runtime(RuntimeError::DivisionByZero)
    ));
    let ok = compile_and_run(src, Strategy::Perceus, 5, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", ok.value), "2");
}

/// The step limit interrupts runaway programs.
#[test]
fn step_limit_interrupts() {
    let src = r#"
fun spin(n: int): int { spin(n) }
fun main(n: int): int { spin(n) }
"#;
    let config = RunConfig::new().with_step_limit(Some(10_000));
    let err = compile_and_run(src, Strategy::Perceus, 0, config).unwrap_err();
    assert!(matches!(
        err,
        SuiteError::Runtime(RuntimeError::StepLimit(10_000))
    ));
}

/// Closures capture their environment by value and can escape the
/// scope that created them; the captured cells are freed exactly when
/// the closure is.
#[test]
fn escaping_closures_keep_captures_alive() {
    let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun adder-over(xs: list<int>): (int) -> int {
  // The closure captures xs; xs must stay alive inside it.
  fn(y) { head-or(xs, y) }
}

fun head-or(xs: list<int>, d: int): int {
  match xs {
    Cons(x, _) -> x + d
    Nil -> d
  }
}

fun main(n: int): int {
  val f = adder-over(Cons(n, Nil))
  f(1) + f(2)
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 40, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", out.value), "83");
    assert_eq!(out.leaked_blocks, 0);
}

/// `println` output is ordered and identical across strategies.
#[test]
fn println_order_is_deterministic() {
    let src = r#"
fun emit(i: int, n: int): int {
  if i >= n then i
  else {
    println(i * i)
    emit(i + 1, n)
  }
}
fun main(n: int): int { emit(0, n) }
"#;
    let want: Vec<i64> = (0..6).map(|i| i * i).collect();
    for s in Strategy::ALL {
        let out = compile_and_run(src, s, 6, RunConfig::default()).unwrap();
        assert_eq!(out.output, want, "{}", s.label());
    }
}

/// Exercising the suite at a larger size under the GC with a small
/// threshold stresses collection during active recursion.
#[test]
fn gc_collects_during_deep_recursion() {
    // rbtree creates real garbage: every insertion replaces the spine
    // of the old tree. (map would not: input and output list are both
    // reachable for the whole run.)
    let w = perceus_suite::workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Gc).unwrap();
    let config = RunConfig::new().with_gc(Some(perceus_runtime::gc::GcConfig {
        initial_threshold: 256,
        growth_factor: 1.5,
    }));
    let out = run_workload(&compiled, Strategy::Gc, 2_000, config).unwrap();
    assert_eq!(format!("{}", out.value), "200");
    assert!(out.stats.gc_collections > 0);
    assert!(out.stats.gc_swept > 0, "replaced spines are garbage");
    // Peak memory stays bounded well below total allocation.
    assert!(out.stats.peak_live_words < out.stats.alloc_words);
}

/// Scoped RC defeats tail calls (drops after the recursive call), so
/// deep recursion holds every frame — but the machine's continuation
/// stack is heap-allocated, so it degrades gracefully instead of
/// overflowing a native stack.
#[test]
fn scoped_deep_recursion_holds_frames_but_completes() {
    let src = r#"
fun countdown(n: int, acc: int): int {
  if n == 0 then acc else countdown(n - 1, acc + 1)
}
fun main(n: int): int { countdown(n, 0) }
"#;
    let out = compile_and_run(src, Strategy::Scoped, 300_000, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", out.value), "300000");
    assert_eq!(out.leaked_blocks, 0);
}

/// The same machine handles interleaved strategies without any global
/// state: compile once per strategy, run many times, results agree.
#[test]
fn repeated_runs_share_compiled_code() {
    let w = perceus_suite::workload("nqueens").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    for _ in 0..3 {
        for n in [4, 5, 6] {
            let a = run_workload(&compiled, Strategy::Perceus, n, RunConfig::default()).unwrap();
            let b = run_workload(&compiled, Strategy::Perceus, n, RunConfig::default()).unwrap();
            assert_eq!(a.value, b.value);
            assert_eq!(a.stats, b.stats, "stats deterministic across runs");
        }
    }
}
