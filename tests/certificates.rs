//! End-to-end validation of the potential-based cost certificates
//! (`perceus_core::analysis::potential` / `certificate`, surfaced as
//! `perceus-suite certify`):
//!
//! * the acceptance floor — a clear majority of the registered
//!   workloads get *finite linear* worst-case allocation bounds,
//!   including recursive functions;
//! * a recursive FBIP workload is certified `allocs ∈ O(1)` (in fact
//!   exactly 0) under the `perceus` strategy, and profiler replay
//!   confirms the measurement at three input sizes;
//! * every inferred certificate passes the independent checker, across
//!   every baseline workload × every RC strategy;
//! * the checker is not vacuous: lowering any single finite coordinate
//!   of an inferred certificate (property-tested over random
//!   coordinates) produces a claim the checker rejects;
//! * profiler replay finds zero measured counts exceeding certified
//!   bounds on any baseline workload at any ladder size.

use perceus_core::analysis::{check_cert_set, Atom, CertSet, COUNTERS};
use perceus_suite::certify::{certify_final, replay_sizes, replay_workload, StageCerts};
use perceus_suite::{compile_workload, run_workload, workload, workloads, Strategy};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Index of the fresh-allocation counter in certificate slot order.
fn alloc_slot() -> usize {
    COUNTERS.iter().position(|c| *c == "alloc").unwrap()
}

/// Certification is the expensive step (seconds per workload), and
/// several tests plus every proptest case need the same certificate
/// sets — so they share one process-wide cache keyed by
/// (workload, strategy).
fn certified(widx: usize, sidx: usize) -> Arc<StageCerts> {
    type Cache = Mutex<HashMap<(usize, usize), Arc<StageCerts>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = cache.lock().unwrap();
    g.entry((widx, sidx))
        .or_insert_with(|| {
            let w = &workloads()[widx];
            let s = Strategy::ALL[sidx];
            Arc::new(
                certify_final(w.source, s)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, s.label())),
            )
        })
        .clone()
}

fn perceus_idx() -> usize {
    Strategy::ALL
        .iter()
        .position(|s| *s == Strategy::Perceus)
        .unwrap()
}

#[test]
fn linear_alloc_bounds_cover_the_acceptance_floor() {
    let alloc = alloc_slot();
    let mut finite_workloads = Vec::new();
    let mut finite_recursive = 0usize;
    for (i, w) in workloads().iter().enumerate() {
        let sc = certified(i, perceus_idx());
        assert!(sc.errors.is_empty(), "{}: {:?}", w.name, sc.errors);
        let mut any = false;
        for c in &sc.certs.funs {
            if c.worst[alloc].as_finite().is_some() {
                any = true;
                if c.recursive {
                    finite_recursive += 1;
                }
            }
        }
        if any {
            finite_workloads.push(w.name);
        }
    }
    // The issue's floor is 8 workloads and 3 recursive functions; the
    // current analysis clears it with room (13 / 27 at the time of
    // writing), so a regression has margin to show up before the gate
    // trips.
    assert!(
        finite_workloads.len() >= 8,
        "only {} workloads have a finite worst-case alloc bound: {finite_workloads:?}",
        finite_workloads.len()
    );
    assert!(
        finite_recursive >= 3,
        "only {finite_recursive} recursive functions have finite alloc bounds"
    );
}

#[test]
fn recursive_fbip_workload_is_certified_constant_alloc_and_replay_confirms() {
    let alloc = alloc_slot();
    let widx = workloads().iter().position(|w| w.name == "tmap").unwrap();
    let sc = certified(widx, perceus_idx());

    // The in-place tree-map kernels are recursive and certified to
    // allocate exactly 0 fresh cells in the FBIP regime (every Node
    // rebuilt from a reuse token) — allocs ∈ O(1), Thm. 2's
    // garbage-free bound at its strongest.
    for name in ["tmap-fbip", "tmap"] {
        let c = sc
            .certs
            .fun_cert(name)
            .unwrap_or_else(|| panic!("no cert for {name}"));
        assert!(c.recursive, "{name} is recursive");
        assert_eq!(
            c.fbip[alloc].as_const(),
            Some(0),
            "{name}'s FBIP alloc bound should be the constant 0"
        );
    }

    // Replay at three sizes: the conditional FBIP check must fire (the
    // kernels' uniqueness tests all hit on a fresh tree) and nothing
    // may exceed a bound.
    let w = workload("tmap").unwrap();
    let sizes = replay_sizes(&w);
    assert_eq!(sizes.len(), 3);
    for &n in &sizes {
        let r = replay_workload(&w, Strategy::Perceus, n, &sc).unwrap();
        assert!(r.exceedances.is_empty(), "n={n}: {:?}", r.exceedances);
        assert!(r.fbip_frames_checked >= 1, "n={n}: FBIP check never fired");

        // And directly: the tmap-fbip frame ran in the FBIP regime and
        // allocated nothing.
        let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
        let out = run_workload(
            &compiled,
            Strategy::Perceus,
            n,
            perceus_runtime::machine::RunConfig::new().with_profile(true),
        )
        .unwrap();
        let prof = out.profile.unwrap();
        let frame = prof
            .per_frame()
            .into_iter()
            .find(|f| f.frame.name(&compiled) == "tmap-fbip")
            .expect("tmap-fbip ran");
        assert_eq!(
            frame.counts.unique_tests, frame.counts.unique_hits,
            "n={n}: every uniqueness test hits on a fresh tree"
        );
        assert_eq!(
            frame.counts.allocations, 0,
            "n={n}: the FBIP kernel allocates nothing"
        );
    }
}

#[test]
fn inferred_certificates_pass_the_checker_under_every_strategy() {
    for (sidx, s) in Strategy::ALL.iter().enumerate() {
        for (widx, w) in workloads().iter().enumerate() {
            let sc = certified(widx, sidx);
            assert!(
                sc.errors.is_empty(),
                "{} under {}: {:?}",
                w.name,
                s.label(),
                sc.errors
            );
        }
    }
}

#[test]
fn replay_finds_zero_exceedances_on_every_baseline_workload() {
    for (widx, w) in workloads().iter().enumerate() {
        let sc = certified(widx, perceus_idx());
        for n in replay_sizes(w) {
            let r = replay_workload(w, Strategy::Perceus, n, &sc).unwrap();
            assert!(
                r.exceedances.is_empty(),
                "{} at n={n}: {:?}",
                w.name,
                r.exceedances
            );
        }
    }
}

// ---- downward perturbation ---------------------------------------------

/// One finite coordinate of a certificate set that can be lowered:
/// which function, which mode (worst = true), which counter slot, and
/// which coordinate of its linear bound (None = the constant, Some =
/// that atom's coefficient).
type Coord = (usize, bool, usize, Option<Atom>);

fn perturbable_coords(certs: &CertSet) -> Vec<Coord> {
    let mut out = Vec::new();
    for (fi, c) in certs.funs.iter().enumerate() {
        for (worst, bounds) in [(true, &c.worst), (false, &c.fbip)] {
            for (slot, b) in bounds.iter().enumerate() {
                if let Some(e) = b.as_finite() {
                    out.push((fi, worst, slot, None));
                    for (a, &coeff) in &e.terms {
                        if coeff >= 1 {
                            out.push((fi, worst, slot, Some(a.clone())));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Lowers the chosen coordinate by one (removing a term whose
/// coefficient reaches zero).
fn perturb(certs: &mut CertSet, (fi, worst, slot, atom): &Coord) {
    let c = &mut certs.funs[*fi];
    let bounds = if *worst { &mut c.worst } else { &mut c.fbip };
    let e = bounds[*slot]
        .as_finite()
        .expect("coord points at a finite bound");
    let mut e = e.clone();
    match atom {
        None => e.k -= 1,
        Some(a) => {
            let coeff = e.terms.get_mut(a).expect("coord points at a present atom");
            *coeff -= 1;
            if *coeff == 0 {
                e.terms.remove(a);
            }
        }
    }
    bounds[*slot] = perceus_core::analysis::SymBound::Finite(e);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Coordinate minimization leaves every published bound at the
    /// rejection boundary: lowering *any single coordinate* of *any*
    /// finite bound — random workload, random strategy, random
    /// coordinate — yields a certificate set the independent checker
    /// refuses. (The unperturbed set is accepted by construction,
    /// re-checked in `inferred_certificates_pass_the_checker_...`.)
    #[test]
    fn downward_perturbed_certificates_are_rejected(
        widx in 0..13usize,
        sidx in 0..5usize,
        pick in any::<u64>(),
    ) {
        assert_eq!(workloads().len(), 13);
        assert_eq!(Strategy::ALL.len(), 5);
        let sc = certified(widx, sidx);
        let coords = perturbable_coords(&sc.certs);
        if coords.is_empty() {
            return Ok(());
        }
        let coord = &coords[(pick % coords.len() as u64) as usize];
        let mut perturbed = sc.certs.clone();
        perturb(&mut perturbed, coord);
        let errs = check_cert_set(&sc.program, &perturbed);
        prop_assert!(
            !errs.is_empty(),
            "{} under {}: lowering {:?} went unnoticed",
            workloads()[widx].name,
            Strategy::ALL[sidx].label(),
            coord
        );
    }
}
