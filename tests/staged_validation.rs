//! End-to-end checks of the staged-verification subsystem: every pass
//! boundary is observable and checked, a broken pass is attributed to
//! its own stage with a small counterexample, and the differential
//! fuzzer agrees across every strategy (see docs/VALIDATION.md).

use perceus_core::passes::{PassConfig, PassError, PassName, Pipeline, Validation};
use perceus_suite::diff::{fuzz, FuzzConfig};
use perceus_suite::Strategy;

fn sample_program() -> perceus_core::ir::Program {
    let src = perceus_suite::workload("map").expect("map workload").source;
    perceus_lang::compile_str(src).expect("front end")
}

/// `Pipeline::stages` exposes one named snapshot per executed pass, in
/// pipeline order, for every strategy's configuration.
#[test]
fn every_strategy_exposes_named_stage_boundaries() {
    for strategy in Strategy::ALL {
        let config = strategy.pass_config().with_validation(Validation::Full);
        let trace = Pipeline::new(config)
            .stages(sample_program())
            .unwrap_or_else(|e| panic!("{}: {e}", strategy.label()));
        let names: Vec<PassName> = trace.stages().map(|(n, _)| n).collect();
        assert!(!names.is_empty(), "{}", strategy.label());
        assert_eq!(names[0], PassName::Normalize, "{}", strategy.label());
        // Order must follow PassName::ALL (the pipeline order).
        let order: Vec<usize> = names
            .iter()
            .map(|n| PassName::ALL.iter().position(|m| m == n).unwrap())
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "{}: stages out of order", strategy.label());
        // And every stage has a timing.
        assert_eq!(trace.timings().count(), names.len());
    }
}

/// An intentionally broken pass is caught by the very next check and
/// attributed to the right stage name, with a counterexample small
/// enough to read (≤ 10 top-level definitions).
#[test]
fn broken_pass_is_attributed_with_a_small_counterexample() {
    fn corrupt(p: &mut perceus_core::ir::Program) {
        use perceus_core::ir::Expr;
        let entry = p.entry.unwrap();
        let f = &mut p.funs[entry.0 as usize];
        let par = f.params[0].clone();
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = Expr::dup(par, body);
    }
    for pass in [PassName::Insert, PassName::DropSpec, PassName::Fuse] {
        let err = Pipeline::new(PassConfig::perceus().with_validation(Validation::Full))
            .with_mutation_after(pass, corrupt)
            .run(sample_program())
            .expect_err("corruption must be caught");
        assert_eq!(err.stage(), Some(pass), "wrong attribution: {err}");
        let PassError::Stage(stage) = err else {
            panic!("expected a stage error");
        };
        assert!(
            stage.counterexample_defs <= 10,
            "counterexample too large: {} defs",
            stage.counterexample_defs
        );
        assert!(!stage.counterexample.is_empty());
    }
}

/// With validation off, the same corruption sails through the pipeline
/// (the machine or final checks would catch it later, without
/// attribution) — demonstrating what the staged checks buy.
#[test]
fn validation_off_skips_per_stage_checks() {
    fn corrupt(p: &mut perceus_core::ir::Program) {
        use perceus_core::ir::Expr;
        let entry = p.entry.unwrap();
        let f = &mut p.funs[entry.0 as usize];
        let par = f.params[0].clone();
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = Expr::dup(par, body);
    }
    let result = Pipeline::new(PassConfig::perceus().with_validation(Validation::Off))
        .with_mutation_after(PassName::Fuse, corrupt)
        .run(sample_program());
    // The corruption is well-formed (only the λ¹ discipline is broken),
    // so the end-of-pipeline wf guard does not see it.
    assert!(result.is_ok());
}

/// Differential smoke: random programs agree across all five strategies
/// and the oracle, garbage-free audits included. (CI runs the larger
/// 200-iteration sweep via `perceus-suite fuzz`.)
#[test]
fn differential_fuzz_smoke_is_clean() {
    let report = fuzz(&FuzzConfig {
        seed: 0xC0FFEE,
        iters: 15,
        size: 26,
        audit_every: Some(32),
        ..FuzzConfig::default()
    });
    assert!(report.clean(), "divergences found:\n{}", report.to_json());
    assert!(report.audits > 0, "in-flight audits should have run");
}
