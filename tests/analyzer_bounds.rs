//! The static RC-cost analyzer against the running machine: the
//! worst-case interval of the entry function's summary must bound every
//! runtime `Stats` counter it models, on every standard workload and
//! every reference-counting strategy.
//!
//! The comparison maps analyzer categories onto runtime counters as
//! documented in `docs/ANALYSIS.md`:
//!
//! * `dup/drop/decref/is_unique` — the runtime only increments these
//!   when the operand is a counted heap value, so the static *executed
//!   instruction* count is an upper bound by construction (the static
//!   best case is **not** a runtime lower bound, for the same reason).
//! * `alloc + reuse_alloc` — compared jointly against
//!   `allocations + reuses` (a `Con@ru` takes either route).
//! * `free` is *not* compared: the runtime counter includes recursive
//!   frees triggered by a single `drop`, which no per-instruction count
//!   bounds.
//!
//! Also here: the stage-diff acceptance test (L2 nonzero after drop
//! specialization, zero after fusion) and exactness checks on a
//! non-recursive program where the bounds must be finite and tight.

use perceus_core::analysis::{Bound, CostInterval, LintCode};
use perceus_core::passes::PassName;
use perceus_core::Pipeline;
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workloads, Strategy};

/// Analyzes a workload source under a strategy and returns the entry
/// function's cost summary of the **final** stage (the shipped
/// program).
fn entry_cost(src: &str, strategy: Strategy) -> perceus_core::analysis::CostVector {
    let program = perceus_lang::compile_str(src).unwrap();
    let analyzed = Pipeline::new(strategy.pass_config())
        .analyze(program)
        .unwrap();
    analyzed
        .final_stage()
        .analysis
        .entry_summary()
        .expect("workloads have a main")
        .cost
}

fn check_bound(what: &str, ctx: &str, iv: CostInterval, observed: u64) {
    assert!(
        iv.covers(observed),
        "{ctx}: observed {what} = {observed} exceeds static worst case {iv}"
    );
}

#[test]
fn static_worst_case_bounds_runtime_counters_on_fig9_workloads() {
    for w in workloads().iter().filter(|w| w.in_figure9) {
        for &strategy in Strategy::ALL.iter().filter(|s| s.is_rc()) {
            let cost = entry_cost(w.source, strategy);
            let compiled = compile_workload(w.source, strategy).unwrap();
            let out = run_workload(&compiled, strategy, w.test_n, RunConfig::default()).unwrap();
            let ctx = format!("{} under {}", w.name, strategy.label());
            let s = &out.stats;
            check_bound("dups", &ctx, cost.dup, s.dups);
            check_bound("drops", &ctx, cost.drop, s.drops);
            check_bound("decrefs", &ctx, cost.decref, s.decrefs);
            check_bound("unique_tests", &ctx, cost.is_unique, s.unique_tests);
            check_bound(
                "allocations + reuses",
                &ctx,
                cost.total_allocs(),
                s.allocations + s.reuses,
            );
        }
    }
}

/// The same bounds hold on the *remaining* (non-Fig. 9) registered
/// workloads — the analyzer is not tuned to five programs.
#[test]
fn static_worst_case_bounds_runtime_counters_on_all_workloads() {
    for w in workloads().iter().filter(|w| !w.in_figure9) {
        let strategy = Strategy::Perceus;
        let cost = entry_cost(w.source, strategy);
        let compiled = compile_workload(w.source, strategy).unwrap();
        let out = run_workload(&compiled, strategy, w.test_n, RunConfig::default()).unwrap();
        let ctx = format!("{} under {}", w.name, strategy.label());
        let s = &out.stats;
        check_bound("dups", &ctx, cost.dup, s.dups);
        check_bound("drops", &ctx, cost.drop, s.drops);
        check_bound("decrefs", &ctx, cost.decref, s.decrefs);
        check_bound("unique_tests", &ctx, cost.is_unique, s.unique_tests);
        check_bound(
            "allocations + reuses",
            &ctx,
            cost.total_allocs(),
            s.allocations + s.reuses,
        );
    }
}

/// On a straight-line (non-recursive, first-order) program the bounds
/// must be *finite*, and the allocation bound tight enough to pin the
/// observed count between lo and hi.
#[test]
fn bounds_are_finite_and_tight_without_recursion() {
    let src = r#"
type pair { P(a: int, b: int) }
fun swap(p: pair): pair {
  match p { P(a, b) -> P(b, a) }
}
fun main(n: int): int {
  match swap(P(n, 2 * n)) { P(a, b) -> a - b }
}
"#;
    let cost = entry_cost(src, Strategy::Perceus);
    // No recursion, no closures: every worst case is finite.
    for (name, get) in perceus_core::analysis::cost::COST_FIELDS {
        assert!(
            !matches!(get(&cost).hi, Bound::Unbounded),
            "{name} must be finite on a straight-line program, got {}",
            get(&cost)
        );
    }
    let compiled = compile_workload(src, Strategy::Perceus).unwrap();
    let out = run_workload(&compiled, Strategy::Perceus, 7, RunConfig::default()).unwrap();
    // swap flips the pair: a = 2n, b = n, so main returns n.
    assert_eq!(out.value.to_string(), "7");
    let total = out.stats.allocations + out.stats.reuses;
    let iv = cost.total_allocs();
    assert!(iv.covers(total), "observed {total} vs {iv}");
    assert!(total >= 1, "the pair is heap-allocated");
}

/// The acceptance-criteria stage diff: on rbtree, L2 (unfused dup/drop)
/// is nonzero right after drop specialization and exactly zero after
/// fusion — the lint mirrors `passes::fuse`, so the final count is zero
/// by construction.
#[test]
fn l2_nonzero_before_fuse_zero_after_on_rbtree() {
    let src = perceus_suite::workload("rbtree").unwrap().source;
    let program = perceus_lang::compile_str(src).unwrap();
    let analyzed = Pipeline::new(Strategy::Perceus.pass_config())
        .analyze(program)
        .unwrap();
    let trend = analyzed.lint_trend(LintCode::UnfusedDupDrop);
    let at = |pass: PassName| {
        trend
            .iter()
            .find(|(p, _)| *p == pass)
            .map(|(_, n)| *n)
            .unwrap_or_else(|| panic!("{} stage missing", pass.label()))
    };
    assert!(
        at(PassName::DropSpec) > 0,
        "drop specialization leaves fusable pairs: {trend:?}"
    );
    assert_eq!(
        at(PassName::Fuse),
        0,
        "fusion must eliminate every fusable pair: {trend:?}"
    );
    // The final stage is the fuse stage under the full Perceus config.
    assert_eq!(analyzed.final_stage().pass, PassName::Fuse);
}

/// The same shape on `map` — the paper's running example — and the
/// whole trend is monotonically sensible: insertion creates the pairs,
/// fusion removes them.
#[test]
fn l2_stage_trend_on_map() {
    let src = perceus_suite::workload("map").unwrap().source;
    let program = perceus_lang::compile_str(src).unwrap();
    let analyzed = Pipeline::new(Strategy::Perceus.pass_config())
        .analyze(program)
        .unwrap();
    let trend = analyzed.lint_trend(LintCode::UnfusedDupDrop);
    // Pre-insertion stages have no dup/drop at all.
    for (pass, n) in &trend {
        if matches!(
            pass,
            PassName::Normalize | PassName::Inline | PassName::Reuse
        ) {
            assert_eq!(*n, 0, "no rc ops before insertion: {trend:?}");
        }
    }
    assert_eq!(
        trend.last().map(|(_, n)| *n),
        Some(0),
        "final stage must be fully fused: {trend:?}"
    );
}

/// Entry summaries bound a whole run, so a workload whose `main` can
/// only abort by fuel exhaustion reports `may_abort` consistently with
/// the machine's division/match-fallthrough reality — spot check that
/// the flag at least *exists* and the analyzer does not crash on every
/// registered workload at every stage.
#[test]
fn analyzer_runs_on_every_workload_at_every_stage() {
    for w in workloads() {
        for &strategy in Strategy::ALL.iter() {
            let program = perceus_lang::compile_str(w.source).unwrap();
            let analyzed = Pipeline::new(strategy.pass_config())
                .analyze(program)
                .unwrap();
            for stage in &analyzed.stages {
                assert!(
                    !stage.analysis.functions.is_empty(),
                    "{}: every function gets a summary",
                    w.name
                );
                let json = stage.analysis.to_json();
                assert!(json.starts_with('{') && json.ends_with('}'));
            }
        }
    }
}
