//! A step-by-step reproduction of the paper's Figure 1: the `map`
//! function through every transformation, with the exact shapes of
//! Fig. 1b–1g asserted on the generated code.

use perceus_core::ir::pretty::program_to_string;
use perceus_core::ir::Program;
use perceus_core::passes::{drop_spec, fuse, insert, normalize, reuse, reuse_spec};

const MAP_SRC: &str = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
"#;

fn lowered() -> Program {
    let mut p = perceus_lang::compile_str(MAP_SRC).expect("map compiles");
    normalize::normalize_program(&mut p);
    p
}

fn map_fn(p: &Program) -> String {
    let s = program_to_string(p);
    s.split("fun map").nth(1).expect("map printed").to_string()
}

/// Fig. 1b: plain insertion — dup the used binders, drop the scrutinee,
/// dup `f` before its first use; the Nil arm drops both xs and f.
#[test]
fn fig1b_insertion() {
    let mut p = lowered();
    insert::insert_program(&mut p).unwrap();
    let s = map_fn(&p);
    let cons_arm = s.split("Cons(").nth(1).unwrap();
    for needle in ["dup head", "dup tail", "drop xs", "dup f"] {
        assert!(cons_arm.contains(needle), "missing {needle}:\n{s}");
    }
    let nil_arm = s.split("Nil ->").nth(1).unwrap();
    assert!(nil_arm.contains("drop xs"), "{s}");
    assert!(nil_arm.contains("drop f"), "{s}");
    assert!(!s.contains("is-unique"), "no specialization yet: {s}");
}

/// Fig. 1c: drop specialization — the scrutinee drop becomes an
/// is-unique with child drops + free in the unique branch and a decref
/// in the shared branch.
#[test]
fn fig1c_drop_specialization() {
    let mut p = lowered();
    insert::insert_program(&mut p).unwrap();
    drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
    let s = map_fn(&p);
    assert!(s.contains("if is-unique(xs)"), "{s}");
    let unique = s
        .split("if is-unique(xs) {")
        .nth(1)
        .unwrap()
        .split("} else {")
        .next()
        .unwrap();
    assert!(unique.contains("drop head"), "{s}");
    assert!(unique.contains("drop tail"), "{s}");
    assert!(unique.contains("free xs"), "{s}");
    let shared = s.split("} else {").nth(1).unwrap();
    assert!(shared.contains("decref xs"), "{s}");
}

/// Fig. 1d: push-down + fusion — the unique branch is completely free
/// of rc operations; the binder dups move to the shared branch.
#[test]
fn fig1d_fusion() {
    let mut p = lowered();
    insert::insert_program(&mut p).unwrap();
    drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
    fuse::fuse_program(&mut p);
    let s = map_fn(&p);
    let unique = s
        .split("if is-unique(xs) {")
        .nth(1)
        .unwrap()
        .split("} else {")
        .next()
        .unwrap();
    assert!(
        !unique.contains("dup") && !unique.contains("drop h") && !unique.contains("drop t"),
        "fast path must be rc-free:\n{unique}"
    );
    assert!(unique.contains("free xs"), "{s}");
    let shared = s
        .split("} else {")
        .nth(1)
        .unwrap()
        .split('}')
        .next()
        .unwrap();
    assert!(shared.contains("dup head"), "{s}");
    assert!(shared.contains("dup tail"), "{s}");
    assert!(shared.contains("decref xs"), "{s}");
}

/// Fig. 1e: reuse analysis pairs the matched Cons with the allocated
/// Cons via a token, and insertion turns the arm's consumption into
/// drop-reuse.
#[test]
fn fig1e_reuse_tokens() {
    let mut p = lowered();
    reuse::reuse_program(&mut p, &reuse::ReuseConfig::default());
    {
        // Pre-insertion: the arm carries the annotation.
        let s = program_to_string(&p);
        assert!(s.contains("@ru"), "{s}");
        assert!(s.contains("Cons@ru"), "{s}");
    }
    insert::insert_program(&mut p).unwrap();
    let s = map_fn(&p);
    assert!(s.contains("drop-reuse xs"), "{s}");
    assert!(s.contains("Cons@ru"), "{s}");
}

/// Fig. 1f/1g: drop-reuse specialization + fusion — the unique branch
/// is just `&xs` (claim the memory), the shared branch dups the fields
/// and yields the null token.
#[test]
fn fig1g_full_pipeline() {
    let mut p = lowered();
    reuse::reuse_program(&mut p, &reuse::ReuseConfig::default());
    insert::insert_program(&mut p).unwrap();
    reuse_spec::reuse_spec_program(&mut p);
    drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
    fuse::fuse_program(&mut p);
    let s = map_fn(&p);
    let unique = s
        .split("if is-unique(xs) {")
        .nth(1)
        .unwrap()
        .split("} else {")
        .next()
        .unwrap();
    assert_eq!(unique.trim(), "&xs", "fast path is exactly &xs:\n{s}");
    let shared = s
        .split("} else {")
        .nth(1)
        .unwrap()
        .split('}')
        .next()
        .unwrap();
    assert!(shared.contains("dup head"), "{s}");
    assert!(shared.contains("dup tail"), "{s}");
    assert!(shared.contains("decref xs"), "{s}");
    assert!(shared.contains("NULL"), "{s}");
    // Reuse specialization does NOT fire on map (every field changes),
    // exactly as §2.5 says.
    assert!(!s.contains("(="), "no skip marks expected: {s}");
    // The resource checker accepts the final code (Thm. 3).
    perceus_core::check::check_program(&p).unwrap();
}

/// The whole pipeline preserves meaning: map(1..n, +1) sums correctly
/// at every intermediate stage of Fig. 1.
#[test]
fn all_stages_run_correctly() {
    use perceus_runtime::code;
    use perceus_runtime::machine::{Machine, RunConfig};
    use perceus_runtime::{ReclaimMode, Value};

    const FULL_SRC: &str = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
fun build(i: int, n: int): list<int> {
  if i >= n then Nil else Cons(i, build(i + 1, n))
}
fun sum(xs: list<int>, acc: int): int {
  match xs {
    Cons(x, xx) -> sum(xx, acc + x)
    Nil -> acc
  }
}
fun main(n: int): int { sum(map(build(0, n), fn(x) { x + 1 }), 0) }
"#;

    // Stage k = how many optimization passes run after insertion.
    for stage in 0..=4 {
        let mut p = perceus_lang::compile_str(FULL_SRC).unwrap();
        normalize::normalize_program(&mut p);
        if stage >= 3 {
            reuse::reuse_program(&mut p, &reuse::ReuseConfig::default());
        }
        insert::insert_program(&mut p).unwrap();
        if stage >= 4 {
            reuse_spec::reuse_spec_program(&mut p);
        }
        if stage >= 1 {
            drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
        }
        if stage >= 2 {
            fuse::fuse_program(&mut p);
        }
        perceus_core::check::check_program(&p).unwrap_or_else(|e| panic!("stage {stage}: {e}"));
        let compiled = code::compile(&p).unwrap();
        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let v = m.run_entry(vec![Value::Int(100)]).unwrap();
        assert_eq!(v.as_int(), Some(5050), "stage {stage}");
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0, "stage {stage} garbage-free");
    }
}
