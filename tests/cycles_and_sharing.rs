//! §2.7 feature tests: mutable references, reference cycles (§2.7.4 —
//! the one thing precise reference counting cannot reclaim), the manual
//! break-the-cycle idiom the paper recommends, and thread-shared
//! counting (§2.7.2).

use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_and_run, Strategy};

/// §2.7.4: "mutable references are the main way to construct cyclic
/// data … we leave the responsibility to the programmer to break
/// cycles". A self-referential ref leaks under reference counting — and
/// the run still completes correctly.
#[test]
fn reference_cycle_leaks_under_rc() {
    // holder = Cons(1, Nil); r = ref(holder-with-r-inside) …
    // Build the knot through a ref cell: r := Box(r).
    let src = r#"
type knot { Box(r: ref<knot>); End }

fun main(n: int): int {
  val r = ref(End)
  r := Box(r)
  n
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 7, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", out.value), "7");
    // The ref cell and the Box sustain each other: leaked.
    assert!(
        out.leaked_blocks >= 2,
        "expected the cycle to leak, got {}",
        out.leaked_blocks
    );
}

/// The paper's mitigation: explicitly clear the reference cell that
/// closes the cycle, and everything is reclaimed.
#[test]
fn breaking_the_cycle_reclaims_everything() {
    let src = r#"
type knot { Box(r: ref<knot>); End }

fun main(n: int): int {
  val r = ref(End)
  r := Box(r)
  // Break the cycle by hand before the last reference goes away.
  r := End
  n
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 7, RunConfig::default()).unwrap();
    assert_eq!(out.leaked_blocks, 0, "cycle broken: garbage-free again");
}

/// The tracing collector reclaims the same cycle without help —
/// the §2.7.4 limitation is specific to reference counting.
#[test]
fn tracing_gc_reclaims_cycles() {
    let src = r#"
type knot { Box(r: ref<knot>); End }

fun spin(i: int, n: int): int {
  if i >= n then i
  else {
    val r = ref(End)
    r := Box(r)
    spin(i + 1, n)
  }
}

fun main(n: int): int { spin(0, n) }
"#;
    // Make enough cyclic garbage to force collections.
    let gc_cfg = RunConfig::new().with_gc(Some(perceus_runtime::gc::GcConfig {
        initial_threshold: 64,
        growth_factor: 2.0,
    }));
    let out = compile_and_run(src, Strategy::Gc, 1_000, gc_cfg).unwrap();
    assert!(out.stats.gc_collections > 0, "collector must have run");
    assert!(
        out.stats.gc_swept >= 1_000,
        "cycles swept: {}",
        out.stats.gc_swept
    );
    // Under rc the same program leaks every knot.
    let out = compile_and_run(src, Strategy::Perceus, 1_000, RunConfig::default()).unwrap();
    assert!(out.leaked_blocks >= 2_000, "rc leaks all knots");
}

/// §2.7.2: after `tshare`, every rc operation on the shared structure
/// takes the sticky-negative slow path of the *local* heap — counted as
/// `local_shared_ops`, never as real atomic RMWs (`atomic_ops` stays
/// zero in any single-threaded run; atomics only happen in the
/// cross-thread shared segment, exercised by `perceus-suite parallel`).
#[test]
fn thread_shared_data_pays_atomic_ops() {
    let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun build(i: int, n: int): list<int> {
  if i >= n then Nil else Cons(i, build(i + 1, n))
}

fun sum(xs: list<int>, acc: int): int {
  match xs {
    Cons(x, xx) -> sum(xx, acc + x)
    Nil -> acc
  }
}

fun main(n: int): int {
  val xs = build(0, n)
  sum(xs, 0)
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 500, RunConfig::default()).unwrap();
    assert_eq!(out.stats.atomic_ops, 0, "no sharing, no slow path");
    assert_eq!(out.stats.local_shared_ops, 0, "no sharing, no slow path");

    let shared_src = src.replace(
        "  val xs = build(0, n)\n  sum(xs, 0)",
        "  val xs = build(0, n)\n  tshare(xs)\n  sum(xs, 0)",
    );
    let out = compile_and_run(&shared_src, Strategy::Perceus, 500, RunConfig::default()).unwrap();
    assert!(
        out.stats.local_shared_ops > 0,
        "shared data pays the slow path"
    );
    assert_eq!(out.stats.atomic_ops, 0, "single-threaded: no real atomics");
    assert_eq!(out.stats.shared_marks, 500, "every cons marked");
    assert_eq!(out.leaked_blocks, 0, "shared data still reclaimed");
}

/// Mutable state drives an imperative-style loop correctly across every
/// strategy (the §2.7.3 reference-cell semantics: read dups, write
/// drops the old value).
#[test]
fn mutable_accumulator_all_strategies() {
    let src = r#"
fun loop(i: int, n: int, acc: ref<int>): int {
  if i >= n then !acc
  else {
    acc := !acc + i
    loop(i + 1, n, acc)
  }
}

fun main(n: int): int { loop(0, n, ref(0)) }
"#;
    for s in Strategy::ALL {
        let out = compile_and_run(src, s, 100, RunConfig::default()).unwrap();
        assert_eq!(format!("{}", out.value), "4950", "{}", s.label());
        if s.is_rc() {
            assert_eq!(out.leaked_blocks, 0, "{}", s.label());
        }
    }
}
