//! Integer-literal patterns: dispatch, nesting inside constructor
//! patterns, and the abort fall-through — run end to end under Perceus.

use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_and_run, Strategy};

#[test]
fn literal_patterns_compile_and_dispatch() {
    let src = r#"
fun classify(n: int): int {
  match n {
    0 -> 100
    1 -> 200
    -1 -> 300
    _ -> n
  }
}
fun main(n: int): int {
  classify(0) + classify(1) + classify(-1) + classify(n)
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 42, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", out.value), "642");
}

#[test]
fn literal_patterns_mix_with_structure() {
    // Literal sub-patterns inside constructor patterns.
    let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun f(xs: list<int>): int {
  match xs {
    Cons(0, Nil) -> 1
    Cons(0, _) -> 2
    Cons(x, Nil) -> x * 10
    Cons(_, Cons(7, _)) -> 4
    _ -> 5
  }
}
fun main(n: int): int {
  f(Cons(0, Nil)) + f(Cons(0, Cons(9, Nil))) + f(Cons(3, Nil))
    + f(Cons(1, Cons(7, Nil))) + f(Nil)
}
"#;
    let out = compile_and_run(src, Strategy::Perceus, 0, RunConfig::default()).unwrap();
    // 1 + 2 + 30 + 4 + 5 = 42
    assert_eq!(format!("{}", out.value), "42");
    assert_eq!(out.leaked_blocks, 0);
}

#[test]
fn literal_patterns_without_default_abort() {
    let src = r#"
fun f(n: int): int {
  match n { 0 -> 1; 1 -> 2 }
}
fun main(n: int): int { f(n) }
"#;
    let ok = compile_and_run(src, Strategy::Perceus, 1, RunConfig::default()).unwrap();
    assert_eq!(format!("{}", ok.value), "2");
    let err = compile_and_run(src, Strategy::Perceus, 9, RunConfig::default()).unwrap_err();
    assert!(format!("{err}").contains("non-exhaustive"), "{err}");
}
