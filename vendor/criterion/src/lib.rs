//! A self-contained, offline drop-in for the subset of the
//! [Criterion](https://docs.rs/criterion) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! Criterion cannot be fetched; this shim keeps the `benches/` tree
//! compiling and *measuring* (wall-clock medians over timed batches)
//! with the same source code, so that when the real dependency is
//! available again nothing needs to change outside the workspace
//! manifest.
//!
//! Differences from real Criterion, by design:
//!
//! * no statistical machinery (outlier classification, regressions,
//!   HTML reports) — each benchmark reports the median of `sample_size`
//!   timed batches as ns/iter;
//! * CLI arguments are accepted and ignored, except `--quick`, which
//!   cuts the per-benchmark time budget (used by CI's bench smoke run).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget for one benchmark's measurement phase.
const BUDGET: Duration = Duration::from_millis(400);
/// Reduced budget under `--quick` (CI smoke runs).
const QUICK_BUDGET: Duration = Duration::from_millis(40);

/// The benchmark manager: configuration plus result reporting.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion {
            sample_size: 20,
            budget: if quick { QUICK_BUDGET } else { BUDGET },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), self.sample_size, self.budget, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full, self.criterion.sample_size, self.criterion.budget, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.budget,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting is immediate; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Iterations per timed batch (calibrated before sampling).
    batch: u64,
    /// Duration of each timed batch, filled during sampling.
    samples: Vec<Duration>,
    /// Whether this call is the calibration pass.
    calibrating: bool,
}

impl Bencher {
    /// Runs `payload` repeatedly, recording one timed batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut payload: F) {
        if self.calibrating {
            // Measure a single iteration to size the batches.
            let start = Instant::now();
            black_box(payload());
            self.samples.push(start.elapsed());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(payload());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibration: one un-batched run to estimate per-iteration cost.
    let mut b = Bencher {
        batch: 1,
        samples: Vec::new(),
        calibrating: true,
    };
    f(&mut b);
    let once = b.samples.first().copied().unwrap_or(Duration::ZERO);
    let per_sample = budget.as_nanos() / samples as u128;
    let batch = if once.as_nanos() == 0 {
        1000
    } else {
        (per_sample / once.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    };

    let mut b = Bencher {
        batch,
        samples: Vec::new(),
        calibrating: false,
    };
    let deadline = Instant::now() + budget * 2;
    for _ in 0..samples {
        f(&mut b);
        if Instant::now() > deadline {
            break;
        }
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / batch as f64)
        .collect();
    per_iter.sort_by(|a, c| a.total_cmp(c));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter.first().copied().unwrap_or(median);
    let hi = per_iter.last().copied().unwrap_or(median);
    println!("{name:<55} time: [{lo:>10.2} ns {median:>10.2} ns {hi:>10.2} ns]");
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
