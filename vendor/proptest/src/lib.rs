//! A self-contained, offline drop-in for the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! proptest cannot be fetched; this shim keeps the property-test suites
//! compiling and *running* with the same source code. It implements
//! random generation for the strategy combinators the tests use
//! (`Just`, ranges, tuples, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `collection::vec`, `option::of`, `sample::select`) and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its generated inputs
//!   verbatim (tests here embed seeds/sources in their messages, which
//!   serves the same diagnostic purpose);
//! * **deterministic seeding** — the RNG is seeded from the test's path
//!   so runs are reproducible; set `PROPTEST_SEED` to explore a
//!   different sequence, and `PROPTEST_CASES` to override case counts;
//! * regression files (`*.proptest-regressions`) are not consulted.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ---- RNG ------------------------------------------------------------

/// A small deterministic RNG (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Creates the deterministic RNG for a named test, honoring the
/// `PROPTEST_SEED` environment variable.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            h ^= seed;
        }
    }
    TestRng::from_seed(h)
}

// ---- configuration and errors --------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases (the `PROPTEST_CASES`
    /// environment variable overrides it).
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// A test-case failure (the `Err` of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---- the Strategy trait --------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth level and returns the next one; `depth` levels are
    /// stacked on top of `self` (the leaf strategy).
    ///
    /// The shim ignores `desired_size`/`expected_branch_size` (real
    /// proptest uses them to bias sizes); bounded depth alone guarantees
    /// termination.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = BoxedStrategy::new(self);
        for _ in 0..depth {
            cur = BoxedStrategy::new(f(cur));
        }
        cur
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A clonable, type-erased strategy (the shim's analog of proptest's
/// `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Erases a concrete strategy.
    pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self
    where
        T: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice between alternative strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `options` must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// ---- Arbitrary / any ------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The full-range strategy for `u64`.
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u64 {
    type Strategy = AnyU64;
    fn arbitrary() -> AnyU64 {
        AnyU64
    }
}

/// The coin-flip strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for a type (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---- combinator modules --------------------------------------------

/// Strategies for `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `None` one time in four, `Some(inner)` otherwise.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// An `Option` of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Strategies that sample from fixed data.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a static slice.
    pub struct Select<T: 'static>(&'static [T]);

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `items` (must be nonempty).
    pub fn select<T: Clone + 'static>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "select from an empty slice");
        Select(items)
    }
}

// ---- macros ---------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            // Bind each strategy once (shadowed by its value per case).
            $(let $arg = $strat;)+
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} case {}/{} failed: {}\ninputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, inputs
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::BoxedStrategy::new($s)),+])
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(8u32..64), &mut rng);
            assert!((8..64).contains(&v));
            let w = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn union_hits_every_option() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_rng("union");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            prop_oneof![
                Just(T::Leaf),
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::test_rng("recursive");
        for _ in 0..200 {
            assert!(depth(&Strategy::generate(&s, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, assertions and case counts.
        #[test]
        fn macro_roundtrip(x in 0i64..100, flip in any::<bool>()) {
            prop_assert!(x >= 0, "x was {}", x);
            let doubled = x * 2;
            prop_assert_eq!(doubled % 2, 0);
            if flip {
                prop_assert_eq!(doubled / 2, x, "flip branch");
            }
        }
    }
}
