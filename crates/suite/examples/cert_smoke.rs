//! Runs certificate inference over every registered workload's
//! final-stage program and reports finite alloc bounds + timing.
//!
//! ```text
//! cargo run --release -p perceus-suite --example cert_smoke
//! ```

use perceus_core::analysis::{check_cert_set, infer_certificates, SymBound};
use perceus_core::passes::Pipeline;
use perceus_suite::{workloads, Strategy};
use std::time::Instant;

fn main() {
    let mut finite_workloads = 0;
    let mut finite_recursive = 0;
    for w in workloads() {
        let program = perceus_lang::compile_str(w.source).expect("workload compiles");
        let trace = Pipeline::new(Strategy::Perceus.pass_config())
            .stages(program)
            .expect("pipeline runs");
        let p = trace.final_program();
        let t0 = Instant::now();
        let certs = infer_certificates(p);
        let infer_ms = t0.elapsed().as_millis();
        let t1 = Instant::now();
        let errs = check_cert_set(p, &certs);
        let check_ms = t1.elapsed().as_millis();
        let mut any_finite = false;
        let mut lines = Vec::new();
        for cert in &certs.funs {
            let alloc = &cert.worst[6];
            let fbip_alloc = &cert.fbip[6];
            if let SymBound::Finite(_) = alloc {
                any_finite = true;
                if cert.recursive {
                    finite_recursive += 1;
                }
            }
            lines.push(format!(
                "    {}{}: alloc ≤ {}   fbip alloc ≤ {}",
                cert.name,
                if cert.recursive { " (rec)" } else { "" },
                perceus_core::analysis::certificate::bound_human(p, cert.fun, alloc),
                perceus_core::analysis::certificate::bound_human(p, cert.fun, fbip_alloc),
            ));
        }
        if any_finite {
            finite_workloads += 1;
        }
        println!(
            "== {} ({} funs, infer {infer_ms}ms, check {check_ms}ms, {} checker errors){}",
            w.name,
            certs.funs.len(),
            errs.len(),
            if any_finite {
                ""
            } else {
                "  [NO FINITE ALLOC]"
            }
        );
        for l in lines {
            println!("{l}");
        }
        for e in &errs {
            println!("    ERROR: {e}");
        }
    }
    println!(
        "\nworkloads with ≥1 finite alloc bound: {finite_workloads}/{}",
        workloads().len()
    );
    println!("recursive functions with finite alloc: {finite_recursive}");
}
