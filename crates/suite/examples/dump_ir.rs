//! Prints the pretty-printed final-stage IR of a registered workload.
//!
//! ```text
//! cargo run -p perceus-suite --example dump_ir -- map [stage]
//! ```

use perceus_core::passes::Pipeline;
use perceus_suite::{workload, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("map");
    let w = workload(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = perceus_lang::compile_str(w.source).expect("workload compiles");
    let pipeline = Pipeline::new(Strategy::Perceus.pass_config());
    let trace = pipeline.stages(program).expect("pipeline runs");
    match args.get(1) {
        None => {
            let p = trace.final_program();
            println!("=== final ===\n{p}");
        }
        Some(stage) => {
            for (label, p) in trace.stages() {
                if label.to_string() == *stage {
                    println!("=== {label} ===\n{p}");
                }
            }
        }
    }
}
