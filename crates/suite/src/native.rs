//! Native-backend driver: runs workloads through `perceus-codegen`'s
//! compiled executor and checks them against the abstract machine.
//!
//! The contract is **schedule identity**, not just value equality: a
//! check passes only when machine and native agree on the result value,
//! the `println` output, the leak count, and all 18 deterministic
//! schedule counters ([`SCHEDULE_KEYS`]) bit-for-bit. Two executors
//! that agree on all of that executed the same sequence of RC
//! operations — the CI `codegen-gate` job runs this over every baseline
//! workload plus a differential fuzz leg of generated programs.
//!
//! Rejection paths ([`NativeError::Unsupported`]): non-RC strategies
//! (tracing-GC needs machine-rooted collection; arena is a leak
//! baseline) and budgeted/resumable execution (native code cannot
//! suspend mid-run; see `docs/CODEGEN.md`).

use crate::driver::{compile_program, compile_workload, Strategy, SuiteError};
use crate::genprog;
use crate::workloads::workload;
use perceus_codegen as codegen;
pub use perceus_codegen::{NativeBin, NativeReport};
use perceus_runtime::code::Compiled;
use perceus_runtime::machine::{Machine, RunConfig};
use perceus_runtime::value::Value;
use perceus_runtime::SCHEDULE_KEYS;
use std::fmt;
use std::time::Instant;

/// An error from the native driver (distinct from a *mismatch*, which
/// is data — see [`NativeCheck`]).
#[derive(Debug)]
pub enum NativeError {
    /// The request is outside the native backend's design envelope.
    Unsupported(String),
    /// Emit/build/run failure in `perceus-codegen`.
    Codegen(codegen::NativeError),
    /// Compilation of the program itself failed.
    Suite(SuiteError),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::Unsupported(m) => write!(f, "native backend: {m}"),
            NativeError::Codegen(e) => write!(f, "{e}"),
            NativeError::Suite(e) => write!(f, "{e}"),
        }
    }
}

impl From<codegen::NativeError> for NativeError {
    fn from(e: codegen::NativeError) -> Self {
        NativeError::Codegen(e)
    }
}

impl From<SuiteError> for NativeError {
    fn from(e: SuiteError) -> Self {
        NativeError::Suite(e)
    }
}

/// Checks a request against the native backend's design limits.
/// `budget` mirrors the machine's step-budget parameter: any `Some`
/// means the caller wants mid-run suspension, which generated code
/// (running on the Rust call stack) cannot do.
pub fn ensure_supported(strategy: Strategy, budget: Option<u64>) -> Result<(), NativeError> {
    if !strategy.is_rc() {
        return Err(NativeError::Unsupported(format!(
            "only the reference-counting strategies compile natively; `{}` needs the {:?} heap \
             and the machine's rooted environments",
            strategy.label(),
            strategy.reclaim_mode()
        )));
    }
    if budget.is_some() {
        return Err(NativeError::Unsupported(
            "budgeted/resumable execution cannot suspend native frames mid-run; \
             use the machine backend"
                .into(),
        ));
    }
    Ok(())
}

/// One executor's observation of a run: everything the differential
/// check compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecProbe {
    /// Finished with a value (vs a runtime error).
    pub ok: bool,
    /// Rendered result (the machine's `DeepValue` display) when `ok`.
    pub value: Option<String>,
    /// Stable error code (`RuntimeError::code`) when not `ok`.
    pub error_code: Option<String>,
    /// `println` output.
    pub output: Vec<i64>,
    /// The 18 schedule counters, [`SCHEDULE_KEYS`] order.
    pub counters: [u64; 18],
    /// Blocks still live after the result drop (0 = garbage-free).
    pub leaked_blocks: u64,
    /// Wall time of the run itself.
    pub wall_ns: u64,
}

/// A machine-vs-native comparison for one program at one input.
#[derive(Debug, Clone)]
pub struct NativeCheck {
    /// Program name (workload or fuzz id).
    pub name: String,
    /// Input to `main`.
    pub n: i64,
    /// What the interpreter observed.
    pub machine: ExecProbe,
    /// What the compiled executor observed.
    pub native: ExecProbe,
    /// Human-readable disagreements; empty means schedule identity.
    pub mismatches: Vec<String>,
}

impl NativeCheck {
    /// True when the executors agreed on everything.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// A batch of programs compiled both ways: interpreter-ready `Compiled`
/// plus one native executor binary holding all of them.
#[derive(Debug)]
pub struct NativeHarness {
    bin: NativeBin,
    programs: Vec<(String, Compiled)>,
}

impl NativeHarness {
    /// Builds a harness for registered workloads under `strategy`
    /// (must be an RC strategy). One `cargo build` for the whole batch.
    pub fn for_workloads(names: &[&str], strategy: Strategy) -> Result<Self, NativeError> {
        ensure_supported(strategy, None)?;
        let mut programs = Vec::with_capacity(names.len());
        for name in names {
            let w = workload(name)
                .ok_or_else(|| NativeError::Unsupported(format!("unknown workload `{name}`")))?;
            let compiled = compile_workload(w.source, strategy)?;
            programs.push((w.name.to_string(), compiled));
        }
        Self::from_programs(programs)
    }

    /// Builds a harness from already-compiled programs.
    pub fn from_programs(programs: Vec<(String, Compiled)>) -> Result<Self, NativeError> {
        let refs: Vec<(String, &Compiled)> = programs.iter().map(|(n, c)| (n.clone(), c)).collect();
        let bin = codegen::build_programs(&refs)?;
        Ok(NativeHarness { bin, programs })
    }

    /// The underlying executor binary.
    pub fn bin(&self) -> &NativeBin {
        &self.bin
    }

    /// Program names in this harness.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.programs.iter().map(|(n, _)| n.as_str())
    }

    /// Runs one program natively and normalizes its report.
    pub fn run_native(&self, name: &str, n: i64) -> Result<ExecProbe, NativeError> {
        let report = self.bin.run(name, n)?;
        probe_from_report(&report).map_err(NativeError::Codegen)
    }

    /// Runs one program on the machine (interpreter) only.
    pub fn run_machine(&self, name: &str, n: i64) -> Result<ExecProbe, NativeError> {
        let compiled = self
            .programs
            .iter()
            .find(|(pn, _)| pn == name)
            .map(|(_, c)| c)
            .ok_or_else(|| {
                NativeError::Unsupported(format!("program `{name}` is not in this harness"))
            })?;
        Ok(machine_probe(compiled, n))
    }

    /// The full differential check: run both executors, compare value,
    /// output, leak count, and all 18 counters bit-for-bit.
    pub fn check(&self, name: &str, n: i64) -> Result<NativeCheck, NativeError> {
        let machine = self.run_machine(name, n)?;
        let native = self.run_native(name, n)?;
        let mismatches = compare_probes(&machine, &native);
        Ok(NativeCheck {
            name: name.to_string(),
            n,
            machine,
            native,
            mismatches,
        })
    }
}

/// Runs `compiled` on the interpreter, observing exactly what the
/// native executor reports: run → render → drop result → stats. Runtime
/// errors are observations (the fuzz leg compares error codes and the
/// counters accumulated up to the failure), not driver errors.
pub fn machine_probe(compiled: &Compiled, n: i64) -> ExecProbe {
    let mut m = Machine::new(
        compiled,
        Strategy::Perceus.reclaim_mode(),
        RunConfig::default(),
    );
    let start = Instant::now();
    let result = m.run_entry(vec![Value::Int(n)]);
    let wall_ns = start.elapsed().as_nanos() as u64;
    match result.and_then(|v| {
        let rendered = m.read_back(v)?.to_string();
        m.drop_result(v)?;
        Ok(rendered)
    }) {
        Ok(value) => ExecProbe {
            ok: true,
            value: Some(value),
            error_code: None,
            output: m.output().to_vec(),
            counters: m.heap.stats.schedule_values(),
            leaked_blocks: m.heap.live_blocks(),
            wall_ns,
        },
        Err(e) => ExecProbe {
            ok: false,
            value: None,
            error_code: Some(e.code().to_string()),
            output: m.output().to_vec(),
            counters: m.heap.stats.schedule_values(),
            leaked_blocks: m.heap.live_blocks(),
            wall_ns,
        },
    }
}

fn probe_from_report(r: &NativeReport) -> Result<ExecProbe, codegen::NativeError> {
    for ((key, _), expected) in r.counters.iter().zip(SCHEDULE_KEYS.iter()) {
        if key != expected {
            return Err(codegen::NativeError::Report(format!(
                "counter key order mismatch: got `{key}`, expected `{expected}`"
            )));
        }
    }
    Ok(ExecProbe {
        ok: r.ok,
        value: r.value.clone(),
        error_code: r.code.clone(),
        output: r.output.clone(),
        counters: r.counter_values()?,
        leaked_blocks: r.leaked_blocks,
        wall_ns: r.wall_ns,
    })
}

/// The comparison at the heart of the gate. Returns one line per
/// disagreement; empty means the two executors ran the same schedule.
pub fn compare_probes(machine: &ExecProbe, native: &ExecProbe) -> Vec<String> {
    let mut out = Vec::new();
    if machine.ok != native.ok {
        out.push(format!(
            "outcome: machine {} vs native {}",
            outcome_label(machine),
            outcome_label(native)
        ));
    } else if machine.ok {
        if machine.value != native.value {
            out.push(format!(
                "value: machine {:?} vs native {:?}",
                machine.value.as_deref().unwrap_or(""),
                native.value.as_deref().unwrap_or("")
            ));
        }
    } else if machine.error_code != native.error_code {
        out.push(format!(
            "error code: machine {:?} vs native {:?}",
            machine.error_code.as_deref().unwrap_or(""),
            native.error_code.as_deref().unwrap_or("")
        ));
    }
    if machine.output != native.output {
        out.push(format!(
            "output: machine {} values vs native {} values (first divergence at {:?})",
            machine.output.len(),
            native.output.len(),
            machine
                .output
                .iter()
                .zip(native.output.iter())
                .position(|(a, b)| a != b)
        ));
    }
    for (i, key) in SCHEDULE_KEYS.iter().enumerate() {
        if machine.counters[i] != native.counters[i] {
            out.push(format!(
                "counter {key}: machine {} vs native {}",
                machine.counters[i], native.counters[i]
            ));
        }
    }
    if machine.leaked_blocks != native.leaked_blocks {
        out.push(format!(
            "leaked_blocks: machine {} vs native {}",
            machine.leaked_blocks, native.leaked_blocks
        ));
    }
    out
}

fn outcome_label(p: &ExecProbe) -> String {
    if p.ok {
        "ok".to_string()
    } else {
        format!("error[{}]", p.error_code.as_deref().unwrap_or("?"))
    }
}

/// Report of a machine-vs-native differential fuzz run.
#[derive(Debug)]
pub struct NativeFuzzReport {
    /// Programs generated and compiled into the batch executor.
    pub iters: u32,
    /// Checks that disagreed (empty = clean).
    pub failures: Vec<NativeCheck>,
}

/// Differential fuzz: generate `iters` random programs
/// ([`genprog::random_program`]), compile the whole batch into one
/// native executor, and check each against the machine — value/error
/// code, output, leaks, and bit-identical counters.
pub fn fuzz_native(
    seed: u64,
    iters: u32,
    size: u32,
    arg: i64,
) -> Result<NativeFuzzReport, NativeError> {
    let mut programs = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let p = genprog::random_program(seed.wrapping_add(u64::from(i)), size);
        let compiled = compile_program(p, Strategy::Perceus)?;
        programs.push((format!("g{i}"), compiled));
    }
    let harness = NativeHarness::from_programs(programs)?;
    let mut failures = Vec::new();
    for i in 0..iters {
        let check = harness.check(&format!("g{i}"), arg)?;
        if !check.passed() {
            failures.push(check);
        }
    }
    Ok(NativeFuzzReport { iters, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing-GC and arena heaps cannot back the native executor: the
    /// rejection must be explicit, not a miscompile.
    #[test]
    fn non_rc_strategies_are_rejected() {
        for strategy in [Strategy::Gc, Strategy::Arena] {
            let err = ensure_supported(strategy, None).unwrap_err();
            assert!(matches!(err, NativeError::Unsupported(_)), "{err}");
            assert!(err.to_string().contains(strategy.label()), "{err}");
        }
        // Scoped RC shares the machine's heap discipline and is fine.
        assert!(ensure_supported(Strategy::Scoped, None).is_ok());
        assert!(ensure_supported(Strategy::Perceus, None).is_ok());
    }

    /// Budgeted (resumable) execution needs mid-run suspension, which
    /// generated code running on the Rust stack cannot do.
    #[test]
    fn budgeted_execution_is_rejected() {
        let err = ensure_supported(Strategy::Perceus, Some(1000)).unwrap_err();
        assert!(matches!(err, NativeError::Unsupported(_)), "{err}");
        assert!(err.to_string().contains("suspend"), "{err}");
    }

    /// The harness refuses unknown workloads up front (before paying
    /// for a cargo build).
    #[test]
    fn unknown_workload_is_rejected() {
        let err = NativeHarness::for_workloads(&["no-such"], Strategy::Perceus).unwrap_err();
        assert!(err.to_string().contains("no-such"), "{err}");
    }

    /// `compare_probes` reports every divergence channel, not just the
    /// first.
    #[test]
    fn compare_reports_each_divergence() {
        let a = ExecProbe {
            ok: true,
            value: Some("1".into()),
            error_code: None,
            output: vec![1],
            counters: [0; 18],
            leaked_blocks: 0,
            wall_ns: 5,
        };
        let mut b = a.clone();
        assert!(compare_probes(&a, &b).is_empty());
        b.value = Some("2".into());
        b.output = vec![2];
        b.counters[0] = 7;
        b.counters[17] = 9;
        b.leaked_blocks = 3;
        let bad = compare_probes(&a, &b);
        assert_eq!(bad.len(), 5, "{bad:?}");
        assert!(bad.iter().any(|m| m.contains("allocations")), "{bad:?}");
        assert!(bad.iter().any(|m| m.contains("steps")), "{bad:?}");
        // Wall time is volatile and must never be compared.
        b = a.clone();
        b.wall_ns = 999;
        assert!(compare_probes(&a, &b).is_empty());
    }

    /// Error-vs-ok disagreement is a single outcome mismatch with both
    /// labels visible.
    #[test]
    fn outcome_mismatch_shows_error_code() {
        let ok = ExecProbe {
            ok: true,
            value: Some("()".into()),
            error_code: None,
            output: vec![],
            counters: [0; 18],
            leaked_blocks: 0,
            wall_ns: 0,
        };
        let err = ExecProbe {
            ok: false,
            value: None,
            error_code: Some("abort".into()),
            output: vec![],
            counters: [0; 18],
            leaked_blocks: 0,
            wall_ns: 0,
        };
        let bad = compare_probes(&ok, &err);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("error[abort]"), "{bad:?}");
    }
}
