//! Certificate driver: inference, independent checking, and
//! profiler-replay validation of the potential analysis
//! (`perceus_core::analysis::potential`) over registered workloads.
//!
//! Three layers:
//!
//! * [`certify_final`] / [`certify_stages`] — compile a workload under a
//!   strategy, run certificate inference on pass-stage snapshots, and
//!   re-verify every certificate with the independent checker.
//! * [`eval_bound_at`] — evaluate a symbolic bound at a concrete entry
//!   argument, turning `2·max(n, 0) + 1` into a number the profiler can
//!   be compared against.
//! * [`replay_workload`] — run the workload under the attributed
//!   profiler ([`perceus_runtime::profile`]) and assert that measured
//!   per-function counts stay within the certified bounds: entry totals
//!   against `main`'s worst-case bounds, per-frame counts against
//!   constant worst-case bounds, and per-frame allocations against the
//!   conditional FBIP bounds on frames whose uniqueness tests all hit
//!   and whose reuse tokens never cross frames.
//!
//! The comparisons mirror the analyzer↔runtime counter mapping
//! established in `docs/ANALYSIS.md` (dup/drop/decref/is_unique are
//! instruction counts that over-approximate the heap-value-only runtime
//! counters; `free`/`drop_token` are not compared because the runtime
//! counters include recursive frees no per-instruction count models).

use crate::driver::{compile_workload, run_workload, Strategy, SuiteError};
use crate::workloads::Workload;
use perceus_core::analysis::certificate::bound_human;
use perceus_core::analysis::{
    check_cert_set, infer_certificates, Atom, CertError, CertSet, FunCert, SymBound,
};
use perceus_core::ir::{Expr, Program};
use perceus_core::passes::{PassName, Pipeline};
use perceus_runtime::machine::RunConfig;
use perceus_runtime::profile::FrameKind;

/// Certificates for one pass-stage snapshot, with the independent
/// checker's verdicts.
pub struct StageCerts {
    /// The pass whose output was certified.
    pub pass: PassName,
    /// The snapshot program (certificates refer to its `FunId`s).
    pub program: Program,
    /// The inferred certificate set.
    pub certs: CertSet,
    /// Checker rejections — empty for every certificate the inferencer
    /// emits (the inferencer only keeps claims the checker accepts).
    pub errors: Vec<CertError>,
}

/// Infers and independently re-checks certificates for one program
/// snapshot.
pub fn certify_snapshot(pass: PassName, program: Program) -> StageCerts {
    let certs = infer_certificates(&program);
    let errors = check_cert_set(&program, &certs);
    StageCerts {
        pass,
        program,
        certs,
        errors,
    }
}

/// Compiles `src` under `strategy` and certifies every pass-stage
/// snapshot (expensive: inference runs once per stage).
pub fn certify_stages(src: &str, strategy: Strategy) -> Result<Vec<StageCerts>, SuiteError> {
    let program = perceus_lang::compile_str(src)?;
    let trace = Pipeline::new(strategy.pass_config()).stages(program)?;
    Ok(trace
        .stages()
        .map(|(pass, p)| certify_snapshot(pass, p.clone()))
        .collect())
}

/// Compiles `src` under `strategy` and certifies the final (shipped)
/// program only.
pub fn certify_final(src: &str, strategy: Strategy) -> Result<StageCerts, SuiteError> {
    let program = perceus_lang::compile_str(src)?;
    let trace = Pipeline::new(strategy.pass_config()).stages(program)?;
    let (pass, p) = trace.stages().last().expect("pipeline runs ≥ 1 stage");
    Ok(certify_snapshot(pass, p.clone()))
}

/// Evaluates a bound at concrete **integer** entry arguments: `Pos`
/// atoms evaluate exactly; `Count` atoms evaluate to 0, which is exact
/// when the corresponding parameter is integer-typed (an integer holds
/// no constructor cells) — true for every registered workload's
/// `main(n: int)`. Returns `None` for ω. Saturating arithmetic.
pub fn eval_bound_at(b: &SymBound, args: &[i64]) -> Option<i64> {
    let e = b.as_finite()?;
    let mut total = e.k;
    for (atom, &c) in &e.terms {
        let v: i64 = match atom {
            Atom::Count { .. } => 0,
            Atom::Pos(r) => {
                let mut x = r.k;
                for (p, &co) in &r.coeffs {
                    let arg = args.get(*p as usize).copied().unwrap_or(0);
                    x = x.saturating_add(co.saturating_mul(arg));
                }
                x.max(0)
            }
        };
        total = total.saturating_add(c.saturating_mul(v));
    }
    Some(total.max(0))
}

/// The three input sizes replay validation runs a workload at: halved,
/// nominal, doubled around `test_n` — except for workloads whose
/// parameter drives exponential work (small `test_n`), which step by 1
/// downward instead.
pub fn replay_sizes(w: &Workload) -> Vec<i64> {
    let t = w.test_n;
    let mut sizes = if t >= 16 {
        vec![t / 2, t, t * 2]
    } else {
        vec![(t - 2).max(1), (t - 1).max(1), t]
    };
    sizes.dedup();
    sizes
}

/// One measured-vs-certified violation found by replay.
#[derive(Debug, Clone)]
pub struct Exceedance {
    /// Which frame (`<entry>` for the whole-run totals check).
    pub frame: String,
    /// Which counter.
    pub counter: &'static str,
    /// Human description with the measured and certified numbers.
    pub detail: String,
}

impl std::fmt::Display for Exceedance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {}: {}", self.frame, self.counter, self.detail)
    }
}

/// The outcome of replaying one workload at one size under the
/// profiler and comparing against its certificates.
pub struct ReplayReport {
    /// Workload name.
    pub workload: String,
    /// Strategy label.
    pub strategy: &'static str,
    /// Input size.
    pub n: i64,
    /// Entry-total counters with a finite certified bound that were
    /// compared.
    pub entry_counters_checked: usize,
    /// Frames whose per-call constant worst-case bounds were compared.
    pub frames_checked: usize,
    /// Frames whose conditional FBIP allocation bound was compared
    /// (uniqueness tests all hit).
    pub fbip_frames_checked: usize,
    /// Every measured count exceeding a certified bound (must be empty).
    pub exceedances: Vec<Exceedance>,
}

/// The certificate↔profiler counter mapping: certificate slot index →
/// profiler counter name and accessor. `free` (4) and `drop_token` (5)
/// are excluded — see the module docs.
const REPLAY_COUNTERS: [(usize, &str); 6] = [
    (0, "dups"),
    (1, "drops"),
    (2, "decrefs"),
    (3, "unique_tests"),
    (6, "allocations"),
    (7, "reuses"),
];

fn prof_counter(c: &perceus_runtime::profile::ProfCounts, name: &str) -> u64 {
    match name {
        "dups" => c.dups,
        "drops" => c.drops,
        "decrefs" => c.decrefs,
        "unique_tests" => c.unique_tests,
        "allocations" => c.allocations,
        "reuses" => c.reuses,
        _ => unreachable!("unmapped replay counter"),
    }
}

/// True when every compared worst bound of the certificate is a
/// constant and the function never applies its parameters as closures
/// (so no application overhead lands in this frame on behalf of a
/// caller-supplied bound).
fn per_frame_checkable(cert: &FunCert) -> bool {
    REPLAY_COUNTERS
        .iter()
        .all(|(slot, _)| cert.worst[*slot].as_const().is_some())
        && cert.apps.iter().all(|a| a.as_const() == Some(0))
}

/// True when every reuse token the function consumes was created in its
/// own frame: no parameter is used as the token of a `Con@ru`. The
/// conditional per-frame FBIP check relies on this — a token created in
/// one frame (where a failed uniqueness test is counted) but consumed
/// in another whose own tests all hit would let the consuming frame
/// allocate fresh while still passing the `unique_tests == unique_hits`
/// gate, producing a spurious exceedance. The current reuse analysis
/// never emits cross-frame tokens, so this is a defensive structural
/// guard that keeps the gate honest if that ever changes.
fn tokens_are_frame_local(p: &Program, cert: &FunCert) -> bool {
    let f = &p.funs[cert.fun.0 as usize];
    let params: Vec<u32> = f.params.iter().map(|v| v.id()).collect();
    let mut local = true;
    f.body.visit(&mut |e| {
        if let Expr::Con {
            reuse: Some(tok), ..
        } = e
        {
            if params.contains(&tok.id()) {
                local = false;
            }
        }
    });
    local
}

/// Runs `main(n)` under the attributed profiler and checks every
/// measured count against `certs` (certificates of the final-stage
/// program the compiled workload was built from).
pub fn replay_workload(
    w: &Workload,
    strategy: Strategy,
    n: i64,
    sc: &StageCerts,
) -> Result<ReplayReport, SuiteError> {
    let compiled = compile_workload(w.source, strategy)?;
    let out = run_workload(&compiled, strategy, n, RunConfig::new().with_profile(true))?;
    let prof = out
        .profile
        .expect("profiling was enabled, a profile must exist");
    let frames = prof.per_frame();
    let mut report = ReplayReport {
        workload: w.name.to_string(),
        strategy: strategy.label(),
        n,
        entry_counters_checked: 0,
        frames_checked: 0,
        fbip_frames_checked: 0,
        exceedances: Vec::new(),
    };

    // 1. Entry totals: everything measured inside function frames (the
    //    root frame holds machine entry glue and the final result drop,
    //    which are outside `main`'s dynamic extent) must satisfy
    //    `main`'s worst-case bounds evaluated at n.
    if let Some(main_cert) = sc.certs.fun_cert("main") {
        let mut inside = perceus_runtime::profile::ProfCounts::default();
        for f in &frames {
            if !matches!(f.frame, FrameKind::Root) {
                inside.add(&f.counts);
            }
        }
        for (slot, name) in REPLAY_COUNTERS {
            let Some(bound) = eval_bound_at(&main_cert.worst[slot], &[n]) else {
                continue;
            };
            report.entry_counters_checked += 1;
            let measured = prof_counter(&inside, name);
            if measured > bound as u64 {
                report.exceedances.push(Exceedance {
                    frame: "<entry>".to_string(),
                    counter: name,
                    detail: format!(
                        "measured {measured} exceeds certified {} = {bound} at n={n}",
                        bound_human(&sc.program, main_cert.fun, &main_cert.worst[slot])
                    ),
                });
            }
        }
    }

    // 2. Per-frame constant bounds: a function certified with constant
    //    worst-case bounds (and no closure-parameter applications) can
    //    be checked per frame: its exclusive counts are bounded by
    //    calls × per-call bound, because exclusive ≤ transitive per
    //    call.
    for f in &frames {
        let FrameKind::Fun(fid) = f.frame else {
            continue;
        };
        let name = f.frame.name(&compiled);
        let Some(cert) = sc.certs.fun_cert(&name) else {
            continue;
        };
        let _ = fid;
        if per_frame_checkable(cert) {
            report.frames_checked += 1;
            for (slot, cname) in REPLAY_COUNTERS {
                let per_call = cert.worst[slot].as_const().expect("checkable ⇒ const") as u64;
                let measured = prof_counter(&f.counts, cname);
                let allowed = f.calls.saturating_mul(per_call);
                if measured > allowed {
                    report.exceedances.push(Exceedance {
                        frame: name.clone(),
                        counter: cname,
                        detail: format!(
                            "measured {measured} exceeds {} calls × certified {per_call}",
                            f.calls
                        ),
                    });
                }
            }
        }
        // 3. Conditional FBIP bound: on frames where every uniqueness
        //    test hit (the Thm. 2 regime held locally), measured fresh
        //    allocations must satisfy the FBIP allocation bound. Only
        //    applicable when the function's reuse tokens are created in
        //    its own frame — see `tokens_are_frame_local`.
        let fbip_ok = f.counts.unique_tests == f.counts.unique_hits;
        if fbip_ok
            && cert.apps.iter().all(|a| a.as_const() == Some(0))
            && tokens_are_frame_local(&sc.program, cert)
        {
            if let Some(per_call) = cert.fbip[6].as_const() {
                report.fbip_frames_checked += 1;
                let allowed = f.calls.saturating_mul(per_call as u64);
                if f.counts.allocations > allowed {
                    report.exceedances.push(Exceedance {
                        frame: name.clone(),
                        counter: "allocations (fbip)",
                        detail: format!(
                            "all {} uniqueness tests hit, yet {} allocations exceed {} calls × fbip bound {per_call}",
                            f.counts.unique_tests, f.counts.allocations, f.calls
                        ),
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Certifies a workload and replays it at every [`replay_sizes`] size;
/// the returned reports must all have empty `exceedances`.
pub fn certify_and_replay(
    w: &Workload,
    strategy: Strategy,
) -> Result<(StageCerts, Vec<ReplayReport>), SuiteError> {
    let sc = certify_final(w.source, strategy)?;
    let mut reports = Vec::new();
    for n in replay_sizes(w) {
        reports.push(replay_workload(w, strategy, n, &sc)?);
    }
    Ok((sc, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::workload;
    use perceus_core::analysis::{LinExpr, RawExpr};

    #[test]
    fn eval_bound_at_handles_all_atom_kinds() {
        // 2·max(n − 3, 0) + 5 at n = 10 → 2·7 + 5 = 19.
        let r = RawExpr::var(0).add_k(-3).unwrap();
        let e = LinExpr::atom(Atom::Pos(r))
            .scale(2)
            .unwrap()
            .add_k(5)
            .unwrap();
        assert_eq!(eval_bound_at(&SymBound::Finite(e), &[10]), Some(19));
        // Below the hinge the positive part clamps: n = 1 → 0·2 + 5.
        let r = RawExpr::var(0).add_k(-3).unwrap();
        let e = LinExpr::atom(Atom::Pos(r))
            .scale(2)
            .unwrap()
            .add_k(5)
            .unwrap();
        assert_eq!(eval_bound_at(&SymBound::Finite(e), &[1]), Some(5));
        assert_eq!(eval_bound_at(&SymBound::Omega, &[1]), None);
    }

    #[test]
    fn lint_size_classes_match_runtime() {
        // The L1 lint renders allocator size classes so findings can be
        // cross-referenced with the profiler's allocs-by-size-class
        // table; core cannot depend on the runtime crate, so the
        // constant is duplicated there. This is the drift gate.
        assert_eq!(
            perceus_core::analysis::lint::NUM_SIZE_CLASSES,
            perceus_runtime::heap::NUM_SIZE_CLASSES
        );
    }

    #[test]
    fn replay_sizes_ladders() {
        let map = workload("map").unwrap();
        assert_eq!(replay_sizes(&map), vec![250, 500, 1000]);
        let nqueens = workload("nqueens").unwrap();
        assert_eq!(replay_sizes(&nqueens), vec![4, 5, 6]);
    }

    #[test]
    fn map_certifies_and_replays_clean() {
        let w = workload("map").unwrap();
        let (sc, reports) = certify_and_replay(&w, Strategy::Perceus).unwrap();
        assert!(sc.errors.is_empty(), "{:?}", sc.errors);
        for r in &reports {
            assert!(r.exceedances.is_empty(), "n={}: {:?}", r.n, r.exceedances);
            assert!(r.entry_counters_checked > 0, "main has finite bounds");
        }
    }
}
