//! Differential testing of the whole compilation stack.
//!
//! Each check takes one random core program ([`crate::genprog`]) and
//! runs it through every [`Strategy`] *and* the standard-semantics
//! oracle (Fig. 6), asserting that:
//!
//! * all six executions agree on the result value and the `println`
//!   output (Theorem 1, observational equivalence of the rc-instrumented
//!   machine and the standard semantics);
//! * the reference-counting strategies leak nothing: the heap is empty
//!   after the result is dropped, and the in-flight audits
//!   ([`perceus_runtime::audit`]) report zero violations of count
//!   adequacy and reachability (Theorems 2 and 4 — the garbage-free
//!   invariant);
//! * compilation runs with **full per-stage validation**
//!   ([`Validation::Full`]), so a pass that breaks well-formedness or
//!   the λ¹ discipline is caught at its own boundary and attributed by
//!   name even in release builds.
//!
//! Disagreements are reported as [`Divergence`]s; the fuzz loop shrinks
//! the offending program ([`crate::shrink`]) before recording it, while
//! requiring the shrunk program to reproduce a divergence of the same
//! [`Divergence::class`].

use crate::driver::{self, Strategy, SuiteError};
use crate::genprog;
use crate::shrink;
use perceus_core::check as linear;
use perceus_core::ir::{pretty, Program};
use perceus_core::passes::{PassName, Pipeline, StageMutation, Validation};
use perceus_runtime::code::{self, Compiled};
use perceus_runtime::machine::RunConfig;
use std::fmt;

/// Configuration of the differential fuzz loop.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; per-iteration seeds are derived with a splitmix64
    /// step so neighboring seeds give unrelated programs.
    pub seed: u64,
    /// Number of random programs to check.
    pub iters: u64,
    /// Size budget handed to the generator.
    pub size: u32,
    /// The integer argument `main` is run with.
    pub arg: i64,
    /// Fuel for the (natively recursive) oracle.
    pub fuel: u64,
    /// Machine step limit per run.
    pub step_limit: Option<u64>,
    /// Run the garbage-free auditor every N machine steps (rc
    /// strategies only; `None` disables in-flight audits).
    pub audit_every: Option<u64>,
    /// Shrink failing programs before reporting them.
    pub shrink: bool,
    /// Upper bound on predicate evaluations (whole-matrix re-checks)
    /// spent shrinking one failure.
    pub shrink_budget: usize,
    /// Per-stage validation level used for every compilation.
    pub validation: Validation,
    /// Test instrumentation: corrupt the program after the named pass
    /// in every compilation (see `Pipeline::with_mutation_after`).
    pub mutation: Option<(PassName, StageMutation)>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xC0FFEE,
            iters: 50,
            size: 28,
            arg: 5,
            fuel: 50_000_000,
            step_limit: Some(10_000_000),
            audit_every: Some(64),
            shrink: true,
            shrink_budget: 4_000,
            validation: Validation::Full,
            mutation: None,
        }
    }
}

/// One way two executions of the same program disagreed.
#[derive(Debug, Clone)]
pub enum Divergence {
    /// Compilation failed under one strategy (a stage error names the
    /// offending pass in `error`).
    Compile { strategy: Strategy, error: String },
    /// The machine failed at runtime where the oracle succeeded. An
    /// in-flight audit violation (garbage-free invariant) surfaces
    /// here, as the auditor aborts the run.
    Run { strategy: Strategy, error: String },
    /// The machine succeeded where the oracle failed.
    OracleOnly { strategy: Strategy, error: String },
    /// Result values differ.
    Value {
        strategy: Strategy,
        oracle: String,
        machine: String,
    },
    /// `println` output differs.
    Output {
        strategy: Strategy,
        oracle: Vec<i64>,
        machine: Vec<i64>,
    },
    /// A reference-counting strategy left live blocks behind after the
    /// result was dropped (garbage-free violation, Theorem 2).
    Leak { strategy: Strategy, leaked: u64 },
}

impl Divergence {
    /// The strategy involved.
    pub fn strategy(&self) -> Strategy {
        match self {
            Divergence::Compile { strategy, .. }
            | Divergence::Run { strategy, .. }
            | Divergence::OracleOnly { strategy, .. }
            | Divergence::Value { strategy, .. }
            | Divergence::Output { strategy, .. }
            | Divergence::Leak { strategy, .. } => *strategy,
        }
    }

    /// A coarse failure class, used by the shrinker to make sure a
    /// reduced program still exhibits the *same kind* of failure under
    /// the same strategy — not merely any failure.
    pub fn class(&self) -> String {
        let kind = match self {
            Divergence::Compile { .. } => "compile",
            Divergence::Run { .. } => "run",
            Divergence::OracleOnly { .. } => "oracle-only",
            Divergence::Value { .. } => "value",
            Divergence::Output { .. } => "output",
            Divergence::Leak { .. } => "leak",
        };
        format!("{kind}:{}", self.strategy().label())
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Compile { strategy, error } => {
                write!(f, "[{}] compilation failed: {error}", strategy.label())
            }
            Divergence::Run { strategy, error } => {
                write!(f, "[{}] run failed: {error}", strategy.label())
            }
            Divergence::OracleOnly { strategy, error } => write!(
                f,
                "[{}] machine succeeded but the oracle failed: {error}",
                strategy.label()
            ),
            Divergence::Value {
                strategy,
                oracle,
                machine,
            } => write!(
                f,
                "[{}] value mismatch: oracle {oracle}, machine {machine}",
                strategy.label()
            ),
            Divergence::Output {
                strategy,
                oracle,
                machine,
            } => write!(
                f,
                "[{}] output mismatch: oracle {oracle:?}, machine {machine:?}",
                strategy.label()
            ),
            Divergence::Leak { strategy, leaked } => write!(
                f,
                "[{}] garbage-free violation: {leaked} blocks leaked",
                strategy.label()
            ),
        }
    }
}

/// Outcome of one differential check.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// All observed disagreements (empty = the program agrees
    /// everywhere).
    pub divergences: Vec<Divergence>,
    /// Total in-flight garbage-free audits that ran across strategies.
    pub audits: u64,
}

impl CheckOutcome {
    /// Did every strategy agree with the oracle and keep the heap
    /// garbage-free?
    pub fn agreed(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn compile(
    program: &Program,
    strategy: Strategy,
    cfg: &FuzzConfig,
) -> Result<Compiled, SuiteError> {
    let mut pipeline = Pipeline::new(strategy.pass_config().with_validation(cfg.validation));
    if let Some((pass, mutation)) = cfg.mutation {
        pipeline = pipeline.with_mutation_after(pass, mutation);
    }
    let program = pipeline.run(program.clone()).map_err(SuiteError::Pass)?;
    if strategy.is_rc() {
        linear::check_program(&program).map_err(SuiteError::Linear)?;
    }
    code::compile(&program).map_err(SuiteError::Runtime)
}

/// Runs `program` under every strategy and the oracle, collecting every
/// disagreement.
pub fn differential_check(program: &Program, cfg: &FuzzConfig) -> CheckOutcome {
    // Normalize up front (the pipeline does so anyway — it's
    // idempotent) so the oracle sees computed lambda captures even for
    // raw generator output, which leaves `captures` empty.
    let program = {
        let mut p = program.clone();
        perceus_core::passes::normalize::normalize_program(&mut p);
        p
    };
    let program = &program;
    let oracle = driver::oracle_run_program(program, cfg.arg, cfg.fuel);
    let mut out = CheckOutcome::default();
    for strategy in Strategy::ALL {
        let compiled = match compile(program, strategy, cfg) {
            Ok(c) => c,
            Err(e) => {
                out.divergences.push(Divergence::Compile {
                    strategy,
                    error: e.to_string(),
                });
                continue;
            }
        };
        let run_config = RunConfig::new()
            .with_step_limit(cfg.step_limit)
            .with_audit_every(if strategy.is_rc() {
                cfg.audit_every
            } else {
                None
            })
            // The fuzzer is exactly where release builds should pay for
            // the full runtime invariant checks (skip-mask width and
            // skipped-field equality on every reuse).
            .with_validation(Validation::Full);
        let run = driver::run_workload(&compiled, strategy, cfg.arg, run_config);
        match (&oracle, run) {
            (Ok((value, output)), Ok(got)) => {
                out.audits += got.audits;
                if got.value != *value {
                    out.divergences.push(Divergence::Value {
                        strategy,
                        oracle: format!("{value:?}"),
                        machine: format!("{:?}", got.value),
                    });
                }
                if got.output != *output {
                    out.divergences.push(Divergence::Output {
                        strategy,
                        oracle: output.clone(),
                        machine: got.output,
                    });
                }
                if strategy.is_rc() && got.leaked_blocks > 0 {
                    out.divergences.push(Divergence::Leak {
                        strategy,
                        leaked: got.leaked_blocks,
                    });
                }
            }
            (Ok(_), Err(e)) => out.divergences.push(Divergence::Run {
                strategy,
                error: e.to_string(),
            }),
            (Err(e), Ok(_)) => out.divergences.push(Divergence::OracleOnly {
                strategy,
                error: e.to_string(),
            }),
            // Both failed: the strategies agree the program is broken
            // (e.g. out of fuel) — not a divergence.
            (Err(_), Err(_)) => {}
        }
    }
    out
}

/// One recorded failure of the fuzz loop.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration index (0-based).
    pub iter: u64,
    /// The derived seed that generated the program.
    pub seed: u64,
    /// The divergences of the *reported* (shrunk, when shrinking is on)
    /// program.
    pub divergences: Vec<Divergence>,
    /// Pretty-printed offending program (shrunk, when shrinking is on).
    pub program: String,
    /// Expression nodes in the originally generated program.
    pub original_nodes: usize,
    /// Expression nodes in the reported program.
    pub reported_nodes: usize,
    /// Accepted shrink steps (0 = shrinking off or nothing shrank).
    pub shrink_steps: usize,
}

/// Summary of a whole fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Master seed.
    pub seed: u64,
    /// Iterations requested (= programs checked).
    pub iters: u64,
    /// Generator size budget.
    pub size: u32,
    /// `main` argument.
    pub arg: i64,
    /// Strategy labels checked against the oracle.
    pub strategies: Vec<&'static str>,
    /// Total in-flight garbage-free audits that ran.
    pub audits: u64,
    /// All failures (empty = clean run).
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// Did the whole run agree everywhere?
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as a JSON document (hand-rolled: the harness
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str(&format!("  \"size\": {},\n", self.size));
        s.push_str(&format!("  \"arg\": {},\n", self.arg));
        s.push_str(&format!(
            "  \"strategies\": [{}],\n",
            self.strategies
                .iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"audits\": {},\n", self.audits));
        s.push_str(&format!("  \"failure_count\": {},\n", self.failures.len()));
        s.push_str("  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n");
            s.push_str(&format!("      \"iter\": {},\n", f.iter));
            s.push_str(&format!("      \"seed\": {},\n", f.seed));
            s.push_str(&format!(
                "      \"classes\": [{}],\n",
                f.divergences
                    .iter()
                    .map(|d| format!("\"{}\"", json_escape(&d.class())))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str(&format!(
                "      \"divergences\": [{}],\n",
                f.divergences
                    .iter()
                    .map(|d| format!("\"{}\"", json_escape(&d.to_string())))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str(&format!(
                "      \"original_nodes\": {},\n",
                f.original_nodes
            ));
            s.push_str(&format!(
                "      \"reported_nodes\": {},\n",
                f.reported_nodes
            ));
            s.push_str(&format!("      \"shrink_steps\": {},\n", f.shrink_steps));
            s.push_str(&format!(
                "      \"program\": \"{}\"\n",
                json_escape(&f.program)
            ));
            s.push_str("    }");
        }
        if !self.failures.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

// JSON string escaping is shared with every other hand-rolled emitter
// in the workspace (the workspace stays dependency-free by design).
use perceus_core::analysis::report::json_escape;

/// One splitmix64 scramble step — derives unrelated per-iteration seeds
/// from consecutive counter values.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the differential fuzz loop.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    fuzz_with(cfg, |_, _| {})
}

/// [`fuzz`] with a per-iteration progress callback `(iter, outcome)`.
pub fn fuzz_with(cfg: &FuzzConfig, mut on_iter: impl FnMut(u64, &CheckOutcome)) -> FuzzReport {
    let mut report = FuzzReport {
        seed: cfg.seed,
        iters: cfg.iters,
        size: cfg.size,
        arg: cfg.arg,
        strategies: Strategy::ALL.iter().map(|s| s.label()).collect(),
        audits: 0,
        failures: Vec::new(),
    };
    for iter in 0..cfg.iters {
        let seed = splitmix64(cfg.seed ^ iter.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let program = genprog::random_program(seed, cfg.size);
        let outcome = differential_check(&program, cfg);
        report.audits += outcome.audits;
        on_iter(iter, &outcome);
        if outcome.agreed() {
            continue;
        }
        report
            .failures
            .push(reduce_failure(iter, seed, program, outcome, cfg));
    }
    report
}

/// Shrinks a failing program (when enabled) and packages the report
/// entry. The shrunk program must diverge in one of the *same classes*
/// as the original failure.
fn reduce_failure(
    iter: u64,
    seed: u64,
    mut program: Program,
    outcome: CheckOutcome,
    cfg: &FuzzConfig,
) -> Failure {
    // Shrink in normalized space: raw generator output leaves lambda
    // captures empty, which the shrinker's well-formedness prefilter
    // would reject wholesale. Normalizing does not change the failure —
    // the check normalizes before compiling anyway.
    perceus_core::passes::normalize::normalize_program(&mut program);
    let original_nodes = shrink::program_nodes(&program);
    let classes: Vec<String> = outcome.divergences.iter().map(|d| d.class()).collect();
    let (reported, divergences, steps) = if cfg.shrink {
        let mut budget = cfg.shrink_budget;
        let out = shrink::shrink_program(&program, usize::MAX, |candidate| {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            differential_check(candidate, cfg)
                .divergences
                .iter()
                .any(|d| classes.contains(&d.class()))
        });
        let divergences = differential_check(&out.program, cfg).divergences;
        (out.program, divergences, out.steps)
    } else {
        (program, outcome.divergences, 0)
    };
    Failure {
        iter,
        seed,
        divergences,
        program: pretty::program_to_string(&reported),
        original_nodes,
        reported_nodes: shrink::program_nodes(&reported),
        shrink_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FuzzConfig {
        FuzzConfig {
            iters: 8,
            size: 20,
            audit_every: Some(16),
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn strategies_agree_on_random_programs() {
        let report = fuzz(&quick_cfg());
        assert!(
            report.clean(),
            "unexpected divergences:\n{}",
            report.to_json()
        );
        assert!(report.audits > 0, "audits should have run");
    }

    #[test]
    fn fuzz_report_json_is_well_formed_enough() {
        let report = fuzz(&FuzzConfig {
            iters: 1,
            ..quick_cfg()
        });
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"failure_count\": 0"));
        assert!(json.contains("\"strategies\""));
    }

    #[test]
    fn injected_pass_corruption_is_caught_and_shrunk() {
        use perceus_core::ir::Expr;
        // Corrupt the fuse output of every Perceus compilation: an
        // unmatched dup of the entry's first parameter. The per-stage
        // checker must catch it (strict λ¹) and the failure must
        // attribute the fuse stage; the shrunk witness must stay small
        // and reproduce the same class.
        fn corrupt(p: &mut perceus_core::ir::Program) {
            let entry = p.entry.unwrap();
            let f = &mut p.funs[entry.0 as usize];
            let par = f.params[0].clone();
            let body = std::mem::replace(&mut f.body, Expr::unit());
            f.body = Expr::dup(par, body);
        }
        let cfg = FuzzConfig {
            iters: 2,
            mutation: Some((PassName::Fuse, corrupt)),
            ..quick_cfg()
        };
        let report = fuzz(&cfg);
        assert!(!report.clean(), "the corruption must be detected");
        for failure in &report.failures {
            let classes: Vec<String> = failure.divergences.iter().map(|d| d.class()).collect();
            assert!(
                classes.iter().any(|c| c == "compile:perceus"),
                "expected a perceus compile failure, got {classes:?}"
            );
            let msg = failure
                .divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<String>();
            assert!(
                msg.contains("pass `fuse`"),
                "stage attribution missing: {msg}"
            );
            assert!(failure.reported_nodes <= failure.original_nodes);
        }
    }
}
