//! `perceus-suite` — the suite's command-line entry point.
//!
//! ```text
//! perceus-suite fuzz [--seed 0xC0FFEE] [--iters 200] [--size 28]
//!                    [--arg 5] [--audit-every 64] [--no-shrink]
//!                    [--json FILE] [--quiet]
//! perceus-suite stages [--workload map] [--strategy perceus] [--json]
//! perceus-suite analyze [--workload map | --file F | --all]
//!                       [--strategy perceus] [--stage final]
//!                       [--json] [--deny L2]
//! perceus-suite certify [--workload map | --file F | --all]
//!                       [--strategy perceus] [--stage final]
//!                       [--json] [--deny] [--replay]
//! perceus-suite parallel [--workload map] [--threads 4] [--n SIZE]
//!                        [--strategy perceus] [--json]
//! perceus-suite contended [--workload map] [--mode snapshot|owned]
//!                         [--threads 8] [--reps 16] [--n SIZE]
//!                         [--json] [--require-zero-atomics]
//! perceus-suite profile [--workload map] [--n SIZE] [--threads 1]
//!                       [--strategy perceus] [--json | --folded]
//!                       [--metric rc-ops]
//! perceus-suite resume [--workload map | --all] [--chunks 8]
//!                      [--n SIZE] [--strategy perceus] [--json]
//! perceus-suite native [--workload map | --all] [--n SIZE]
//!                      [--strategy perceus] [--json]
//!                      [--fuzz N [--seed S] [--size SZ] [--arg A]]
//! ```
//!
//! `fuzz` drives random programs through every strategy plus the
//! standard-semantics oracle (see [`perceus_suite::diff`]), printing a
//! JSON summary and exiting nonzero on any divergence or garbage-free
//! violation. `stages` prints the named pass boundaries of a workload's
//! compilation (sizes and per-stage timing). `analyze` runs the static
//! RC-cost analyzer and lints (`perceus_core::analysis`) over stage
//! snapshots; `--deny` turns selected lint codes into a failing exit
//! for CI gating — in `--json` mode the complete report (including the
//! per-target `denied` counts) is always emitted before the failing
//! exit. `certify` runs the potential-based resource analysis
//! (`perceus_core::analysis::potential`), printing per-function
//! symbolic cost certificates (linear bounds over input sizes, ω where
//! no linear potential exists) after re-verifying each with the
//! independent checker; `--replay` additionally runs registered
//! workloads under the attributed profiler at three input sizes and
//! checks measured counts against the certified bounds, and `--deny`
//! turns any checker rejection or measured exceedance into a failing
//! exit. `parallel` runs N machines concurrently over a shared
//! immutable input (see [`perceus_suite::parallel`]) and reports
//! aggregate throughput, merged statistics and the join-time
//! garbage-free audit. `profile` runs a workload with the attributed
//! profiler enabled ([`perceus_runtime::profile`]) and reports
//! per-function and per-constructor reference-count/allocation
//! behaviour; `--folded` emits flamegraph-compatible folded stacks and
//! `--json` the full calling-context report (schema in
//! `docs/OBSERVABILITY.md`). JSON schemas for the other subcommands are
//! documented in `docs/ANALYSIS.md`.
//!
//! Exit codes: 0 success, 1 operational failure (including denied
//! lints), 2 usage error.

use perceus_core::analysis::LintCode;
use perceus_core::passes::{PassName, Pipeline};
use perceus_suite::diff::{fuzz_with, FuzzConfig};
use perceus_suite::{workload, workloads, Strategy};
use std::process::ExitCode;

/// Exit code for malformed command lines (distinct from operational
/// failures, which exit 1).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("stages") => run_stages(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("certify") => run_certify(&args[1..]),
        Some("parallel") => run_parallel_cmd(&args[1..]),
        Some("contended") => run_contended_cmd(&args[1..]),
        Some("profile") => run_profile_cmd(&args[1..]),
        Some("resume") => run_resume_cmd(&args[1..]),
        Some("native") => run_native_cmd(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand `{other}`")),
    }
}

const USAGE: &str = "\
usage: perceus-suite <subcommand> [options]

subcommands:
  fuzz     differential-test random programs across every strategy
           and the standard-semantics oracle
    --seed <u64|0xHEX>   master seed            (default 0xC0FFEE)
    --iters <n>          programs to check      (default 50)
    --size <n>           generator size budget  (default 28)
    --arg <n>            argument to main       (default 5)
    --fuel <n>           oracle fuel            (default 50000000)
    --audit-every <n>    in-flight audit period (default 64)
    --no-shrink          report failures unreduced
    --json <file>        also write the JSON report to a file
    --quiet              no per-iteration progress dots

  stages   print the named pass boundaries of a workload compilation
    --workload <name>    workload to compile    (default map)
    --strategy <name>    perceus | perceus-no-opt | scoped-rc |
                         tracing-gc | arena     (default perceus)
    --json               machine-readable output

  analyze  static RC-cost summaries and lints (docs/ANALYSIS.md)
    --workload <name>    analyze a registered workload (default map)
    --file <path>        analyze a surface-language source file
    --all                analyze every registered workload
    --strategy <name>    as for stages          (default perceus)
    --stage <sel>        final | all | a pass label such as `fuse`
                         (default final)
    --json               machine-readable report
    --deny <code>        exit 1 if the final stage carries this lint
                         (repeatable; L1..L4 or a lint name)

  certify  potential-based cost certificates: per-function linear
           bounds on RC counters, independently re-checked, optionally
           validated against profiler measurements (docs/ANALYSIS.md)
    --workload <name>    certify a registered workload (default map)
    --file <path>        certify a surface-language source file
    --all                certify every registered workload
    --strategy <name>    as for stages          (default perceus)
    --stage <sel>        final | all | a pass label (default final)
    --json               machine-readable certificates
    --replay             run registered workloads under the profiler
                         at three input sizes and check measured
                         counts against the certified bounds
    --deny               exit 1 on any checker rejection or (with
                         --replay) measured-count exceedance

  parallel run N machines concurrently; workloads with a shared-input
           split (map, refs) share one immutable structure through the
           atomic segment, others run independent main(n) instances
    --workload <name>    workload to run        (default map)
    --threads <n>        worker thread count    (default 4)
    --n <size>           problem size           (default per workload)
    --strategy <name>    as for stages          (default perceus)
    --json               machine-readable output

  contended run the contended read-mostly workload: N workers each
           traverse one shared immutable input R times, under either
           guard-protected snapshot reads (borrow-inferred, zero atomic
           RMWs) or the owned atomic-RMW baseline
    --workload <name>    workload to run        (default map; needs a
                         shared-input split)
    --mode <m>           snapshot | owned       (default snapshot)
    --threads <n>        worker thread count    (default 8)
    --reps <n>           consume calls per worker (default 16)
    --n <size>           problem size           (default per workload)
    --json               machine-readable output
    --require-zero-atomics
                         exit 1 unless the read phase performed zero
                         atomic RMWs and the segment fully drained
                         (the CI gate for the snapshot path)

  profile  run one workload with the attributed profiler and report
           per-function / per-constructor RC and allocation behaviour
    --workload <name>    workload to profile    (default map)
    --n <size>           problem size           (default per-workload
                         test size)
    --threads <n>        1 = single machine; >1 profiles a parallel
                         run and merges the per-thread profiles
                         (default 1)
    --strategy <name>    as for stages          (default perceus)
    --json               full calling-context report
                         (docs/OBSERVABILITY.md)
    --folded             flamegraph-compatible folded stacks
    --metric <m>         folded-stack weight: rc-ops | allocs |
                         alloc-words | reuses  (default rc-ops)

  resume   run workloads in budgeted legs over the resumable Execution
           API, audit garbage-freedom at every suspension point, and
           verify the interrupted schedule is bit-identical (result,
           output, every Stats counter) to an uninterrupted run
    --workload <name>    workload to check      (default: all)
    --all                check every registered workload
    --chunks <n>         legs to split the run into (default 8)
    --n <size>           problem size           (default per-workload
                         test size)
    --strategy <name>    as for stages          (default perceus)
    --json               machine-readable output

  native   compile workloads to Rust through perceus-codegen, run the
           native executor, and check value, output, leak count, and
           all 18 schedule counters bit-for-bit against the machine
           (docs/CODEGEN.md); with --fuzz, differentially check
           generated programs instead
    --workload <name>    workload to check      (default map;
                         repeatable)
    --all                check every registered workload
    --n <size>           problem size           (default per-workload
                         test size)
    --strategy <name>    perceus | perceus-no-opt (the RC strategies;
                         others are rejected)   (default perceus)
    --json               machine-readable output
    --fuzz <n>           differential fuzz: n generated programs,
                         machine vs native
    --seed <u64|0xHEX>   fuzz master seed       (default 0xC0DE6E)
    --size <n>           fuzz generator budget  (default 28)
    --arg <n>            fuzz argument to main  (default 5)

exit codes: 0 ok, 1 failure (divergence, pipeline error, denied lint,
            failed join audit), 2 usage error
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn parse_u64(s: &str, what: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    match parsed {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid {what}: `{s}`");
            std::process::exit(EXIT_USAGE as i32);
        }
    }
}

fn next_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a value\n\n{USAGE}");
            std::process::exit(EXIT_USAGE as i32);
        }
    }
}

fn parse_strategy(name: &str) -> Option<Strategy> {
    Strategy::ALL.iter().copied().find(|s| s.label() == name)
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => cfg.seed = parse_u64(next_value(args, &mut i, "--seed"), "seed"),
            "--iters" => cfg.iters = parse_u64(next_value(args, &mut i, "--iters"), "iters"),
            "--size" => cfg.size = parse_u64(next_value(args, &mut i, "--size"), "size") as u32,
            "--arg" => cfg.arg = parse_u64(next_value(args, &mut i, "--arg"), "arg") as i64,
            "--fuel" => cfg.fuel = parse_u64(next_value(args, &mut i, "--fuel"), "fuel"),
            "--audit-every" => {
                let every = parse_u64(next_value(args, &mut i, "--audit-every"), "audit period");
                cfg.audit_every = (every > 0).then_some(every);
            }
            "--no-shrink" => cfg.shrink = false,
            "--json" => json_path = Some(next_value(args, &mut i, "--json").to_string()),
            "--quiet" => quiet = true,
            other => return usage_error(&format!("unknown fuzz option `{other}`")),
        }
        i += 1;
    }

    eprintln!(
        "fuzz: {} iterations, seed {:#x}, size {}, {} strategies + oracle",
        cfg.iters,
        cfg.seed,
        cfg.size,
        Strategy::ALL.len()
    );
    let report = fuzz_with(&cfg, |iter, outcome| {
        if quiet {
            return;
        }
        use std::io::Write;
        let mut err = std::io::stderr();
        let _ = write!(err, "{}", if outcome.agreed() { "." } else { "X" });
        if (iter + 1) % 50 == 0 {
            let _ = writeln!(err, " {}", iter + 1);
        }
        let _ = err.flush();
    });
    if !quiet {
        eprintln!();
    }

    let json = report.to_json();
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{json}");

    if report.clean() {
        eprintln!(
            "fuzz: OK — {} programs agreed across {} strategies ({} in-flight audits)",
            report.iters,
            report.strategies.len(),
            report.audits
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fuzz: FAILED — {} of {} programs diverged",
            report.failures.len(),
            report.iters
        );
        for f in &report.failures {
            eprintln!(
                "  iter {} (seed {:#x}, {} -> {} nodes after {} shrink steps):",
                f.iter, f.seed, f.original_nodes, f.reported_nodes, f.shrink_steps
            );
            for d in &f.divergences {
                eprintln!("    {d}");
            }
        }
        ExitCode::FAILURE
    }
}

fn run_stages(args: &[String]) -> ExitCode {
    let mut workload_name = "map".to_string();
    let mut strategy = Strategy::Perceus;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => workload_name = next_value(args, &mut i, "--workload").to_string(),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--json" => json = true,
            other => return usage_error(&format!("unknown stages option `{other}`")),
        }
        i += 1;
    }

    let w = match workload(&workload_name) {
        Some(w) => w,
        None => {
            return usage_error(&format!(
                "unknown workload `{workload_name}`; available: {}",
                workload_names().join(", ")
            ))
        }
    };
    let program = match perceus_lang::compile_str(w.source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("front end failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Pipeline::new(strategy.pass_config()).stages(program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        let mut out = format!(
            "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"stages\":[",
            json_escape(w.name),
            json_escape(strategy.label())
        );
        for (i, record) in trace.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let nodes: usize = record.program.funs.iter().map(|f| f.body.size()).sum();
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"nodes\":{},\"nanos\":{}}}",
                record.pass.label(),
                nodes,
                record.elapsed.as_nanos()
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        println!(
            "{} under {} — {} stages",
            w.name,
            strategy.label(),
            trace.len()
        );
        println!("{:<12} {:>8} {:>12}", "stage", "nodes", "time");
        for record in trace.records() {
            let nodes: usize = record.program.funs.iter().map(|f| f.body.size()).sum();
            println!(
                "{:<12} {:>8} {:>9.1?}",
                record.pass.label(),
                nodes,
                record.elapsed
            );
        }
    }
    ExitCode::SUCCESS
}

/// Which stage snapshots `analyze` reports on.
enum StageSel {
    Final,
    All,
    One(PassName),
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut workload_names_sel: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut all = false;
    let mut strategy = Strategy::Perceus;
    let mut stage_sel = StageSel::Final;
    let mut json = false;
    let mut deny: Vec<LintCode> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                workload_names_sel.push(next_value(args, &mut i, "--workload").to_string())
            }
            "--file" => files.push(next_value(args, &mut i, "--file").to_string()),
            "--all" => all = true,
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--stage" => {
                let sel = next_value(args, &mut i, "--stage");
                stage_sel = match sel {
                    "final" => StageSel::Final,
                    "all" => StageSel::All,
                    label => match PassName::ALL.iter().find(|p| p.label() == label) {
                        Some(p) => StageSel::One(*p),
                        None => {
                            return usage_error(&format!(
                                "unknown stage `{label}` (use final, all, or a pass label)"
                            ))
                        }
                    },
                };
            }
            "--json" => json = true,
            "--deny" => {
                let code = next_value(args, &mut i, "--deny");
                match LintCode::parse(code) {
                    Some(c) => deny.push(c),
                    None => return usage_error(&format!("unknown lint code `{code}`")),
                }
            }
            other => return usage_error(&format!("unknown analyze option `{other}`")),
        }
        i += 1;
    }

    // Resolve targets: (name, source).
    let mut targets: Vec<(String, String)> = Vec::new();
    if all {
        for w in workloads() {
            targets.push((w.name.to_string(), w.source.to_string()));
        }
    }
    for name in &workload_names_sel {
        match workload(name) {
            Some(w) => targets.push((w.name.to_string(), w.source.to_string())),
            None => {
                return usage_error(&format!(
                    "unknown workload `{name}`; available: {}",
                    workload_names().join(", ")
                ))
            }
        }
    }
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(src) => targets.push((path.clone(), src)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if targets.is_empty() {
        targets.push((
            "map".to_string(),
            workload("map").unwrap().source.to_string(),
        ));
    }

    let mut violations = 0usize;
    let mut json_targets: Vec<String> = Vec::new();
    for (name, src) in &targets {
        let (program, spans) = match perceus_lang::compile_str_with_spans(src) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: front end failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let spans: Vec<(u32, u32)> = spans.iter().map(|s| (s.start, s.end)).collect();
        let mut analyzed = match Pipeline::new(strategy.pass_config()).analyze(program) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{name}: pipeline failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for stage in &mut analyzed.stages {
            stage.analysis.diagnostics.attach_fun_spans(&spans);
        }

        // `--deny` always gates on the shipped (final) program,
        // independently of which snapshots are being displayed.
        let final_stage = analyzed.final_stage();
        let denied: Vec<(LintCode, usize)> = deny
            .iter()
            .map(|c| (*c, final_stage.analysis.diagnostics.count(*c)))
            .filter(|(_, n)| *n > 0)
            .collect();
        violations += denied.iter().map(|(_, n)| n).sum::<usize>();

        let selected: Vec<_> = match stage_sel {
            StageSel::Final => vec![analyzed.final_stage()],
            StageSel::All => analyzed.stages.iter().collect(),
            StageSel::One(pass) => match analyzed.stage(pass) {
                Some(s) => vec![s],
                None => {
                    eprintln!(
                        "{name}: stage `{}` did not run under strategy {}",
                        pass.label(),
                        strategy.label()
                    );
                    return ExitCode::FAILURE;
                }
            },
        };

        if json {
            // The denied counts are part of the report: a CI consumer
            // must be able to read *which* gate tripped from the same
            // document that made the process exit 1.
            let denied_json: Vec<String> = denied
                .iter()
                .map(|(c, n)| format!("{{\"code\":\"{}\",\"count\":{n}}}", c.code()))
                .collect();
            let mut t = format!(
                "{{\"name\":\"{}\",\"strategy\":\"{}\",\"denied\":[{}],\"stages\":[",
                json_escape(name),
                json_escape(strategy.label()),
                denied_json.join(",")
            );
            for (i, s) in selected.iter().enumerate() {
                if i > 0 {
                    t.push(',');
                }
                t.push_str(&format!(
                    "{{\"stage\":\"{}\",\"analysis\":{}}}",
                    s.pass.label(),
                    s.analysis.to_json()
                ));
            }
            t.push_str("]}");
            json_targets.push(t);
        } else {
            for s in &selected {
                println!(
                    "== {name} under {} (stage {}) ==",
                    strategy.label(),
                    s.pass.label()
                );
                print!("{}", s.analysis.render_human());
            }
            for (c, n) in &denied {
                println!(
                    "denied: {n} {} ({}) lint(s) in final stage",
                    c.code(),
                    c.name()
                );
            }
        }
    }

    if json {
        let deny_json: Vec<String> = deny.iter().map(|c| format!("\"{}\"", c.code())).collect();
        println!(
            "{{\"targets\":[{}],\"deny\":[{}],\"violations\":{}}}",
            json_targets.join(","),
            deny_json.join(","),
            violations
        );
    } else if !deny.is_empty() {
        println!(
            "deny gate: {} violation(s) across {} target(s)",
            violations,
            targets.len()
        );
    }

    if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_certify(args: &[String]) -> ExitCode {
    use perceus_suite::certify::{certify_snapshot, replay_sizes, replay_workload, StageCerts};
    use perceus_suite::Workload;

    let mut workload_names_sel: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut all = false;
    let mut strategy = Strategy::Perceus;
    let mut stage_sel = StageSel::Final;
    let mut json = false;
    let mut deny = false;
    let mut replay = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                workload_names_sel.push(next_value(args, &mut i, "--workload").to_string())
            }
            "--file" => files.push(next_value(args, &mut i, "--file").to_string()),
            "--all" => all = true,
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--stage" => {
                let sel = next_value(args, &mut i, "--stage");
                stage_sel = match sel {
                    "final" => StageSel::Final,
                    "all" => StageSel::All,
                    label => match PassName::ALL.iter().find(|p| p.label() == label) {
                        Some(p) => StageSel::One(*p),
                        None => {
                            return usage_error(&format!(
                                "unknown stage `{label}` (use final, all, or a pass label)"
                            ))
                        }
                    },
                };
            }
            "--json" => json = true,
            "--deny" => deny = true,
            "--replay" => replay = true,
            other => return usage_error(&format!("unknown certify option `{other}`")),
        }
        i += 1;
    }

    // Resolve targets: (name, source, registered workload if any —
    // replay needs the workload's runner and size ladder).
    let mut targets: Vec<(String, String, Option<Workload>)> = Vec::new();
    if all {
        for w in workloads() {
            targets.push((w.name.to_string(), w.source.to_string(), Some(*w)));
        }
    }
    for name in &workload_names_sel {
        match workload(name) {
            Some(w) => targets.push((w.name.to_string(), w.source.to_string(), Some(w))),
            None => {
                return usage_error(&format!(
                    "unknown workload `{name}`; available: {}",
                    workload_names().join(", ")
                ))
            }
        }
    }
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(src) => targets.push((path.clone(), src, None)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if targets.is_empty() {
        let w = workload("map").unwrap();
        targets.push((w.name.to_string(), w.source.to_string(), Some(w)));
    }

    let mut violations = 0usize;
    let mut json_targets: Vec<String> = Vec::new();
    for (name, src, wl) in &targets {
        let program = match perceus_lang::compile_str(src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: front end failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = match Pipeline::new(strategy.pass_config()).stages(program) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{name}: pipeline failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snaps: Vec<_> = trace.stages().collect();
        let selected: Vec<StageCerts> = match stage_sel {
            StageSel::Final => {
                let (pass, p) = *snaps.last().expect("pipeline runs ≥ 1 stage");
                vec![certify_snapshot(pass, p.clone())]
            }
            StageSel::All => snaps
                .iter()
                .map(|(pass, p)| certify_snapshot(*pass, (*p).clone()))
                .collect(),
            StageSel::One(pass) => match snaps.iter().find(|(sp, _)| *sp == pass) {
                Some((sp, p)) => vec![certify_snapshot(*sp, (*p).clone())],
                None => {
                    eprintln!(
                        "{name}: stage `{}` did not run under strategy {}",
                        pass.label(),
                        strategy.label()
                    );
                    return ExitCode::FAILURE;
                }
            },
        };
        violations += selected.iter().map(|s| s.errors.len()).sum::<usize>();

        // Replay validates against the shipped program's certificates,
        // independently of which snapshots are displayed.
        let mut replays: Vec<perceus_suite::ReplayReport> = Vec::new();
        if replay {
            if let Some(w) = wl {
                let last_pass = snaps.last().map(|(p, _)| *p);
                let owned_final;
                let final_sc = match selected.iter().find(|s| Some(s.pass) == last_pass) {
                    Some(sc) => sc,
                    None => {
                        let (pass, p) = *snaps.last().expect("pipeline runs ≥ 1 stage");
                        owned_final = certify_snapshot(pass, p.clone());
                        violations += owned_final.errors.len();
                        &owned_final
                    }
                };
                for n in replay_sizes(w) {
                    match replay_workload(w, strategy, n, final_sc) {
                        Ok(r) => {
                            violations += r.exceedances.len();
                            replays.push(r);
                        }
                        Err(e) => {
                            eprintln!("{name}: replay at n={n} failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            } else if !json {
                println!("note: --replay skipped for file target {name} (no registered runner)");
            }
        }

        if json {
            let mut t = format!(
                "{{\"name\":\"{}\",\"strategy\":\"{}\",\"stages\":[",
                json_escape(name),
                json_escape(strategy.label()),
            );
            for (i, s) in selected.iter().enumerate() {
                if i > 0 {
                    t.push(',');
                }
                let errs: Vec<String> = s
                    .errors
                    .iter()
                    .map(|e| format!("\"{}\"", json_escape(&e.to_string())))
                    .collect();
                t.push_str(&format!(
                    "{{\"stage\":\"{}\",\"checker_errors\":[{}],\"certificates\":{}}}",
                    s.pass.label(),
                    errs.join(","),
                    s.certs.to_json(&s.program)
                ));
            }
            t.push_str("],\"replay\":[");
            for (i, r) in replays.iter().enumerate() {
                if i > 0 {
                    t.push(',');
                }
                let exc: Vec<String> = r
                    .exceedances
                    .iter()
                    .map(|x| format!("\"{}\"", json_escape(&x.to_string())))
                    .collect();
                t.push_str(&format!(
                    "{{\"n\":{},\"entry_counters_checked\":{},\"frames_checked\":{},\
                     \"fbip_frames_checked\":{},\"exceedances\":[{}]}}",
                    r.n,
                    r.entry_counters_checked,
                    r.frames_checked,
                    r.fbip_frames_checked,
                    exc.join(",")
                ));
            }
            t.push_str("]}");
            json_targets.push(t);
        } else {
            for s in &selected {
                println!(
                    "== {name} under {} (stage {}) ==",
                    strategy.label(),
                    s.pass.label()
                );
                print!("{}", s.certs.render_human(&s.program));
                if s.errors.is_empty() {
                    println!("  checker: all certificates verified");
                } else {
                    println!("  checker: {} rejection(s):", s.errors.len());
                    for e in &s.errors {
                        println!("    {e}");
                    }
                }
            }
            for r in &replays {
                println!(
                    "replay n={}: {} entry counters, {} frames, {} fbip frames checked, {} exceedance(s)",
                    r.n,
                    r.entry_counters_checked,
                    r.frames_checked,
                    r.fbip_frames_checked,
                    r.exceedances.len()
                );
                for x in &r.exceedances {
                    println!("    {x}");
                }
            }
        }
    }

    if json {
        println!(
            "{{\"targets\":[{}],\"deny\":{},\"violations\":{}}}",
            json_targets.join(","),
            deny,
            violations
        );
    } else if deny {
        println!(
            "deny gate: {} violation(s) across {} target(s)",
            violations,
            targets.len()
        );
    }

    if deny && violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_parallel_cmd(args: &[String]) -> ExitCode {
    use perceus_runtime::machine::RunConfig;

    let mut workload_name = "map".to_string();
    let mut threads: u32 = 4;
    let mut n: Option<i64> = None;
    let mut strategy = Strategy::Perceus;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => workload_name = next_value(args, &mut i, "--workload").to_string(),
            "--threads" => {
                threads = parse_u64(next_value(args, &mut i, "--threads"), "thread count") as u32;
                if threads == 0 {
                    return usage_error("--threads must be at least 1");
                }
            }
            "--n" => n = Some(parse_u64(next_value(args, &mut i, "--n"), "size") as i64),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--json" => json = true,
            other => return usage_error(&format!("unknown parallel option `{other}`")),
        }
        i += 1;
    }

    let w = match workload(&workload_name) {
        Some(w) => w,
        None => {
            return usage_error(&format!(
                "unknown workload `{workload_name}`; available: {}",
                workload_names().join(", ")
            ))
        }
    };
    let n = n.unwrap_or(w.default_n);
    let out = match perceus_suite::run_parallel(&w, strategy, n, threads, RunConfig::default()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let st = &out.stats;
    if json {
        let audit = match &out.shared_audit {
            Some(a) => format!(
                "{{\"freed_blocks\":{},\"live_blocks\":{},\"pinned_blocks\":{}}}",
                a.freed_blocks, a.live_blocks, a.pinned_blocks
            ),
            None => "null".to_string(),
        };
        println!(
            "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"threads\":{},\"n\":{},\
             \"result\":\"{}\",\"elapsed_secs\":{:.6},\"throughput\":{:.3},\
             \"shared_input\":{},\"shared_installs\":{},\"atomic_ops\":{},\
             \"local_shared_ops\":{},\"shared_marks\":{},\"rc_ops\":{},\
             \"peak_live_words\":{},\"join_audit\":{audit}}}",
            json_escape(w.name),
            json_escape(strategy.label()),
            out.threads,
            n,
            json_escape(&out.value.to_string()),
            out.elapsed.as_secs_f64(),
            out.throughput(),
            out.shared_input,
            out.shared_installs,
            st.atomic_ops,
            st.local_shared_ops,
            st.shared_marks,
            st.rc_ops(),
            st.peak_live_words,
        );
    } else {
        println!(
            "{} under {}: {} threads, n={n} ({})",
            w.name,
            strategy.label(),
            out.threads,
            if out.shared_input {
                "shared immutable input"
            } else {
                "independent instances"
            }
        );
        println!("  result: {} (all threads agree)", out.value);
        println!(
            "  elapsed: {:.3}s  throughput: {:.1} runs/s",
            out.elapsed.as_secs_f64(),
            out.throughput()
        );
        println!(
            "  atomic rc ops: {}  local shared ops: {}  shared installs: {}  peak words: {}",
            st.atomic_ops, st.local_shared_ops, out.shared_installs, st.peak_live_words
        );
        match &out.shared_audit {
            Some(a) => println!(
                "  join audit: ok — {} freed, {} live, {} pinned",
                a.freed_blocks, a.live_blocks, a.pinned_blocks
            ),
            None => println!("  join audit: skipped (non-rc strategy)"),
        }
    }
    ExitCode::SUCCESS
}

fn run_contended_cmd(args: &[String]) -> ExitCode {
    use perceus_runtime::machine::RunConfig;
    use perceus_suite::ReadMode;

    let mut workload_name = "map".to_string();
    let mut mode = ReadMode::Snapshot;
    let mut threads: u32 = 8;
    let mut reps: u32 = 16;
    let mut n: Option<i64> = None;
    let mut json = false;
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => workload_name = next_value(args, &mut i, "--workload").to_string(),
            "--mode" => {
                mode = match next_value(args, &mut i, "--mode") {
                    "snapshot" => ReadMode::Snapshot,
                    "owned" => ReadMode::Owned,
                    other => return usage_error(&format!("unknown mode `{other}`")),
                };
            }
            "--threads" => {
                threads = parse_u64(next_value(args, &mut i, "--threads"), "thread count") as u32;
                if threads == 0 {
                    return usage_error("--threads must be at least 1");
                }
            }
            "--reps" => {
                reps = parse_u64(next_value(args, &mut i, "--reps"), "repetition count") as u32;
                if reps == 0 {
                    return usage_error("--reps must be at least 1");
                }
            }
            "--n" => n = Some(parse_u64(next_value(args, &mut i, "--n"), "size") as i64),
            "--json" => json = true,
            "--require-zero-atomics" => gate = true,
            other => return usage_error(&format!("unknown contended option `{other}`")),
        }
        i += 1;
    }

    let w = match workload(&workload_name) {
        Some(w) => w,
        None => {
            return usage_error(&format!(
                "unknown workload `{workload_name}`; available: {}",
                workload_names().join(", ")
            ))
        }
    };
    let n = n.unwrap_or(w.test_n);
    let out = match perceus_suite::run_contended(&w, mode, n, threads, reps, RunConfig::default()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let a = &out.shared_audit;
    if json {
        println!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"reps\":{},\"n\":{},\
             \"result\":\"{}\",\"elapsed_secs\":{:.6},\"throughput\":{:.3},\
             \"read_atomics\":{},\"reclaimed_blocks\":{},\
             \"join_audit\":{{\"freed_blocks\":{},\"live_blocks\":{},\"pinned_blocks\":{},\
             \"weak_refs\":{}}}}}",
            json_escape(w.name),
            json_escape(mode.label()),
            out.threads,
            out.reps,
            n,
            json_escape(&out.value.to_string()),
            out.elapsed.as_secs_f64(),
            out.throughput(),
            out.read_atomics,
            out.reclaimed_blocks,
            a.freed_blocks,
            a.live_blocks,
            a.pinned_blocks,
            a.weak_refs,
        );
    } else {
        println!(
            "{} contended ({} reads): {} threads x {} reps, n={n}",
            w.name,
            mode.label(),
            out.threads,
            out.reps
        );
        println!("  result: {} (all workers, all reps agree)", out.value);
        println!(
            "  elapsed: {:.3}s  throughput: {:.1} reads/s",
            out.elapsed.as_secs_f64(),
            out.throughput()
        );
        println!(
            "  read-phase atomic RMWs: {}  reclaimed slots: {}",
            out.read_atomics, out.reclaimed_blocks
        );
        println!(
            "  join audit: ok — {} freed, {} live, {} pinned, {} weak refs",
            a.freed_blocks, a.live_blocks, a.pinned_blocks, a.weak_refs
        );
    }
    if gate && (out.read_atomics != 0 || a.live_blocks != 0) {
        eprintln!(
            "{}: gate failed — {} read-phase atomic RMWs, {} live blocks at join",
            w.name, out.read_atomics, a.live_blocks
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_resume_cmd(args: &[String]) -> ExitCode {
    use perceus_runtime::machine::RunConfig;

    let mut workload_name: Option<String> = None;
    let mut all = false;
    let mut chunks: u64 = 8;
    let mut n: Option<i64> = None;
    let mut strategy = Strategy::Perceus;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                workload_name = Some(next_value(args, &mut i, "--workload").to_string())
            }
            "--all" => all = true,
            "--chunks" => {
                chunks = parse_u64(next_value(args, &mut i, "--chunks"), "chunk count").max(1)
            }
            "--n" => n = Some(parse_u64(next_value(args, &mut i, "--n"), "size") as i64),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--json" => json = true,
            other => return usage_error(&format!("unknown resume option `{other}`")),
        }
        i += 1;
    }
    let selected: Vec<perceus_suite::Workload> = if all || workload_name.is_none() {
        workloads().to_vec()
    } else {
        let name = workload_name.as_deref().unwrap();
        match workload(name) {
            Some(w) => vec![w],
            None => {
                return usage_error(&format!(
                    "unknown workload `{name}`; available: {}",
                    workload_names().join(", ")
                ))
            }
        }
    };

    let mut failed = false;
    let mut rows = Vec::new();
    for w in selected {
        let size = n.unwrap_or(w.test_n);
        let compiled = match perceus_suite::compile_workload(w.source, strategy) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                failed = true;
                continue;
            }
        };
        let straight =
            match perceus_suite::run_workload(&compiled, strategy, size, RunConfig::default()) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("{}: {e}", w.name);
                    failed = true;
                    continue;
                }
            };
        let budget = (straight.stats.steps / chunks).max(1);
        let resumed = match perceus_suite::run_workload_budgeted(
            &compiled,
            strategy,
            size,
            RunConfig::default(),
            &[budget],
        ) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}: budgeted run: {e}", w.name);
                failed = true;
                continue;
            }
        };
        let divergence = perceus_suite::determinism_divergence(&straight, &resumed);
        if let Some(d) = &divergence {
            eprintln!("{}: {d}", w.name);
            failed = true;
        }
        if json {
            rows.push(format!(
                "{{\"workload\":\"{}\",\"n\":{size},\"steps\":{},\"suspensions\":{},\"deterministic\":{}}}",
                w.name,
                straight.stats.steps,
                resumed.suspensions,
                divergence.is_none()
            ));
        } else {
            println!(
                "{:>10}  n={size:<8} steps={:<12} suspensions={:<4} {}",
                w.name,
                straight.stats.steps,
                resumed.suspensions,
                if divergence.is_none() {
                    "bit-identical"
                } else {
                    "DIVERGED"
                }
            );
        }
    }
    if json {
        println!(
            "{{\"strategy\":\"{}\",\"chunks\":{chunks},\"workloads\":[{}]}}",
            strategy.label(),
            rows.join(",")
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_native_cmd(args: &[String]) -> ExitCode {
    use perceus_suite::native::{fuzz_native, NativeCheck, NativeHarness};

    let mut workload_names_sel: Vec<String> = Vec::new();
    let mut all = false;
    let mut n: Option<i64> = None;
    let mut strategy = Strategy::Perceus;
    let mut json = false;
    let mut fuzz_iters: Option<u32> = None;
    let mut seed: u64 = 0xC0DE6E;
    let mut size: u32 = 28;
    let mut arg: i64 = 5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                workload_names_sel.push(next_value(args, &mut i, "--workload").to_string())
            }
            "--all" => all = true,
            "--n" => n = Some(parse_u64(next_value(args, &mut i, "--n"), "size") as i64),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--json" => json = true,
            "--fuzz" => {
                fuzz_iters =
                    Some(parse_u64(next_value(args, &mut i, "--fuzz"), "fuzz count") as u32)
            }
            "--seed" => seed = parse_u64(next_value(args, &mut i, "--seed"), "seed"),
            "--size" => size = parse_u64(next_value(args, &mut i, "--size"), "size") as u32,
            "--arg" => arg = parse_u64(next_value(args, &mut i, "--arg"), "arg") as i64,
            other => return usage_error(&format!("unknown native option `{other}`")),
        }
        i += 1;
    }

    let render_failure = |check: &NativeCheck| {
        eprintln!("{}: DIVERGED (n={})", check.name, check.n);
        for m in &check.mismatches {
            eprintln!("    {m}");
        }
    };
    let check_json = |check: &NativeCheck| {
        let mismatches: Vec<String> = check
            .mismatches
            .iter()
            .map(|m| format!("\"{}\"", json_escape(m)))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"ok\":{},\"value\":{},\
             \"machine_wall_ns\":{},\"native_wall_ns\":{},\"mismatches\":[{}]}}",
            json_escape(&check.name),
            check.n,
            check.passed(),
            match &check.native.value {
                Some(v) => format!("\"{}\"", json_escape(v)),
                None => "null".to_string(),
            },
            check.machine.wall_ns,
            check.native.wall_ns,
            mismatches.join(",")
        )
    };

    // Differential fuzz leg: generated programs, machine vs native.
    if let Some(iters) = fuzz_iters {
        let report = match fuzz_native(seed, iters, size, arg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("native fuzz: {e}");
                return ExitCode::FAILURE;
            }
        };
        let clean = report.failures.is_empty();
        if json {
            let rows: Vec<String> = report.failures.iter().map(&check_json).collect();
            println!(
                "{{\"backend\":\"native\",\"fuzz\":{{\"seed\":{seed},\"iters\":{iters},\
                 \"size\":{size},\"arg\":{arg},\"failures\":[{}]}},\"ok\":{clean}}}",
                rows.join(",")
            );
        }
        if clean {
            eprintln!(
                "native fuzz: OK — {} generated programs bit-identical to the machine",
                report.iters
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "native fuzz: FAILED — {} of {} programs diverged",
                report.failures.len(),
                report.iters
            );
            for f in &report.failures {
                render_failure(f);
            }
            ExitCode::FAILURE
        }
    } else {
        let selected: Vec<perceus_suite::Workload> = if all {
            workloads().to_vec()
        } else if workload_names_sel.is_empty() {
            vec![workload("map").unwrap()]
        } else {
            let mut out = Vec::new();
            for name in &workload_names_sel {
                match workload(name) {
                    Some(w) => out.push(w),
                    None => {
                        return usage_error(&format!(
                            "unknown workload `{name}`; available: {}",
                            workload_names().join(", ")
                        ))
                    }
                }
            }
            out
        };
        let names: Vec<&str> = selected.iter().map(|w| w.name).collect();
        let harness = match NativeHarness::for_workloads(&names, strategy) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("native: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut rows = Vec::new();
        let mut failed = false;
        for w in &selected {
            let size = n.unwrap_or(w.test_n);
            let check = match harness.check(w.name, size) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{}: {e}", w.name);
                    return ExitCode::FAILURE;
                }
            };
            if json {
                rows.push(check_json(&check));
            } else if check.passed() {
                println!(
                    "{:>10}  n={:<8} machine={:>12}ns native={:>12}ns bit-identical",
                    check.name, check.n, check.machine.wall_ns, check.native.wall_ns
                );
            }
            if !check.passed() {
                failed = true;
                render_failure(&check);
            }
        }
        if json {
            println!(
                "{{\"backend\":\"native\",\"strategy\":\"{}\",\"checks\":[{}],\"ok\":{}}}",
                json_escape(strategy.label()),
                rows.join(","),
                !failed
            );
        }
        if failed {
            ExitCode::FAILURE
        } else {
            eprintln!(
                "native: OK — {} workload(s) bit-identical to the machine",
                selected.len()
            );
            ExitCode::SUCCESS
        }
    }
}

fn run_profile_cmd(args: &[String]) -> ExitCode {
    use perceus_runtime::machine::RunConfig;
    use perceus_runtime::{ProfMetric, Profiler};

    let mut workload_name = "map".to_string();
    let mut threads: u32 = 1;
    let mut n: Option<i64> = None;
    let mut strategy = Strategy::Perceus;
    let mut json = false;
    let mut folded = false;
    let mut metric = ProfMetric::RcOps;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => workload_name = next_value(args, &mut i, "--workload").to_string(),
            "--threads" => {
                threads = parse_u64(next_value(args, &mut i, "--threads"), "thread count") as u32;
                if threads == 0 {
                    return usage_error("--threads must be at least 1");
                }
            }
            "--n" => n = Some(parse_u64(next_value(args, &mut i, "--n"), "size") as i64),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match parse_strategy(name) {
                    Some(s) => s,
                    None => return usage_error(&format!("unknown strategy `{name}`")),
                };
            }
            "--json" => json = true,
            "--folded" => folded = true,
            "--metric" => {
                let name = next_value(args, &mut i, "--metric");
                metric = match ProfMetric::parse(name) {
                    Some(m) => m,
                    None => {
                        let names: Vec<&str> = ProfMetric::ALL.iter().map(|(_, n)| *n).collect();
                        return usage_error(&format!(
                            "unknown metric `{name}`; available: {}",
                            names.join(", ")
                        ));
                    }
                };
            }
            other => return usage_error(&format!("unknown profile option `{other}`")),
        }
        i += 1;
    }
    if json && folded {
        return usage_error("--json and --folded are mutually exclusive");
    }

    let w = match workload(&workload_name) {
        Some(w) => w,
        None => {
            return usage_error(&format!(
                "unknown workload `{workload_name}`; available: {}",
                workload_names().join(", ")
            ))
        }
    };
    // Profiling attributes *every* heap event, so the per-workload test
    // size keeps even the interpreted tree workloads interactive.
    let n = n.unwrap_or(w.test_n);
    let config = RunConfig::new().with_profile(true);

    let compiled = match perceus_suite::compile_workload(w.source, strategy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let profiler: Profiler = if threads == 1 {
        match perceus_suite::run_workload(&compiled, strategy, n, config) {
            Ok(out) => match out.profile {
                Some(p) => p,
                None => {
                    eprintln!("{}: run produced no profile", w.name);
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match perceus_suite::run_parallel(&w, strategy, n, threads, config) {
            Ok(out) => match out.profile {
                Some(p) => p,
                None => {
                    eprintln!("{}: run produced no profile", w.name);
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                return ExitCode::FAILURE;
            }
        }
    };

    if folded {
        print!("{}", profiler.render_folded(&compiled, metric));
        return ExitCode::SUCCESS;
    }
    if json {
        println!(
            "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"n\":{n},\"threads\":{threads},\
             \"profile\":{}}}",
            json_escape(w.name),
            json_escape(strategy.label()),
            profiler.render_json(&compiled, Some(w.source))
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{} under {}: n={n}, {} thread{}",
        w.name,
        strategy.label(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    println!(
        "  {:<24} {:>8} {:>10} {:>8} {:>10} {:>8} {:>10}",
        "function", "calls", "rc ops", "allocs", "words", "reuses", "peak words"
    );
    for r in profiler.per_frame() {
        println!(
            "  {:<24} {:>8} {:>10} {:>8} {:>10} {:>8} {:>10}",
            r.frame.name(&compiled),
            r.calls,
            r.counts.rc_ops(),
            r.counts.allocations,
            r.counts.alloc_words,
            r.counts.reuses,
            r.peak_live_words
        );
    }
    let ctors = profiler.per_ctor();
    if !ctors.is_empty() {
        println!(
            "  {:<24} {:>8} {:>8} {:>8}",
            "constructor", "allocs", "reuses", "reuse%"
        );
        for (id, c) in &ctors {
            let info = compiled.types.ctor(*id);
            println!(
                "  {:<24} {:>8} {:>8} {:>7.1}%",
                info.name,
                c.allocs,
                c.reuses,
                c.reuse_rate() * 100.0
            );
        }
    }
    let t = profiler.totals();
    println!(
        "  totals: rc ops {}  allocations {}  words {}  reuses {}  frees {}",
        t.rc_ops(),
        t.allocations,
        t.alloc_words,
        t.reuses,
        t.frees
    );
    ExitCode::SUCCESS
}

fn workload_names() -> Vec<&'static str> {
    workloads().iter().map(|w| w.name).collect()
}

fn json_escape(s: &str) -> String {
    perceus_core::analysis::report::json_escape(s)
}
