//! `perceus-suite` — the suite's command-line entry point.
//!
//! ```text
//! perceus-suite fuzz [--seed 0xC0FFEE] [--iters 200] [--size 28]
//!                    [--arg 5] [--audit-every 64] [--no-shrink]
//!                    [--json FILE] [--quiet]
//! perceus-suite stages [--workload map] [--strategy perceus]
//! ```
//!
//! `fuzz` drives random programs through every strategy plus the
//! standard-semantics oracle (see [`perceus_suite::diff`]), printing a
//! JSON summary and exiting nonzero on any divergence or garbage-free
//! violation. `stages` prints the named pass boundaries of a workload's
//! compilation (sizes and per-stage timing).

use perceus_core::passes::Pipeline;
use perceus_suite::diff::{fuzz_with, FuzzConfig};
use perceus_suite::{workload, workloads, Strategy};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("stages") => run_stages(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: perceus-suite <subcommand> [options]

subcommands:
  fuzz     differential-test random programs across every strategy
           and the standard-semantics oracle
    --seed <u64|0xHEX>   master seed            (default 0xC0FFEE)
    --iters <n>          programs to check      (default 50)
    --size <n>           generator size budget  (default 28)
    --arg <n>            argument to main       (default 5)
    --fuel <n>           oracle fuel            (default 50000000)
    --audit-every <n>    in-flight audit period (default 64)
    --no-shrink          report failures unreduced
    --json <file>        also write the JSON report to a file
    --quiet              no per-iteration progress dots

  stages   print the named pass boundaries of a workload compilation
    --workload <name>    workload to compile    (default map)
    --strategy <name>    perceus | perceus-no-opt | scoped-rc |
                         tracing-gc | arena     (default perceus)
";

fn parse_u64(s: &str, what: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    match parsed {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid {what}: `{s}`");
            std::process::exit(2);
        }
    }
}

fn next_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a value\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => cfg.seed = parse_u64(next_value(args, &mut i, "--seed"), "seed"),
            "--iters" => cfg.iters = parse_u64(next_value(args, &mut i, "--iters"), "iters"),
            "--size" => cfg.size = parse_u64(next_value(args, &mut i, "--size"), "size") as u32,
            "--arg" => cfg.arg = parse_u64(next_value(args, &mut i, "--arg"), "arg") as i64,
            "--fuel" => cfg.fuel = parse_u64(next_value(args, &mut i, "--fuel"), "fuel"),
            "--audit-every" => {
                let every = parse_u64(next_value(args, &mut i, "--audit-every"), "audit period");
                cfg.audit_every = (every > 0).then_some(every);
            }
            "--no-shrink" => cfg.shrink = false,
            "--json" => json_path = Some(next_value(args, &mut i, "--json").to_string()),
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown fuzz option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "fuzz: {} iterations, seed {:#x}, size {}, {} strategies + oracle",
        cfg.iters,
        cfg.seed,
        cfg.size,
        Strategy::ALL.len()
    );
    let report = fuzz_with(&cfg, |iter, outcome| {
        if quiet {
            return;
        }
        use std::io::Write;
        let mut err = std::io::stderr();
        let _ = write!(err, "{}", if outcome.agreed() { "." } else { "X" });
        if (iter + 1) % 50 == 0 {
            let _ = writeln!(err, " {}", iter + 1);
        }
        let _ = err.flush();
    });
    if !quiet {
        eprintln!();
    }

    let json = report.to_json();
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{json}");

    if report.clean() {
        eprintln!(
            "fuzz: OK — {} programs agreed across {} strategies ({} in-flight audits)",
            report.iters,
            report.strategies.len(),
            report.audits
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fuzz: FAILED — {} of {} programs diverged",
            report.failures.len(),
            report.iters
        );
        for f in &report.failures {
            eprintln!(
                "  iter {} (seed {:#x}, {} -> {} nodes after {} shrink steps):",
                f.iter, f.seed, f.original_nodes, f.reported_nodes, f.shrink_steps
            );
            for d in &f.divergences {
                eprintln!("    {d}");
            }
        }
        ExitCode::FAILURE
    }
}

fn run_stages(args: &[String]) -> ExitCode {
    let mut workload_name = "map".to_string();
    let mut strategy = Strategy::Perceus;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => workload_name = next_value(args, &mut i, "--workload").to_string(),
            "--strategy" => {
                let name = next_value(args, &mut i, "--strategy");
                strategy = match Strategy::ALL.iter().find(|s| s.label() == name) {
                    Some(s) => *s,
                    None => {
                        eprintln!("unknown strategy `{name}`\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown stages option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let w = match workload(&workload_name) {
        Some(w) => w,
        None => {
            eprintln!(
                "unknown workload `{workload_name}`; available: {}",
                workloads()
                    .iter()
                    .map(|w| w.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::from(2);
        }
    };
    let program = match perceus_lang::compile_str(w.source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("front end failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Pipeline::new(strategy.pass_config()).stages(program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} under {} — {} stages",
        w.name,
        strategy.label(),
        trace.len()
    );
    println!("{:<12} {:>8} {:>12}", "stage", "nodes", "time");
    for record in trace.records() {
        let nodes: usize = record.program.funs.iter().map(|f| f.body.size()).sum();
        println!(
            "{:<12} {:>8} {:>9.1?}",
            record.pass.label(),
            nodes,
            record.elapsed
        );
    }
    ExitCode::SUCCESS
}
