//! A greedy structural shrinker for core programs.
//!
//! When the differential tester ([`crate::diff`]) finds a program on
//! which two strategies disagree, the raw generated program is noisy:
//! most of its subterms are irrelevant to the failure. The shrinker
//! reduces it before reporting, in the spirit of QuickCheck/proptest
//! shrinking but operating directly on the core IR:
//!
//! * **Hoist**: replace a node by one of its proper subexpressions
//!   (match arm bodies and let bodies included).
//! * **Collapse**: replace a non-leaf node by `0` or `()`.
//!
//! Every candidate strictly decreases total program size, so the greedy
//! loop terminates. Candidates that break IR well-formedness (for
//! example a hoist that exposes a binder out of scope) are filtered out
//! before the — much more expensive — failure predicate runs; the
//! predicate must hold (the failure must reproduce, in the same class)
//! for a candidate to be kept.

use perceus_core::ir::expr::Expr;
use perceus_core::ir::{wf, Program};

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest failing program found.
    pub program: Program,
    /// Number of accepted shrink steps.
    pub steps: usize,
    /// Total expression nodes before shrinking.
    pub initial_nodes: usize,
    /// Total expression nodes after shrinking.
    pub final_nodes: usize,
}

/// Total expression-node count of a program (sum over function bodies).
pub fn program_nodes(p: &Program) -> usize {
    p.funs.iter().map(|f| f.body.size()).sum()
}

/// Greedily shrinks `p`, keeping only candidates for which
/// `still_failing` holds. The predicate only ever sees well-formed
/// programs. `max_steps` bounds the number of *accepted* shrinks (the
/// predicate typically compiles and runs the whole strategy matrix, so
/// callers keep this modest).
pub fn shrink_program(
    p: &Program,
    max_steps: usize,
    mut still_failing: impl FnMut(&Program) -> bool,
) -> ShrinkOutcome {
    let initial_nodes = program_nodes(p);
    let mut best = p.clone();
    let mut steps = 0;
    while steps < max_steps {
        match shrink_once(&best, &mut still_failing) {
            Some(smaller) => {
                best = smaller;
                steps += 1;
            }
            None => break,
        }
    }
    let final_nodes = program_nodes(&best);
    ShrinkOutcome {
        program: best,
        steps,
        initial_nodes,
        final_nodes,
    }
}

/// Tries every candidate, in order; returns the first strictly smaller
/// well-formed program that still fails.
fn shrink_once(p: &Program, still_failing: &mut impl FnMut(&Program) -> bool) -> Option<Program> {
    for (fun_idx, f) in p.funs.iter().enumerate() {
        let nodes = f.body.size();
        for node_idx in 0..nodes {
            let node = nth(&f.body, node_idx).expect("index within size");
            for replacement in candidates(node) {
                let mut candidate = p.clone();
                let mut at = node_idx;
                replace_nth(&mut candidate.funs[fun_idx].body, &mut at, &replacement);
                if wf::check_program(&candidate).is_ok() && still_failing(&candidate) {
                    return Some(candidate);
                }
            }
        }
    }
    None
}

/// Strictly smaller replacements for `node`, most aggressive first.
fn candidates(node: &Expr) -> Vec<Expr> {
    let size = node.size();
    if size <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Collapse to a leaf (biggest win first).
    if !matches!(node, Expr::Lit(_)) {
        out.push(Expr::int(0));
        out.push(Expr::unit());
    }
    // Hoist a child subtree (proper subtree ⇒ strictly smaller). Order
    // children largest-first so the shrink keeps the interesting part.
    let mut kids: Vec<&Expr> = children(node);
    kids.sort_by_key(|k| std::cmp::Reverse(k.size()));
    out.extend(kids.into_iter().cloned());
    out
}

/// The direct subexpressions of a node, in a fixed order shared with
/// [`replace_nth`]'s traversal.
fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => Vec::new(),
        Expr::App(fun, args) => std::iter::once(&**fun).chain(args.iter()).collect(),
        Expr::Call(_, args) | Expr::Prim(_, args) => args.iter().collect(),
        Expr::Lam(lam) => vec![&*lam.body],
        Expr::Con { args, .. } => args.iter().collect(),
        Expr::Let { rhs, body, .. } => vec![&**rhs, &**body],
        Expr::Seq(a, b) => vec![&**a, &**b],
        Expr::Match { arms, default, .. } => arms
            .iter()
            .map(|a| &a.body)
            .chain(default.iter().map(|d| &**d))
            .collect(),
        Expr::Dup(_, e)
        | Expr::Drop(_, e)
        | Expr::Free(_, e)
        | Expr::DecRef(_, e)
        | Expr::DropToken(_, e) => vec![&**e],
        Expr::DropReuse { body, .. } => vec![&**body],
        Expr::IsUnique { unique, shared, .. } => vec![&**unique, &**shared],
    }
}

fn children_mut(e: &mut Expr) -> Vec<&mut Expr> {
    match e {
        Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => Vec::new(),
        Expr::App(fun, args) => std::iter::once(&mut **fun).chain(args.iter_mut()).collect(),
        Expr::Call(_, args) | Expr::Prim(_, args) => args.iter_mut().collect(),
        Expr::Lam(lam) => vec![&mut *lam.body],
        Expr::Con { args, .. } => args.iter_mut().collect(),
        Expr::Let { rhs, body, .. } => vec![&mut **rhs, &mut **body],
        Expr::Seq(a, b) => vec![&mut **a, &mut **b],
        Expr::Match { arms, default, .. } => arms
            .iter_mut()
            .map(|a| &mut a.body)
            .chain(default.iter_mut().map(|d| &mut **d))
            .collect(),
        Expr::Dup(_, e)
        | Expr::Drop(_, e)
        | Expr::Free(_, e)
        | Expr::DecRef(_, e)
        | Expr::DropToken(_, e) => vec![&mut **e],
        Expr::DropReuse { body, .. } => vec![&mut **body],
        Expr::IsUnique { unique, shared, .. } => vec![&mut **unique, &mut **shared],
    }
}

/// The `idx`-th node of `e` in pre-order (`0` = `e` itself). The order
/// matches [`Expr::visit`] for the user fragment; what matters here is
/// only that it agrees with [`replace_nth`].
fn nth(e: &Expr, idx: usize) -> Option<&Expr> {
    fn go<'a>(e: &'a Expr, idx: &mut usize) -> Option<&'a Expr> {
        if *idx == 0 {
            return Some(e);
        }
        *idx -= 1;
        for c in children(e) {
            if let Some(found) = go(c, idx) {
                return Some(found);
            }
        }
        None
    }
    let mut idx = idx;
    go(e, &mut idx)
}

/// Replaces the `idx`-th pre-order node of `e` with a clone of `with`.
fn replace_nth(e: &mut Expr, idx: &mut usize, with: &Expr) -> bool {
    if *idx == 0 {
        *e = with.clone();
        return true;
    }
    *idx -= 1;
    for c in children_mut(e) {
        if replace_nth(c, idx, with) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::random_program;
    use perceus_core::ir::expr::PrimOp;

    #[test]
    fn nth_and_replace_agree() {
        let p = random_program(7, 24);
        for f in &p.funs {
            let n = f.body.size();
            for i in 0..n {
                let before = nth(&f.body, i).unwrap().clone();
                let mut body = f.body.clone();
                let mut at = i;
                assert!(replace_nth(&mut body, &mut at, &before));
                assert_eq!(body, f.body, "identity replacement at {i}");
            }
            assert!(nth(&f.body, n).is_none());
        }
    }

    #[test]
    fn shrink_finds_a_small_witness() {
        // Failure class: "the program contains a multiplication". The
        // shrinker should reduce any such program to (nearly) just the
        // multiplication.
        let has_mul = |p: &Program| {
            let mut found = false;
            for f in &p.funs {
                f.body.visit(&mut |e| {
                    if matches!(e, Expr::Prim(PrimOp::Mul, _)) {
                        found = true;
                    }
                });
            }
            found
        };
        let mut seed = 1;
        let p = loop {
            let p = random_program(seed, 30);
            if has_mul(&p) {
                break p;
            }
            seed += 1;
        };
        let out = shrink_program(&p, 10_000, |q| has_mul(q));
        assert!(has_mul(&out.program), "shrinking must preserve the class");
        assert!(out.final_nodes <= out.initial_nodes);
        assert!(
            out.final_nodes < 20,
            "expected a small witness, got {} nodes",
            out.final_nodes
        );
    }
}
