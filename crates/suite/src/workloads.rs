//! The workload registry: every benchmark program of the paper's
//! evaluation (§4) plus the overview examples, with embedded sources,
//! default sizes scaled for the interpreted substrate, and known-good
//! results for validation.

use crate::parallel::ParallelSpec;
use perceus_runtime::Value;

/// A registered workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (matches the paper's benchmark names).
    pub name: &'static str,
    /// Surface-language source.
    pub source: &'static str,
    /// Default problem size for the figure harness (the paper's sizes,
    /// scaled for an interpreter — see DESIGN.md).
    pub default_n: i64,
    /// A small size suitable for unit/differential tests.
    pub test_n: i64,
    /// Known results as `(n, main(n))` pairs, for validation.
    pub expected: &'static [(i64, i64)],
    /// Whether this workload is part of the Fig. 9 comparison.
    pub in_figure9: bool,
    /// How to run this workload over a shared immutable input (see
    /// [`crate::parallel`]); `None` runs independent `main(n)` instances
    /// per thread.
    pub parallel: Option<ParallelSpec>,
}

/// rbtree: 42M inserts in the paper; scaled here.
pub const RBTREE: Workload = Workload {
    name: "rbtree",
    source: include_str!("../programs/rbtree.pk"),
    default_n: 100_000,
    test_n: 400,
    // Keys are (i*17+3) % n for i in 0..n; True iff key % 10 == 0.
    expected: &[(10, 1), (100, 10), (400, 40)],
    in_figure9: true,
    parallel: None,
};

/// rbtree-ck: keeps every 5th tree alive.
pub const RBTREE_CK: Workload = Workload {
    name: "rbtree-ck",
    source: include_str!("../programs/rbtree_ck.pk"),
    default_n: 20_000,
    test_n: 200,
    expected: &[],
    in_figure9: true,
    parallel: None,
};

/// deriv: symbolic derivative of a large expression.
pub const DERIV: Workload = Workload {
    name: "deriv",
    source: include_str!("../programs/deriv.pk"),
    default_n: 600,
    test_n: 40,
    expected: &[],
    in_figure9: true,
    parallel: None,
};

/// nqueens: all solutions for the n-queens problem.
pub const NQUEENS: Workload = Workload {
    name: "nqueens",
    source: include_str!("../programs/nqueens.pk"),
    default_n: 9,
    test_n: 6,
    expected: &[
        (4, 2),
        (5, 10),
        (6, 4),
        (7, 40),
        (8, 92),
        (9, 352),
        (10, 724),
    ],
    in_figure9: true,
    parallel: None,
};

/// cfold: constant folding over a large symbolic expression.
pub const CFOLD: Workload = Workload {
    name: "cfold",
    source: include_str!("../programs/cfold.pk"),
    default_n: 16,
    test_n: 8,
    expected: &[],
    in_figure9: true,
    parallel: None,
};

/// tmap: the FBIP in-order traversal of §2.6 (Fig. 3).
pub const TMAP: Workload = Workload {
    name: "tmap",
    source: include_str!("../programs/tmap.pk"),
    default_n: 100_000,
    test_n: 200,
    // sum of (2k+1) for k in 1..=n  =  n(n+1) + n  =  n^2 + 2n.
    expected: &[(10, 120), (100, 10_200), (200, 40_400)],
    in_figure9: false,
    parallel: None,
};

/// tmap-rec: the plain recursive tree map (non-FBIP counterpart).
pub const TMAP_REC: Workload = Workload {
    name: "tmap-rec",
    source: include_str!("../programs/tmap_rec.pk"),
    default_n: 100_000,
    test_n: 200,
    expected: &[(10, 120), (100, 10_200), (200, 40_400)],
    in_figure9: false,
    parallel: None,
};

/// map: the paper's §2.2 running example.
pub const MAP: Workload = Workload {
    name: "map",
    source: include_str!("../programs/map.pk"),
    default_n: 100_000,
    test_n: 500,
    // sum of (i+1) for i in 0..n = n(n+1)/2.
    expected: &[(10, 55), (500, 125_250)],
    in_figure9: false,
    parallel: Some(ParallelSpec {
        build: "build",
        build_args: |n| vec![Value::Int(0), Value::Int(n)],
        consume: "sum",
        consume_args: |xs, _n| vec![xs, Value::Int(0)],
    }),
};

/// exn: the §2.7.1 explicit-error-value compilation scheme.
pub const EXN: Workload = Workload {
    name: "exn",
    source: include_str!("../programs/exn.pk"),
    default_n: 10_000,
    test_n: 100,
    expected: &[],
    in_figure9: false,
    parallel: None,
};

/// refs: §2.7.2/§2.7.3 mutable references and thread-shared marking.
pub const REFS: Workload = Workload {
    name: "refs",
    source: include_str!("../programs/refs.pk"),
    default_n: 10_000,
    test_n: 100,
    // 2 * sum of 0..n = n(n-1).
    expected: &[(10, 90), (100, 9_900)],
    in_figure9: false,
    parallel: Some(ParallelSpec {
        build: "build",
        build_args: |n| vec![Value::Int(0), Value::Int(n)],
        consume: "sum-shared",
        consume_args: |xs, _n| vec![xs, Value::Int(0)],
    }),
};

/// msort: merge sort — split and merge are FBIP-style (every branch
/// matches one Cons and builds one), so a unique list sorts largely in
/// place.
pub const MSORT: Workload = Workload {
    name: "msort",
    source: include_str!("../programs/msort.pk"),
    default_n: 20_000,
    test_n: 300,
    expected: &[],
    in_figure9: false,
    parallel: None,
};

/// binarytrees: the Benchmarks-Game allocation-churn workload.
pub const BINARYTREES: Workload = Workload {
    name: "binarytrees",
    source: include_str!("../programs/binarytrees.pk"),
    default_n: 12,
    test_n: 6,
    // count(make(d)) = 2^(d+1) - 1; churn = 50 * (2^(d-1) - 1).
    expected: &[(6, 1677), (8, 6861)],
    in_figure9: false,
    parallel: None,
};

/// queue: Okasaki's batched queue driven linearly (reversal reuses in
/// place).
pub const QUEUE: Workload = Workload {
    name: "queue",
    source: include_str!("../programs/queue.pk"),
    default_n: 50_000,
    test_n: 300,
    // Everything pushed (0..n) is popped exactly once: sum = n(n-1)/2.
    expected: &[(10, 45), (300, 44_850)],
    in_figure9: false,
    parallel: None,
};

/// All registered workloads.
pub fn workloads() -> &'static [Workload] {
    &[
        RBTREE,
        RBTREE_CK,
        DERIV,
        NQUEENS,
        CFOLD,
        TMAP,
        TMAP_REC,
        MAP,
        EXN,
        REFS,
        MSORT,
        BINARYTREES,
        QUEUE,
    ]
}

/// Looks a workload up by name.
pub fn workload(name: &str) -> Option<Workload> {
    workloads().iter().copied().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_and_run, Strategy};
    use perceus_runtime::machine::{DeepValue, RunConfig};

    #[test]
    fn registry_is_complete_and_distinct() {
        let names: std::collections::HashSet<_> = workloads().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), workloads().len());
        assert!(workload("rbtree").is_some());
        assert!(workload("nope").is_none());
        assert_eq!(
            workloads().iter().filter(|w| w.in_figure9).count(),
            5,
            "Fig. 9 has five benchmarks"
        );
    }

    #[test]
    fn expected_values_hold_under_perceus() {
        for w in workloads() {
            for (n, want) in w.expected {
                let out = compile_and_run(w.source, Strategy::Perceus, *n, RunConfig::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                assert_eq!(out.value, DeepValue::Int(*want), "{}({n})", w.name);
                assert_eq!(out.leaked_blocks, 0, "{}({n}) leaked", w.name);
            }
        }
    }

    #[test]
    fn all_workloads_compile_under_all_strategies() {
        for w in workloads() {
            for s in Strategy::ALL {
                crate::driver::compile_workload(w.source, s)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, s.label()));
            }
        }
    }
}
