//! The checkpoint/resume driver: runs a workload in budgeted legs over
//! the resumable [`perceus_runtime::Execution`] API instead of
//! run-to-completion, auditing garbage-freedom at every suspension
//! point.
//!
//! Because Perceus is garbage-free at every step (Thm. 2/4), a
//! suspended machine is a precise heap snapshot: suspending and
//! resuming must be *invisible* in the schedule — the result value, the
//! `println` output, and every [`perceus_runtime::Stats`] counter must
//! be bit-identical to an uninterrupted run. [`run_workload_budgeted`]
//! is the driver the determinism tests (and the `perceus-suite resume`
//! subcommand) use to prove that.

use crate::driver::{RunOutcome, Strategy, SuiteError};
use perceus_runtime::audit;
use perceus_runtime::code::Compiled;
use perceus_runtime::machine::{Machine, RunConfig, StepOutcome};
use perceus_runtime::Value;

/// A [`RunOutcome`] plus how the execution was interrupted.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    /// The run's result — comparable field-for-field against an
    /// uninterrupted [`crate::run_workload`] of the same program.
    pub outcome: RunOutcome,
    /// How many times the execution suspended before completing.
    pub suspensions: u64,
}

/// Runs a compiled workload's `main(n)` in budgeted legs: leg `i` gets
/// `budgets[i]` steps (the last budget repeats once the schedule runs
/// out; budgets are clamped to ≥ 1 so every leg makes progress). At
/// every suspension point the heap is audited against the suspended
/// continuation's roots — `check_heap` passing there is the
/// suspension-point invariant of the resumable API.
///
/// An empty `budgets` slice runs to completion in one leg.
pub fn run_workload_budgeted(
    compiled: &Compiled,
    strategy: Strategy,
    n: i64,
    config: RunConfig,
    budgets: &[u64],
) -> Result<ResumeOutcome, SuiteError> {
    let audit_suspensions = strategy.is_rc();
    let mut m = Machine::new(compiled, strategy.reclaim_mode(), config);
    let mut exec = m.start_entry(vec![Value::Int(n)])?;
    let mut suspensions = 0u64;
    let mut leg = 0usize;
    let v = loop {
        let budget = budgets
            .get(leg)
            .or_else(|| budgets.last())
            .map(|b| (*b).max(1));
        leg += 1;
        match exec.run(&mut m, budget)? {
            StepOutcome::Done(v) => break v,
            StepOutcome::Suspended { .. } => {
                suspensions += 1;
                if audit_suspensions {
                    let roots = exec.root_addrs(&m.heap);
                    audit::check_heap(&m.heap, &roots)
                        .map_err(|e| SuiteError::Audit(format!("at suspension point: {e}")))?;
                }
            }
        }
    };
    let value = m.read_back(v)?;
    let output = m.output().to_vec();
    m.drop_result(v)?;
    let stats = m.heap.stats;
    Ok(ResumeOutcome {
        outcome: RunOutcome {
            value,
            stats,
            output,
            leaked_blocks: m.heap.live_blocks(),
            trace_tail: m.heap.trace().map(|t| t.render_tail(64)),
            free_list_occupancy: m.heap.free_list_occupancy(),
            audits: m.audits_run(),
            profile: m.heap.take_profile(),
        },
        suspensions,
    })
}

/// Compares a budgeted run against an uninterrupted one of the same
/// compiled program and returns the first discrepancy, if any — the
/// resume-determinism check in reusable form. `None` means the
/// interrupted schedule was bit-identical.
pub fn determinism_divergence(
    uninterrupted: &RunOutcome,
    resumed: &ResumeOutcome,
) -> Option<String> {
    let r = &resumed.outcome;
    if r.value != uninterrupted.value {
        return Some(format!(
            "value diverged: {} vs {}",
            r.value, uninterrupted.value
        ));
    }
    if r.output != uninterrupted.output {
        return Some("println output diverged".into());
    }
    if r.stats != uninterrupted.stats {
        return Some(format!(
            "stats diverged:\n  resumed:       {:?}\n  uninterrupted: {:?}",
            r.stats, uninterrupted.stats
        ));
    }
    if r.leaked_blocks != uninterrupted.leaked_blocks {
        return Some(format!(
            "leaked blocks diverged: {} vs {}",
            r.leaked_blocks, uninterrupted.leaked_blocks
        ));
    }
    None
}
