//! A generator of random, closed, well-formed, *terminating* core
//! programs, used by the property-based tests to fuzz the whole
//! pipeline (Lemma 1, Theorems 1–4) far beyond the hand-written suite.
//!
//! Generated programs are first-order-plus-closures over `int`, `bool`,
//! and a list type; they contain no user recursion, so they always
//! terminate, while still exercising every ownership situation:
//! multiple/zero uses of bindings, shared and unique data, matches that
//! can be reuse-paired, closures that capture, and higher-order calls.

use perceus_core::ir::builder::ite;
use perceus_core::ir::expr::{Arm, Expr, Lambda, PrimOp};
use perceus_core::ir::{CtorId, FunDef, FunId, Program, Var, VarGen};

/// Deterministic xorshift RNG (no external dependency needed here; the
/// property tests feed seeds from proptest).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// The generated value sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sort {
    Int,
    List,
    /// A mutable `ref<int>` cell (§2.7.3).
    RefInt,
}

struct Gen {
    rng: Rng,
    gen: VarGen,
    nil: CtorId,
    cons: CtorId,
    /// In-scope variables with their sorts.
    scope: Vec<(Var, Sort)>,
    /// Remaining size budget.
    fuel: u32,
    /// Callable helper functions (filled once they exist).
    helpers: Vec<FunId>,
}

/// Generates a random program whose entry takes one integer argument.
pub fn random_program(seed: u64, size: u32) -> Program {
    let mut p = Program::new();
    let list = p.types.add_data("list");
    let nil = p.types.add_ctor_arity(list, "Nil", 0);
    let cons = p.types.add_ctor_arity(list, "Cons", 2);

    let mut g = Gen {
        rng: Rng::new(seed),
        gen: VarGen::default(),
        nil,
        cons,
        scope: Vec::new(),
        fuel: size,
        helpers: Vec::new(),
    };

    // A couple of helper functions the main expression can call.
    let mut helpers = Vec::new();
    for i in 0..2 {
        let a = g.gen.fresh("a");
        let l = g.gen.fresh("l");
        g.scope = vec![(a.clone(), Sort::Int), (l.clone(), Sort::List)];
        g.fuel = size / 2;
        let want = if i == 0 { Sort::Int } else { Sort::List };
        let body = g.expr(want);
        helpers.push(p.add_fun(FunDef {
            name: format!("helper{i}").into(),
            params: vec![a, l],
            body,
        }));
    }

    let n = g.gen.fresh("n");
    g.scope = vec![(n.clone(), Sort::Int)];
    g.fuel = size;
    g.helpers = helpers.clone();
    let body = g.expr(Sort::Int);
    let main = p.add_fun(FunDef {
        name: "main".into(),
        params: vec![n],
        body,
    });
    p.entry = Some(main);
    p.var_gen = g.gen;
    p
}

impl Gen {
    fn vars_of(&self, sort: Sort) -> Vec<Var> {
        self.scope
            .iter()
            .filter(|(_, s)| *s == sort)
            .map(|(v, _)| v.clone())
            .collect()
    }

    fn expr(&mut self, sort: Sort) -> Expr {
        if self.fuel == 0 {
            return self.leaf(sort);
        }
        self.fuel -= 1;
        match sort {
            Sort::RefInt => self.leaf(sort),
            Sort::Int => match self.rng.below(13) {
                0 | 1 => self.leaf(sort),
                2 | 3 => {
                    let a = self.expr(Sort::Int);
                    let b = self.expr(Sort::Int);
                    let op =
                        [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Min][self.rng.below(4)];
                    Expr::Prim(op, vec![a, b])
                }
                4 => self.let_in(sort),
                5 => self.match_list(sort),
                6 => self.if_(sort),
                7 => self.call_helper(Sort::Int),
                8 => self.apply_lambda(),
                9 => self.with_ref(),
                10 => self.tshare_then(sort),
                _ => self.leaf(sort),
            },
            Sort::List => match self.rng.below(10) {
                0 | 1 => self.leaf(sort),
                2..=4 => {
                    let h = self.expr(Sort::Int);
                    let t = self.expr(Sort::List);
                    Expr::Con {
                        ctor: self.cons,
                        args: vec![h, t],
                        reuse: None,
                        skip: vec![],
                    }
                }
                5 => self.let_in(sort),
                6 => self.match_list(sort),
                7 => self.if_(sort),
                8 => self.call_helper(Sort::List),
                _ => self.leaf(sort),
            },
        }
    }

    fn leaf(&mut self, sort: Sort) -> Expr {
        let vars = self.vars_of(sort);
        match sort {
            Sort::RefInt => {
                // Only reachable through a scoped ref variable; read it.
                if let Some(v) = vars.first() {
                    Expr::Prim(PrimOp::RefGet, vec![Expr::Var(v.clone())])
                } else {
                    Expr::int(0)
                }
            }
            Sort::Int => {
                if !vars.is_empty() && self.rng.chance(60) {
                    Expr::Var(vars[self.rng.below(vars.len())].clone())
                } else {
                    Expr::int((self.rng.next() % 20) as i64 - 5)
                }
            }
            Sort::List => {
                if !vars.is_empty() && self.rng.chance(60) {
                    Expr::Var(vars[self.rng.below(vars.len())].clone())
                } else {
                    Expr::Con {
                        ctor: self.nil,
                        args: vec![],
                        reuse: None,
                        skip: vec![],
                    }
                }
            }
        }
    }

    /// `val r = ref(e); (r := e2); !r + e3` — exercises the §2.7.3
    /// reference-cell conventions (read retains content, write releases
    /// the old value) under every strategy.
    fn with_ref(&mut self) -> Expr {
        let init = self.expr(Sort::Int);
        let r = self.gen.fresh("r");
        self.scope.push((r.clone(), Sort::RefInt));
        let stores = self.rng.below(3);
        let mut body = {
            let extra = self.expr(Sort::Int);
            Expr::Prim(
                PrimOp::Add,
                vec![
                    Expr::Prim(PrimOp::RefGet, vec![Expr::Var(r.clone())]),
                    extra,
                ],
            )
        };
        for _ in 0..stores {
            let v = self.expr(Sort::Int);
            let s = self.gen.fresh("_st");
            body = Expr::let_(
                s,
                Expr::Prim(PrimOp::RefSet, vec![Expr::Var(r.clone()), v]),
                body,
            );
        }
        self.scope.pop();
        Expr::let_(r, Expr::Prim(PrimOp::RefNew, vec![init]), body)
    }

    /// `tshare(e); k` — flips a structure onto the atomic slow path
    /// (§2.7.2) and continues; counts must stay balanced either way.
    fn tshare_then(&mut self, sort: Sort) -> Expr {
        let shared = self.expr(Sort::List);
        let s = self.gen.fresh("_sh");
        let k = self.expr(sort);
        Expr::let_(s, Expr::Prim(PrimOp::TShare, vec![shared]), k)
    }

    fn let_in(&mut self, sort: Sort) -> Expr {
        let rhs_sort = if self.rng.chance(50) {
            Sort::Int
        } else {
            Sort::List
        };
        let rhs = self.expr(rhs_sort);
        let v = self.gen.fresh("v");
        self.scope.push((v.clone(), rhs_sort));
        let body = self.expr(sort);
        self.scope.pop();
        Expr::let_(v, rhs, body)
    }

    fn match_list(&mut self, sort: Sort) -> Expr {
        // Bind a scrutinee, then match it — sometimes sharing it first
        // (a second live use defeats reuse: exercises the slow path).
        let scrut_rhs = self.expr(Sort::List);
        let s = self.gen.fresh("s");
        let h = self.gen.fresh("h");
        let t = self.gen.fresh("t");
        self.scope.push((s.clone(), Sort::List));
        let keep_alive = self.rng.chance(30);
        self.scope.push((h.clone(), Sort::Int));
        self.scope.push((t.clone(), Sort::List));
        let cons_body = self.expr(sort);
        self.scope.pop();
        self.scope.pop();
        let nil_body = self.expr(sort);
        self.scope.pop();
        let mut m = Expr::Match {
            scrutinee: s.clone(),
            arms: vec![
                Arm {
                    ctor: self.cons,
                    binders: vec![Some(h), Some(t)],
                    reuse_token: None,
                    body: cons_body,
                },
                Arm {
                    ctor: self.nil,
                    binders: vec![],
                    reuse_token: None,
                    body: nil_body,
                },
            ],
            default: None,
        };
        if keep_alive && sort == Sort::Int {
            // Use the scrutinee again after the match via a length-ish
            // observation: match m2 { Cons -> 1; Nil -> 0 } + …
            let h2 = self.gen.fresh("h2");
            let t2 = self.gen.fresh("t2");
            let again = Expr::Match {
                scrutinee: s.clone(),
                arms: vec![
                    Arm {
                        ctor: self.cons,
                        binders: vec![Some(h2.clone()), Some(t2)],
                        reuse_token: None,
                        body: Expr::Var(h2),
                    },
                    Arm {
                        ctor: self.nil,
                        binders: vec![],
                        reuse_token: None,
                        body: Expr::int(0),
                    },
                ],
                default: None,
            };
            let x = self.gen.fresh("x");
            let y = self.gen.fresh("y");
            m = Expr::let_(
                x.clone(),
                again,
                Expr::let_(
                    y.clone(),
                    m,
                    Expr::Prim(PrimOp::Add, vec![Expr::Var(x), Expr::Var(y)]),
                ),
            );
        }
        Expr::let_(s, scrut_rhs, m)
    }

    fn if_(&mut self, sort: Sort) -> Expr {
        let a = self.expr(Sort::Int);
        let b = self.expr(Sort::Int);
        let c = self.gen.fresh("c");
        let t = self.expr(sort);
        let f = self.expr(sort);
        Expr::let_(c.clone(), Expr::Prim(PrimOp::Lt, vec![a, b]), ite(c, t, f))
    }

    fn call_helper(&mut self, sort: Sort) -> Expr {
        if self.helpers.is_empty() {
            return self.leaf(sort);
        }
        let which = match sort {
            Sort::Int | Sort::RefInt => self.helpers[0],
            Sort::List => self.helpers[self.helpers.len() - 1],
        };
        let a = self.expr(Sort::Int);
        let l = self.expr(Sort::List);
        Expr::Call(which, vec![a, l])
    }

    /// Builds and immediately applies a closure capturing the scope.
    fn apply_lambda(&mut self) -> Expr {
        let p1 = self.gen.fresh("p");
        let saved: Vec<(Var, Sort)> = self.scope.clone();
        self.scope.push((p1.clone(), Sort::Int));
        let body = self.expr(Sort::Int);
        self.scope = saved;
        let arg = self.expr(Sort::Int);
        Expr::App(
            Box::new(Expr::Lam(Lambda {
                params: vec![p1],
                captures: Vec::new(), // normalization computes these
                body: Box::new(body),
            })),
            vec![arg],
        )
    }
}
