//! The compile-and-run driver: surface source → pass pipeline →
//! backend → abstract machine, under a chosen memory-management
//! strategy.

use perceus_core::check as linear;
use perceus_core::ir::{erase_program, Program};
use perceus_core::passes::{PassConfig, PassError, Pipeline, RcStrategy};
use perceus_lang::LangError;
use perceus_runtime::code::{self, Compiled};
use perceus_runtime::machine::{DeepValue, Machine, RunConfig};
use perceus_runtime::standard::{to_deep, Oracle, OracleError, SValue};
use perceus_runtime::{Profiler, ReclaimMode, RuntimeError, Stats, Value};
use std::fmt;

/// The memory-management strategies compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full Perceus (the paper's Koka column).
    Perceus,
    /// Precise reference counting without reuse/specialization
    /// ("Koka, no-opt").
    PerceusNoOpt,
    /// Scope-tied reference counting (§2.2 baseline).
    Scoped,
    /// Tracing mark–sweep collection.
    Gc,
    /// Never reclaim.
    Arena,
}

impl Strategy {
    /// All strategies, in the order Fig. 9 lists its systems.
    pub const ALL: [Strategy; 5] = [
        Strategy::Perceus,
        Strategy::PerceusNoOpt,
        Strategy::Scoped,
        Strategy::Gc,
        Strategy::Arena,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Perceus => "perceus",
            Strategy::PerceusNoOpt => "perceus-no-opt",
            Strategy::Scoped => "scoped-rc",
            Strategy::Gc => "tracing-gc",
            Strategy::Arena => "arena",
        }
    }

    /// The system(s) of the paper this strategy stands in for.
    pub fn paper_column(self) -> &'static str {
        match self {
            Strategy::Perceus => "Koka",
            Strategy::PerceusNoOpt => "Koka, no-opt",
            Strategy::Scoped => "Swift (scoped rc)",
            Strategy::Gc => "OCaml/Haskell/Java (tracing)",
            Strategy::Arena => "C++ (no reclamation)",
        }
    }

    /// How this evaluation strategy lowers onto the two independent
    /// axes below it: the compile-time insertion discipline
    /// ([`RcStrategy`]) and the runtime reclamation mode
    /// ([`ReclaimMode`]). This is the single source of truth — every
    /// other mapping (`pass_config`, `reclaim_mode`, `is_rc`) derives
    /// from it.
    pub fn lowering(self) -> (RcStrategy, ReclaimMode) {
        match self {
            Strategy::Perceus | Strategy::PerceusNoOpt => (RcStrategy::Perceus, ReclaimMode::Rc),
            Strategy::Scoped => (RcStrategy::Scoped, ReclaimMode::Rc),
            Strategy::Gc => (RcStrategy::None, ReclaimMode::Gc),
            Strategy::Arena => (RcStrategy::None, ReclaimMode::Arena),
        }
    }

    /// The pass configuration for this strategy: the canonical config
    /// for the lowered insertion discipline, minus the optimizations
    /// for the no-opt column.
    pub fn pass_config(self) -> PassConfig {
        let config = PassConfig::for_strategy(self.lowering().0);
        match self {
            Strategy::PerceusNoOpt => config
                .with_reuse(false)
                .with_reuse_spec(false)
                .with_drop_spec(false)
                .with_fuse(false),
            _ => config,
        }
    }

    /// The heap reclamation mode for this strategy.
    pub fn reclaim_mode(self) -> ReclaimMode {
        self.lowering().1
    }

    /// True for the reference-counting strategies (whose heaps must be
    /// empty after the result is dropped).
    pub fn is_rc(self) -> bool {
        self.lowering().1 == ReclaimMode::Rc
    }
}

/// An error from the driver.
#[derive(Debug)]
pub enum SuiteError {
    /// Front-end failure.
    Lang(LangError),
    /// Pass pipeline failure.
    Pass(PassError),
    /// The resource checker rejected the pass output (a pass bug).
    Linear(linear::LinearError),
    /// Backend or execution failure.
    Runtime(RuntimeError),
    /// The standard-semantics oracle failed.
    Oracle(OracleError),
    /// A garbage-free audit failed, or parallel workers disagreed (see
    /// [`crate::parallel`]).
    Audit(String),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Lang(e) => write!(f, "{e}"),
            SuiteError::Pass(e) => write!(f, "{e}"),
            SuiteError::Linear(e) => write!(f, "{e}"),
            SuiteError::Runtime(e) => write!(f, "{e}"),
            SuiteError::Oracle(e) => write!(f, "oracle: {e}"),
            SuiteError::Audit(msg) => write!(f, "audit: {msg}"),
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Lang(e) => Some(e),
            SuiteError::Pass(e) => Some(e),
            SuiteError::Linear(e) => Some(e),
            SuiteError::Runtime(e) => Some(e),
            SuiteError::Oracle(e) => Some(e),
            SuiteError::Audit(_) => None,
        }
    }
}

impl From<LangError> for SuiteError {
    fn from(e: LangError) -> Self {
        SuiteError::Lang(e)
    }
}
impl From<PassError> for SuiteError {
    fn from(e: PassError) -> Self {
        SuiteError::Pass(e)
    }
}
impl From<RuntimeError> for SuiteError {
    fn from(e: RuntimeError) -> Self {
        SuiteError::Runtime(e)
    }
}
impl From<OracleError> for SuiteError {
    fn from(e: OracleError) -> Self {
        SuiteError::Oracle(e)
    }
}

/// Compiles source text under the given strategy, through the whole
/// stack: parse/typecheck → passes → resource check (for the rc
/// strategies) → backend.
pub fn compile_workload(src: &str, strategy: Strategy) -> Result<Compiled, SuiteError> {
    let program = perceus_lang::compile_str(src)?;
    compile_program(program, strategy)
}

/// Like [`compile_workload`] but starting from an already-lowered core
/// program.
pub fn compile_program(program: Program, strategy: Strategy) -> Result<Compiled, SuiteError> {
    let program = Pipeline::new(strategy.pass_config()).run(program)?;
    if strategy.is_rc() {
        linear::check_program(&program).map_err(SuiteError::Linear)?;
    }
    Ok(code::compile(&program)?)
}

/// Compiles with an explicit pass configuration (used by the ablation
/// experiments, which toggle individual optimizations).
pub fn compile_with_config(src: &str, config: PassConfig) -> Result<Compiled, SuiteError> {
    let rc = config.strategy() != RcStrategy::None;
    let program = perceus_lang::compile_str(src)?;
    let program = Pipeline::new(config).run(program)?;
    if rc {
        linear::check_program(&program).map_err(SuiteError::Linear)?;
    }
    Ok(code::compile(&program)?)
}

/// Compiles under the Perceus strategy with borrow inference on — the
/// snapshot-read variant: borrowed parameters are never consumed, so a
/// pure traversal of a shared-segment structure emits no reference
/// count operations at all (zero atomic RMWs on the read path).
pub fn compile_borrowing(src: &str) -> Result<Compiled, SuiteError> {
    compile_with_config(src, PassConfig::perceus_borrowing())
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The program result, read back as a tree.
    pub value: DeepValue,
    /// Runtime statistics (the quantities behind every figure).
    pub stats: Stats,
    /// `println` output.
    pub output: Vec<i64>,
    /// Heap blocks still live after the result was dropped. For the
    /// reference-counting strategies of a garbage-free compiler this is
    /// **zero** (Theorem 2); the GC/arena strategies retain whatever
    /// they haven't collected.
    pub leaked_blocks: u64,
    /// The tail of the reference-count event trace, when tracing was
    /// enabled in the run configuration.
    pub trace_tail: Option<String>,
    /// Size-class free-list occupancy at exit: `(field_count, blocks)`
    /// for every nonempty class (empty when recycling is off).
    pub free_list_occupancy: Vec<(usize, usize)>,
    /// Number of in-flight garbage-free audits that ran (nonzero only
    /// when `RunConfig::audit_every` was set; each audit verified heap
    /// reachability and reference-count adequacy mid-run).
    pub audits: u64,
    /// The attributed profile, when `RunConfig::profile` was set (see
    /// [`perceus_runtime::profile`]).
    pub profile: Option<Profiler>,
}

/// Runs a compiled workload's `main(n)`.
pub fn run_workload(
    compiled: &Compiled,
    strategy: Strategy,
    n: i64,
    config: RunConfig,
) -> Result<RunOutcome, SuiteError> {
    let mut m = Machine::new(compiled, strategy.reclaim_mode(), config);
    let v = m.run_entry(vec![Value::Int(n)])?;
    let value = m.read_back(v)?;
    let output = m.output().to_vec();
    m.drop_result(v)?;
    let stats = m.heap.stats;
    Ok(RunOutcome {
        value,
        stats,
        output,
        leaked_blocks: m.heap.live_blocks(),
        trace_tail: m.heap.trace().map(|t| t.render_tail(64)),
        free_list_occupancy: m.heap.free_list_occupancy(),
        audits: m.audits_run(),
        profile: m.heap.take_profile(),
    })
}

/// Convenience: compile and run in one call.
pub fn compile_and_run(
    src: &str,
    strategy: Strategy,
    n: i64,
    config: RunConfig,
) -> Result<RunOutcome, SuiteError> {
    let compiled = compile_workload(src, strategy)?;
    run_workload(&compiled, strategy, n, config)
}

/// Runs a program's erasure under the standard semantics of Fig. 6 (the
/// Theorem 1 oracle). Executed on a large-stack thread because the
/// oracle is natively recursive.
pub fn oracle_run(src: &str, n: i64, fuel: u64) -> Result<(DeepValue, Vec<i64>), SuiteError> {
    let program = perceus_lang::compile_str(src)?;
    oracle_run_program(&program, n, fuel)
}

/// [`oracle_run`] starting from a core program.
pub fn oracle_run_program(
    program: &Program,
    n: i64,
    fuel: u64,
) -> Result<(DeepValue, Vec<i64>), SuiteError> {
    let erased = erase_program(program);
    let types = erased.types.clone();
    let handle = std::thread::Builder::new()
        .stack_size(512 << 20)
        .spawn(move || {
            let mut oracle = Oracle::new(&erased, fuel).with_max_depth(2_000_000);
            let v = oracle
                .run_entry(vec![SValue::Int(n)])
                .map(|v| to_deep(&v, &types))?;
            Ok::<_, OracleError>((v, oracle.output))
        })
        .expect("spawning the oracle thread");
    handle
        .join()
        .expect("oracle thread must not panic")
        .map_err(SuiteError::Oracle)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
fun fib(n: int): int {
  if n < 2 then n else fib(n - 1) + fib(n - 2)
}
fun main(n: int): int { fib(n) }
"#;

    #[test]
    fn compile_and_run_all_strategies() {
        for s in Strategy::ALL {
            let out = compile_and_run(SRC, s, 15, RunConfig::default()).unwrap();
            assert_eq!(out.value, DeepValue::Int(610), "{}", s.label());
            if s.is_rc() {
                assert_eq!(out.leaked_blocks, 0, "{}", s.label());
            }
        }
    }

    #[test]
    fn oracle_agrees() {
        let (v, _) = oracle_run(SRC, 15, 100_000_000).unwrap();
        assert_eq!(v, DeepValue::Int(610));
    }

    #[test]
    fn lowering_is_the_single_source_of_truth() {
        for s in Strategy::ALL {
            let (rc, mode) = s.lowering();
            assert_eq!(s.pass_config().strategy(), rc, "{}", s.label());
            assert_eq!(s.reclaim_mode(), mode, "{}", s.label());
            assert_eq!(s.is_rc(), mode == ReclaimMode::Rc, "{}", s.label());
        }
        // No rc insertion without an rc heap, and vice versa.
        for s in Strategy::ALL {
            let (rc, mode) = s.lowering();
            assert_eq!(rc == RcStrategy::None, mode != ReclaimMode::Rc);
        }
    }

    #[test]
    fn strategy_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Strategy::ALL.len());
    }
}
