//! The parallel workload driver: N abstract machines running
//! concurrently, sharing one immutable input through the atomic-header
//! segment of §2.7.2 ([`perceus_runtime::SharedHeap`]).
//!
//! For workloads that declare a [`ParallelSpec`], a *builder* machine
//! constructs the input once on its thread-local heap, the share
//! barrier ([`perceus_runtime::Heap::mark_shared`]) moves the whole
//! structure into the shared segment, and each worker thread receives
//! its own reference (added non-atomically before the segment is
//! frozen). The workers then run the consume function concurrently:
//! every reference-count operation on the shared structure is a real
//! atomic RMW, while each worker's own allocations stay on the
//! non-atomic fast path of its private heap.
//!
//! Workloads without a spec (and every run under a non-rc strategy,
//! whose workers emit no reference-count operations and therefore
//! cannot maintain shared counts) fall back to N independent `main(n)`
//! instances — still a useful smoke test that the machines do not
//! interfere.
//!
//! After the join, the Thm. 2/4 garbage-free audit runs over both heap
//! segments: each rc worker's local heap must be empty and pass
//! [`perceus_runtime::audit::check_heap`], and the quiescent shared
//! segment must pass [`perceus_runtime::audit::check_shared_at_join`]
//! (fully drained up to pinned blocks). Worker statistics are folded
//! with the associative [`Stats::merge`]: counters sum, peaks take the
//! maximum across concurrent heaps.

use crate::driver::{compile_with_config, compile_workload, Strategy, SuiteError};
use crate::workloads::Workload;
use perceus_core::passes::PassConfig;
use perceus_runtime::audit::{self, SharedAudit};
use perceus_runtime::machine::{DeepValue, Machine, RunConfig};
use perceus_runtime::{Profiler, ReclaimMode, RuntimeError, SharedHeap, Stats, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a workload splits into a shared immutable input (built once) and
/// a consume phase (run by every worker thread).
#[derive(Debug, Clone, Copy)]
pub struct ParallelSpec {
    /// The function that builds the shared input.
    pub build: &'static str,
    /// Arguments to `build` for problem size `n`.
    pub build_args: fn(i64) -> Vec<Value>,
    /// The function every worker runs over the shared input. Its first
    /// use consumes the worker's reference (owned calling convention).
    pub consume: &'static str,
    /// Arguments to `consume` given the shared root and size `n`.
    pub consume_args: fn(Value, i64) -> Vec<Value>,
}

/// The outcome of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The per-worker result (all workers must agree).
    pub value: DeepValue,
    /// Builder + workers + shared-segment statistics, folded with
    /// [`Stats::merge`].
    pub stats: Stats,
    /// Worker thread count.
    pub threads: u32,
    /// Wall-clock time of the concurrent phase (excludes compilation
    /// and the build of the shared input).
    pub elapsed: Duration,
    /// Whether the run went through the shared-input path (a spec was
    /// declared and the strategy is reference-counted).
    pub shared_input: bool,
    /// Blocks the share barrier moved into the shared segment.
    pub shared_installs: u64,
    /// The join-time audit of the shared segment (`None` under non-rc
    /// strategies, whose workers do not maintain shared counts).
    pub shared_audit: Option<SharedAudit>,
    /// The attributed profile when `RunConfig::profile` was set: builder
    /// and workers merged in spawn order (associative
    /// [`Profiler::merge`], so the totals are deterministic; on the
    /// shared-input path the *per-function split* of shared-segment
    /// frees still depends on which thread won each closing decrement —
    /// see `docs/OBSERVABILITY.md`).
    pub profile: Option<Profiler>,
}

impl ParallelOutcome {
    /// Consume calls per second across all workers.
    pub fn throughput(&self) -> f64 {
        self.threads as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `threads` machines concurrently over the workload, sharing the
/// input through the atomic segment when the workload and strategy
/// support it. Errors if any worker fails, if the workers disagree on
/// the result, or if a join-time garbage-free audit fails.
pub fn run_parallel(
    w: &Workload,
    strategy: Strategy,
    n: i64,
    threads: u32,
    config: RunConfig,
) -> Result<ParallelOutcome, SuiteError> {
    if threads == 0 {
        return Err(SuiteError::Runtime(RuntimeError::Internal(
            "parallel run needs at least one thread".into(),
        )));
    }
    let compiled = compile_workload(w.source, strategy)?;
    let spec = w.parallel.filter(|_| strategy.is_rc());

    // Build the shared input once, then move it across the barrier and
    // hand every worker its own reference before the segment freezes.
    let mut seg = SharedHeap::new();
    let mut stats = Stats::default();
    let mut profile: Option<Profiler> = None;
    let mut shared_root = Value::Unit;
    let mut consume = None;
    if let Some(spec) = spec {
        let find = |name: &str| {
            compiled.find_fun(name).ok_or_else(|| {
                SuiteError::Runtime(RuntimeError::Internal(format!(
                    "workload {} has no function `{name}`",
                    w.name
                )))
            })
        };
        let build = find(spec.build)?;
        consume = Some(find(spec.consume)?);
        let mut b = Machine::new(&compiled, strategy.reclaim_mode(), config.clone());
        let v = b.run_fun(build, (spec.build_args)(n))?;
        shared_root = b.heap.mark_shared(v, &mut seg)?;
        if b.heap.live_blocks() != 0 {
            return Err(SuiteError::Audit(format!(
                "builder heap retains {} blocks after the share barrier",
                b.heap.live_blocks()
            )));
        }
        seg.retain(shared_root, threads - 1)?;
        stats = b.heap.stats;
        profile = b.heap.take_profile();
    }
    let shared_installs = seg.len() as u64;
    let seg = Arc::new(seg);

    let start = Instant::now();
    type WorkerResult = (DeepValue, Stats, Option<Profiler>);
    let results: Vec<Result<WorkerResult, SuiteError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let seg = Arc::clone(&seg);
                let config = config.clone();
                let compiled = &compiled;
                s.spawn(move || {
                    let mut m = Machine::new(compiled, strategy.reclaim_mode(), config);
                    m.heap.attach_shared(seg);
                    let v = match (spec, consume) {
                        (Some(spec), Some(f)) => m.run_fun(f, (spec.consume_args)(shared_root, n)),
                        _ => m.run_entry(vec![Value::Int(n)]),
                    }?;
                    let value = m.read_back(v)?;
                    m.drop_result(v)?;
                    if strategy.is_rc() {
                        // Thm. 2: a worker's private heap is empty once
                        // its result is dropped; whatever shared data it
                        // touched is accounted in the segment.
                        if m.heap.live_blocks() != 0 {
                            return Err(SuiteError::Audit(format!(
                                "worker heap retains {} blocks after the run",
                                m.heap.live_blocks()
                            )));
                        }
                        audit::check_heap(&m.heap, &[]).map_err(SuiteError::Audit)?;
                    }
                    let profile = m.heap.take_profile();
                    Ok((value, m.heap.stats, profile))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut value: Option<DeepValue> = None;
    for r in results {
        let (v, st, p) = r?;
        match &value {
            None => value = Some(v),
            Some(first) if *first != v => {
                return Err(SuiteError::Audit(format!(
                    "worker threads disagree on the result: {first} vs {v}"
                )))
            }
            Some(_) => {}
        }
        stats = stats.merge(&st);
        // Fold profiles in spawn order (merge is associative, so the
        // combined totals do not depend on which worker finished first).
        profile = match (profile, p) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            (a, b) => a.or(b),
        };
    }
    stats = stats.merge(&seg.snapshot());

    // With every worker joined the segment is quiescent: run the
    // join-time garbage-free audit over it.
    let shared_audit = if strategy.is_rc() {
        Some(audit::check_shared_at_join(&seg).map_err(SuiteError::Audit)?)
    } else {
        None
    };

    Ok(ParallelOutcome {
        value: value.expect("at least one worker ran"),
        stats,
        threads,
        elapsed,
        shared_input: spec.is_some(),
        shared_installs,
        shared_audit,
        profile,
    })
}

/// How workers of a contended run access the shared input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Guard-protected borrowed reads: the consume function is compiled
    /// under borrow inference ([`PassConfig::perceus_borrowing`]), so a
    /// pure traversal of the shared structure performs **zero** atomic
    /// RMWs — the worker's epoch pin (taken at
    /// [`perceus_runtime::Heap::attach_shared`]) is what keeps the
    /// blocks alive, not per-read count traffic.
    Snapshot,
    /// The owned calling convention of [`run_parallel`]: every call
    /// consumes a strong reference and every interior visit is a real
    /// atomic dup/drop pair on the shared header — the contended
    /// baseline the snapshot path is measured against.
    Owned,
}

impl ReadMode {
    /// Display label (used by the CLI and bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            ReadMode::Snapshot => "snapshot",
            ReadMode::Owned => "owned",
        }
    }
}

/// The outcome of one contended read-mostly run.
#[derive(Debug, Clone)]
pub struct ContendedOutcome {
    /// The per-call result (all workers, all repetitions must agree).
    pub value: DeepValue,
    /// Builder + workers + segment statistics, folded with
    /// [`Stats::merge`]. Excludes the driver's final cleanup drop, so
    /// under [`ReadMode::Snapshot`] `stats.atomic_ops` counts only the
    /// read phase.
    pub stats: Stats,
    /// Worker thread count.
    pub threads: u32,
    /// Consume calls per worker.
    pub reps: u32,
    /// Wall-clock time of the concurrent read phase.
    pub elapsed: Duration,
    /// Atomic RMWs performed by the workers during the read phase
    /// (zero on the snapshot path — the acceptance gate).
    pub read_atomics: u64,
    /// The join-time garbage-free audit of the drained segment.
    pub shared_audit: SharedAudit,
    /// Shared slots whose storage the epoch collector reclaimed before
    /// segment drop (nonzero here is the retention fix at work).
    pub reclaimed_blocks: u64,
}

impl ContendedOutcome {
    /// Consume calls per second across all workers.
    pub fn throughput(&self) -> f64 {
        (self.threads as u64 * self.reps as u64) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs the contended read-mostly workload: `threads` workers each
/// traverse one shared immutable input `reps` times, under either
/// guard-protected snapshot reads or the owned atomic-RMW baseline.
///
/// The driver keeps ownership of the shared root across the whole read
/// phase and drops it only after the join, so the segment drains
/// through the epoch queue and the Thm. 2/4 audit runs over a fully
/// reclaimed segment in *both* modes.
pub fn run_contended(
    w: &Workload,
    mode: ReadMode,
    n: i64,
    threads: u32,
    reps: u32,
    config: RunConfig,
) -> Result<ContendedOutcome, SuiteError> {
    if threads == 0 || reps == 0 {
        return Err(SuiteError::Runtime(RuntimeError::Internal(
            "contended run needs at least one thread and one repetition".into(),
        )));
    }
    let spec = w.parallel.ok_or_else(|| {
        SuiteError::Runtime(RuntimeError::Internal(format!(
            "workload {} has no parallel spec",
            w.name
        )))
    })?;
    let compiled = match mode {
        ReadMode::Snapshot => compile_with_config(w.source, PassConfig::perceus_borrowing())?,
        ReadMode::Owned => compile_workload(w.source, Strategy::Perceus)?,
    };
    let find = |name: &str| {
        compiled.find_fun(name).ok_or_else(|| {
            SuiteError::Runtime(RuntimeError::Internal(format!(
                "workload {} has no function `{name}`",
                w.name
            )))
        })
    };
    let build = find(spec.build)?;
    let consume = find(spec.consume)?;
    if mode == ReadMode::Snapshot && !compiled.param_borrowed(consume, 0) {
        return Err(SuiteError::Audit(format!(
            "borrow inference did not borrow `{}`'s first parameter; \
             the snapshot path needs a borrowed traversal",
            spec.consume
        )));
    }

    // Build the shared input once and move it across the share barrier.
    let mut seg = SharedHeap::new();
    let mut b = Machine::new(&compiled, ReclaimMode::Rc, config.clone());
    let v = b.run_fun(build, (spec.build_args)(n))?;
    let shared_root = b.heap.mark_shared(v, &mut seg)?;
    if b.heap.live_blocks() != 0 {
        return Err(SuiteError::Audit(format!(
            "builder heap retains {} blocks after the share barrier",
            b.heap.live_blocks()
        )));
    }
    // Ownership for the read phase: the driver always keeps one strong
    // reference on the root (dropped after the join). Owned-mode
    // workers additionally consume one pre-added reference per call;
    // snapshot-mode workers consume nothing.
    if mode == ReadMode::Owned {
        seg.retain(shared_root, threads * reps)?;
    }
    let mut stats = b.heap.stats;
    drop(b);
    let seg = Arc::new(seg);

    let start = Instant::now();
    let results: Vec<Result<(DeepValue, Stats), SuiteError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let seg = Arc::clone(&seg);
                let config = config.clone();
                let compiled = &compiled;
                s.spawn(move || {
                    let mut m = Machine::new(compiled, ReclaimMode::Rc, config);
                    m.heap.attach_shared(seg);
                    let mut value: Option<DeepValue> = None;
                    for _ in 0..reps {
                        let v = m.run_fun(consume, (spec.consume_args)(shared_root, n))?;
                        let got = m.read_back(v)?;
                        m.drop_result(v)?;
                        match &value {
                            None => value = Some(got),
                            Some(first) if *first != got => {
                                return Err(SuiteError::Audit(format!(
                                    "repetitions disagree on the result: {first} vs {got}"
                                )))
                            }
                            Some(_) => {}
                        }
                    }
                    if m.heap.live_blocks() != 0 {
                        return Err(SuiteError::Audit(format!(
                            "worker heap retains {} blocks after the run",
                            m.heap.live_blocks()
                        )));
                    }
                    audit::check_heap(&m.heap, &[]).map_err(SuiteError::Audit)?;
                    Ok((value.expect("reps >= 1"), m.heap.stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut value: Option<DeepValue> = None;
    let mut read_atomics = 0u64;
    for r in results {
        let (v, st) = r?;
        match &value {
            None => value = Some(v),
            Some(first) if *first != v => {
                return Err(SuiteError::Audit(format!(
                    "worker threads disagree on the result: {first} vs {v}"
                )))
            }
            Some(_) => {}
        }
        read_atomics += st.atomic_ops;
        stats = stats.merge(&st);
    }

    // The driver's reference kept the structure alive through the read
    // phase; release it now so the segment drains through the epoch
    // queue, then audit the quiescent, reclaimed segment.
    let mut cleanup = Machine::new(&compiled, ReclaimMode::Rc, config);
    cleanup.heap.attach_shared(Arc::clone(&seg));
    cleanup.drop_result(shared_root)?;
    drop(cleanup); // detaches, unpins, and reclaims retired slots
    stats = stats.merge(&seg.snapshot());
    let shared_audit = audit::check_shared_at_join(&seg).map_err(SuiteError::Audit)?;
    let reclaimed_blocks = seg.reclaimed().0;

    Ok(ContendedOutcome {
        value: value.expect("at least one worker ran"),
        stats,
        threads,
        reps,
        elapsed,
        read_atomics,
        shared_audit,
        reclaimed_blocks,
    })
}
