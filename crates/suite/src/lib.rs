//! # perceus-suite
//!
//! The paper's benchmark programs (§4 and the overview examples),
//! written in the `perceus-lang` surface language, plus a one-call
//! driver that compiles a program under any memory-management strategy
//! and runs it on the `perceus-runtime` machine.
//!
//! The five *strategies* reproduce the systems compared in Fig. 9 (see
//! DESIGN.md for the substitution rationale):
//!
//! | Strategy | Paper column |
//! |---|---|
//! | [`Strategy::Perceus`] | Koka (all optimizations) |
//! | [`Strategy::PerceusNoOpt`] | Koka, no-opt |
//! | [`Strategy::Scoped`] | Swift / C++ `shared_ptr` / Nim (scope-tied RC) |
//! | [`Strategy::Gc`] | OCaml / Haskell / Java (tracing collection) |
//! | [`Strategy::Arena`] | C++ leak baseline (deriv, nqueens, cfold) |

//! The differential-testing subsystem lives in [`diff`] (strategy ×
//! oracle agreement plus the garbage-free invariant, over [`genprog`]
//! programs) and [`shrink`] (greedy counterexample reduction); the
//! `perceus-suite` binary exposes it as the `fuzz` subcommand.

pub mod certify;
pub mod diff;
pub mod driver;
pub mod genprog;
pub mod native;
pub mod parallel;
pub mod resume;
pub mod shrink;
pub mod workloads;

pub use certify::{
    certify_and_replay, certify_final, certify_stages, eval_bound_at, replay_sizes,
    replay_workload, Exceedance, ReplayReport, StageCerts,
};
pub use diff::{
    differential_check, fuzz, CheckOutcome, Divergence, Failure, FuzzConfig, FuzzReport,
};
pub use driver::{
    compile_and_run, compile_borrowing, compile_with_config, compile_workload, oracle_run,
    run_workload, RunOutcome, Strategy, SuiteError,
};
pub use native::{
    compare_probes, ensure_supported, fuzz_native, machine_probe, ExecProbe, NativeBin,
    NativeCheck, NativeFuzzReport, NativeHarness, NativeReport,
};
pub use parallel::{
    run_contended, run_parallel, ContendedOutcome, ParallelOutcome, ParallelSpec, ReadMode,
};
pub use resume::{determinism_divergence, run_workload_budgeted, ResumeOutcome};
pub use shrink::{shrink_program, ShrinkOutcome};
pub use workloads::{workload, workloads, Workload};
