//! Sequential-tenant sessions over one recycled heap: the runtime-level
//! contract behind `perceus-serve` (see `docs/SERVING.md`).
//!
//! The properties under test are the serving restatement of the
//! paper's theorems. Garbage-freedom (Thm. 2/4) means a completed
//! session leaves the worker heap empty, so `Heap::reset` between
//! tenants reclaims *zero* blocks on the happy path — and exactly the
//! aborted tenant's garbage otherwise. The generation check means an
//! address smuggled out of a dead session fails deterministically
//! instead of aliasing the next tenant's data.

use perceus_runtime::audit;
use perceus_runtime::heap::{Heap, ReclaimMode};
use perceus_runtime::machine::{Machine, RunConfig};
use perceus_runtime::{RuntimeError, Value};
use perceus_suite::{compile_workload, Strategy};

const LIST_SUM: &str = r#"
type list { Nil; Cons(head: int, tail: list) }

// Allocates each cell *before* the tail call, so a starved session
// aborts with a partial list live (the shape the reset test needs).
fun build(n: int, acc: list): list {
  if n <= 0 then acc
  else build(n - 1, Cons(n, acc))
}

fun sum(xs: list): int {
  match xs {
    Nil -> 0
    Cons(h, t) -> h + sum(t)
  }
}

fun main(n: int): int {
  sum(build(n, Nil))
}
"#;

fn compiled() -> perceus_runtime::code::Compiled {
    compile_workload(LIST_SUM, Strategy::Perceus).expect("compiles")
}

fn run_session(
    code: &perceus_runtime::code::Compiled,
    heap: Heap,
    config: RunConfig,
    n: i64,
) -> (Heap, Result<i64, RuntimeError>) {
    let mut m = Machine::with_heap(code, heap, config);
    let r = m.run_entry(vec![Value::Int(n)]).and_then(|v| {
        let out = m.read_back(v)?;
        m.drop_result(v)?;
        match out {
            perceus_runtime::DeepValue::Int(i) => Ok(i),
            other => Err(RuntimeError::Internal(format!("non-int result {other}"))),
        }
    });
    (m.into_heap(), r)
}

#[test]
fn clean_sessions_reset_to_zero_and_recycle() {
    let code = compiled();
    let mut heap = Heap::new(ReclaimMode::Rc);
    let mut cold = None;
    for session in 0..5 {
        let (h, r) = run_session(&code, heap, RunConfig::default(), 100);
        heap = h;
        assert_eq!(r.unwrap(), 5050, "session {session}");
        assert_eq!(heap.live_blocks(), 0, "Thm. 2: session {session} drained");
        let stats = heap.stats;
        match &cold {
            // Schedule counters are identical across tenants — only the
            // allocator-placement trio may (and should) change once the
            // free lists are warm.
            None => cold = Some(stats),
            Some(first) => {
                assert_eq!(stats.allocations, first.allocations, "session {session}");
                assert_eq!(stats.frees, first.frees, "session {session}");
                assert_eq!(stats.dups, first.dups, "session {session}");
                assert_eq!(stats.drops, first.drops, "session {session}");
                assert_eq!(stats.reuses, first.reuses, "session {session}");
                assert_eq!(stats.steps, first.steps, "session {session}");
                assert_eq!(stats.peak_live_words, first.peak_live_words);
                assert!(
                    stats.freelist_hits > first.freelist_hits,
                    "warm session {session} must allocate off the recycled lists"
                );
            }
        }
        let reclaimed = heap.reset();
        assert_eq!(reclaimed, 0, "a clean session leaves nothing to retire");
        audit::check_heap(&heap, &[]).expect("post-reset audit");
    }
}

#[test]
fn aborted_session_is_retired_and_the_next_tenant_is_unaffected() {
    let code = compiled();
    let heap = Heap::new(ReclaimMode::Rc);

    // Tenant 1 starves mid-build: the machine dies with the partial
    // list still rooted in its frames.
    let starved = RunConfig::new().with_step_limit(Some(120));
    let (mut heap, r) = run_session(&code, heap, starved, 100);
    assert!(matches!(r, Err(RuntimeError::StepLimit(_))), "{r:?}");
    let leaked = heap.live_blocks();
    assert!(leaked > 0, "an aborted build leaves live blocks");

    // Reset retires exactly that garbage and the audit passes.
    let reclaimed = heap.reset();
    assert_eq!(reclaimed, leaked);
    assert_eq!(heap.live_blocks(), 0);
    audit::check_heap(&heap, &[]).expect("post-reset audit");

    // Tenant 2 on the recycled heap reproduces a fresh heap's schedule
    // exactly.
    let (heap, r) = run_session(&code, heap, RunConfig::default(), 100);
    assert_eq!(r.unwrap(), 5050);
    let warm = heap.stats;
    let (fresh_heap, r) = run_session(&code, Heap::new(ReclaimMode::Rc), RunConfig::default(), 100);
    assert_eq!(r.unwrap(), 5050);
    let fresh = fresh_heap.stats;
    assert_eq!(warm.allocations, fresh.allocations);
    assert_eq!(warm.frees, fresh.frees);
    assert_eq!(warm.steps, fresh.steps);
    assert_eq!(warm.peak_live_blocks, fresh.peak_live_blocks);
}

#[test]
fn stale_addresses_from_a_dead_tenant_fail_deterministically() {
    let code = compiled();
    let heap = Heap::new(ReclaimMode::Rc);
    let starved = RunConfig::new().with_step_limit(Some(120));
    let mut m = Machine::with_heap(&code, heap, starved);
    assert!(m.run_entry(vec![Value::Int(100)]).is_err());

    // Capture an address the dead tenant still holds, then reset.
    let mut heap = m.into_heap();
    let stale = heap
        .iter_live()
        .next()
        .map(|(a, _)| a)
        .expect("the aborted session left a live block");
    heap.reset();

    // The slot was retired and its generation bumped: any access
    // through the smuggled address is an error, not the next tenant's
    // data.
    assert!(heap.block(stale).is_err(), "stale address must not resolve");
    assert!(heap.dup(Value::Ref(stale)).is_err());
}

#[test]
fn memory_limit_is_a_deterministic_sandbox() {
    let code = compiled();
    // The limit trips at the same step every time: live words are
    // exactly the reachable data under Perceus, so the sandbox has no
    // collector-timing slack.
    let mut steps_at_trip = None;
    for _ in 0..3 {
        let config = RunConfig::new().with_memory_limit_words(Some(64));
        let (heap, r) = run_session(&code, Heap::new(ReclaimMode::Rc), config, 1000);
        match r {
            Err(RuntimeError::MemoryLimit { live_words, .. }) => {
                assert!(live_words > 64);
                match steps_at_trip {
                    None => steps_at_trip = Some(heap.stats.steps),
                    Some(s) => assert_eq!(heap.stats.steps, s, "trip point must be deterministic"),
                }
            }
            other => panic!("expected MemoryLimit, got {other:?}"),
        }
    }
}
