//! Properties of the random program generator and the shrinker — the
//! foundations the differential fuzzer stands on.

use perceus_core::check::{self, Discipline};
use perceus_core::ir::pretty::program_to_string;
use perceus_core::ir::wf;
use perceus_core::passes::{normalize, PassName};
use perceus_suite::diff::{fuzz, FuzzConfig};
use perceus_suite::genprog::random_program;
use perceus_suite::shrink::{program_nodes, shrink_program};

/// The generator is a pure function of its seed: identical seeds give
/// identical programs, different seeds (almost always) different ones.
#[test]
fn generation_is_deterministic_under_a_fixed_seed() {
    for seed in [0u64, 1, 42, 0xC0FFEE, u64::MAX] {
        let a = random_program(seed, 30);
        let b = random_program(seed, 30);
        assert_eq!(
            program_to_string(&a),
            program_to_string(&b),
            "seed {seed} must reproduce"
        );
    }
    let a = random_program(7, 30);
    let b = random_program(8, 30);
    assert_ne!(
        program_to_string(&a),
        program_to_string(&b),
        "different seeds should give different programs"
    );
}

/// Every generated program is well-formed and satisfies the
/// *declarative* λ¹ discipline (Fig. 5) before any `dup`/`drop` is
/// inserted — the well-typedness premise of Theorem 3. (Normalization
/// runs first to compute lambda captures; the generator leaves them
/// empty.)
#[test]
fn generated_programs_pass_the_linear_checker_pre_insertion() {
    for seed in 0..200u64 {
        let mut p = random_program(seed, 24);
        normalize::normalize_program(&mut p);
        wf::check_program(&p)
            .unwrap_or_else(|e| panic!("seed {seed}: ill-formed: {e}\n{}", program_to_string(&p)));
        check::check_program_with(&p, Discipline::Relaxed).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: rejected pre-insertion: {e}\n{}",
                program_to_string(&p)
            )
        });
    }
}

/// Shrinker outputs reproduce the original failure class: inject a
/// pass corruption, fuzz until it fails, and require the *shrunk*
/// witness to fail the same way (same class, same attributed stage) —
/// while actually being reduced.
#[test]
fn shrunk_witnesses_reproduce_the_original_failure_class() {
    fn corrupt(p: &mut perceus_core::ir::Program) {
        use perceus_core::ir::Expr;
        let entry = p.entry.unwrap();
        let f = &mut p.funs[entry.0 as usize];
        let par = f.params[0].clone();
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = Expr::dup(par, body);
    }
    let cfg = FuzzConfig {
        iters: 1,
        size: 24,
        mutation: Some((PassName::Insert, corrupt)),
        ..FuzzConfig::default()
    };
    let report = fuzz(&cfg);
    assert_eq!(report.failures.len(), 1, "the corruption must surface");
    let failure = &report.failures[0];
    let classes: Vec<String> = failure.divergences.iter().map(|d| d.class()).collect();
    assert!(
        classes.iter().any(|c| c == "compile:perceus"),
        "shrunk witness lost the failure class: {classes:?}"
    );
    assert!(
        failure
            .divergences
            .iter()
            .any(|d| d.to_string().contains("pass `insert`")),
        "shrunk witness lost the stage attribution"
    );
    assert!(
        failure.reported_nodes < failure.original_nodes,
        "expected an actual reduction ({} -> {})",
        failure.original_nodes,
        failure.reported_nodes
    );
}

/// The shrinker never accepts a candidate violating its predicate, and
/// monotonically decreases program size.
#[test]
fn shrinking_is_monotone_and_class_preserving() {
    let p = random_program(11, 30);
    let baseline = program_nodes(&p);
    // Predicate: the program still contains a `match`.
    let has_match = |q: &perceus_core::ir::Program| {
        let mut found = false;
        for f in &q.funs {
            f.body.visit(&mut |e| {
                if matches!(e, perceus_core::ir::Expr::Match { .. }) {
                    found = true;
                }
            });
        }
        found
    };
    if !has_match(&p) {
        return; // this seed happens to have no match; nothing to test
    }
    let out = shrink_program(&p, 10_000, has_match);
    assert!(has_match(&out.program));
    assert!(out.final_nodes <= baseline);
    assert_eq!(out.initial_nodes, baseline);
}
