//! End-to-end tests of the parallel workload driver: N real machines
//! on N real threads, one shared atomic-header segment, and the
//! join-time garbage-free audit over both heap segments (§2.7.2 meets
//! Thm. 2/4).

use perceus_runtime::machine::{DeepValue, RunConfig};
use perceus_suite::driver::compile_workload;
use perceus_suite::{run_contended, run_parallel, run_workload, workload, workloads};
use perceus_suite::{ReadMode, Strategy};

/// The acceptance bar: every Fig. 9 workload at four threads, free-list
/// recycling on (the default), passes the join-time audit. These
/// workloads have no shared-input split, so the workers must stay
/// entirely on the non-atomic fast path.
#[test]
fn figure9_workloads_pass_the_join_audit_at_four_threads() {
    for w in workloads().iter().filter(|w| w.in_figure9) {
        let out = run_parallel(w, Strategy::Perceus, w.test_n, 4, RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(out.shared_audit.is_some(), "{}: audit ran", w.name);
        assert!(!out.shared_input, "{}: no shared-input split", w.name);
        assert_eq!(
            out.stats.atomic_ops, 0,
            "{}: local-only workers never pay an atomic",
            w.name
        );
        // The parallel result agrees with a plain single-machine run.
        let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
        let single =
            run_workload(&compiled, Strategy::Perceus, w.test_n, RunConfig::default()).unwrap();
        assert_eq!(out.value, single.value, "{}", w.name);
    }
}

/// Workloads with a shared-input split pay real atomic RMWs on the
/// shared structure and drain the segment completely by join time.
#[test]
fn shared_input_workloads_pay_real_atomics_and_drain() {
    for name in ["map", "refs"] {
        let w = workload(name).unwrap();
        let out = run_parallel(&w, Strategy::Perceus, w.test_n, 4, RunConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.shared_input, "{name}: spec declared");
        assert!(out.shared_installs > 0, "{name}: barrier moved blocks");
        assert!(out.stats.atomic_ops > 0, "{name}: shared traffic is atomic");
        let audit = out.shared_audit.expect("rc strategies audit the segment");
        assert_eq!(audit.live_blocks, 0, "{name}: segment drained at join");
        assert_eq!(audit.freed_blocks, out.shared_installs, "{name}");
    }
}

/// The shared consume of map is `sum(build(0, n), 0)`: the closed form
/// locks the actual value in, not just cross-thread agreement.
#[test]
fn parallel_map_result_matches_the_closed_form() {
    let w = workload("map").unwrap();
    let out = run_parallel(&w, Strategy::Perceus, 500, 4, RunConfig::default()).unwrap();
    assert_eq!(out.value, DeepValue::Int(500 * 499 / 2));
    assert_eq!(out.threads, 4);
}

/// A single worker over the shared segment still works (and still pays
/// atomics — the sharing decision is per-value, not per-thread-count).
#[test]
fn one_thread_is_a_valid_fleet() {
    let w = workload("map").unwrap();
    let out = run_parallel(&w, Strategy::Perceus, 200, 1, RunConfig::default()).unwrap();
    assert_eq!(out.value, DeepValue::Int(200 * 199 / 2));
    assert!(out.stats.atomic_ops > 0);
    assert_eq!(out.shared_audit.unwrap().live_blocks, 0);
}

/// Non-rc strategies cannot maintain shared counts (their workers emit
/// no rc operations), so they fall back to independent instances of
/// `main(n)` — and must not crash or disagree.
#[test]
fn non_rc_strategies_run_independent_instances() {
    let w = workload("map").unwrap();
    for s in [Strategy::Gc, Strategy::Arena] {
        let out = run_parallel(&w, s, 200, 2, RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", s.label()));
        assert!(!out.shared_input, "{}", s.label());
        assert!(out.shared_audit.is_none(), "{}", s.label());
        // main(n) = sum of (i+1 for i in 0..n) = n(n+1)/2.
        assert_eq!(out.value, DeepValue::Int(200 * 201 / 2), "{}", s.label());
    }
}

/// Every strategy survives a two-thread run of every spec'd workload.
#[test]
fn every_strategy_survives_two_threads() {
    for name in ["map", "refs"] {
        let w = workload(name).unwrap();
        for s in Strategy::ALL {
            run_parallel(&w, s, 100, 2, RunConfig::default())
                .unwrap_or_else(|e| panic!("{name} under {}: {e}", s.label()));
        }
    }
}

/// The snapshot path's acceptance gate: 8 workers each traverse the
/// shared list many times under borrowed reads, and the whole read
/// phase performs **zero** atomic RMWs — the epoch pins carry the
/// liveness argument, not count traffic. The segment still drains
/// completely once the driver releases its reference, and the storage
/// is reclaimed *before* segment drop (the retention fix).
#[test]
fn snapshot_reads_at_eight_threads_pay_zero_atomics() {
    let w = workload("map").unwrap();
    let out = run_contended(&w, ReadMode::Snapshot, 500, 8, 16, RunConfig::default()).unwrap();
    assert_eq!(out.value, DeepValue::Int(500 * 499 / 2));
    assert_eq!(
        out.read_atomics, 0,
        "borrowed traversal of the shared segment must be RMW-free"
    );
    assert_eq!(out.shared_audit.live_blocks, 0, "segment drained at join");
    assert!(
        out.reclaimed_blocks > 0,
        "dead slots reclaim through the epoch queue, not at segment drop"
    );
    assert_eq!(out.reclaimed_blocks, out.shared_audit.reclaimed_blocks);
}

/// The same contended shape at 32 threads — the top of the issue's
/// scaling range. Zero RMWs must hold regardless of the thread count.
#[test]
fn snapshot_reads_at_thirty_two_threads_pay_zero_atomics() {
    let w = workload("map").unwrap();
    let out = run_contended(&w, ReadMode::Snapshot, 200, 32, 4, RunConfig::default()).unwrap();
    assert_eq!(out.value, DeepValue::Int(200 * 199 / 2));
    assert_eq!(out.read_atomics, 0);
    assert_eq!(out.shared_audit.live_blocks, 0);
}

/// The owned baseline over the identical workload pays real atomics on
/// every visit — the contrast that makes the snapshot gate meaningful —
/// and both modes agree on the value.
#[test]
fn owned_baseline_pays_atomics_where_snapshot_pays_none() {
    let w = workload("map").unwrap();
    let owned = run_contended(&w, ReadMode::Owned, 300, 4, 4, RunConfig::default()).unwrap();
    let snap = run_contended(&w, ReadMode::Snapshot, 300, 4, 4, RunConfig::default()).unwrap();
    assert_eq!(owned.value, snap.value);
    assert!(
        owned.read_atomics > 0,
        "owned traversal pays per-visit RMWs"
    );
    assert_eq!(snap.read_atomics, 0);
    assert_eq!(owned.shared_audit.live_blocks, 0);
    assert_eq!(snap.shared_audit.live_blocks, 0);
}

/// When the host offers real parallelism, the RMW-free read path must
/// scale: at 8 threads, snapshot throughput beats the owned baseline
/// by at least 5x. On single-core CI runners the wall-clock ratio is
/// meaningless, so the test asserts the gate only when the hardware
/// can express it (the zero-RMW property above is asserted always).
#[test]
fn snapshot_throughput_gate_when_hardware_allows() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cores < 8 {
        eprintln!("skipping throughput gate: only {cores} core(s) available");
        return;
    }
    let w = workload("map").unwrap();
    let owned = run_contended(&w, ReadMode::Owned, 2_000, 8, 32, RunConfig::default()).unwrap();
    let snap = run_contended(&w, ReadMode::Snapshot, 2_000, 8, 32, RunConfig::default()).unwrap();
    let ratio = snap.throughput() / owned.throughput().max(1e-9);
    assert!(
        ratio >= 5.0,
        "snapshot/owned throughput ratio {ratio:.2} < 5.0 at 8 threads"
    );
}
