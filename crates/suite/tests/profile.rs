//! Integration tests of the attributed profiler (`perceus_runtime::profile`)
//! through the suite driver and the `perceus-suite profile` CLI:
//!
//! * **exactness** — the profile is a partition of the run's heap
//!   statistics: summing every calling-context's counters reproduces
//!   the monotonic counters of [`Stats`] exactly, per workload and
//!   per strategy (the Appendix D.3 exact-count property, refined to
//!   attribution);
//! * **determinism** — profiling a deterministic single-threaded run
//!   twice renders byte-identical reports, and so does a 4-thread
//!   independent-instance run (spawn-order merge);
//! * **zero overhead** — a run with the profiler disabled produces
//!   bit-identical results and statistics to the seed behavior.

use perceus_runtime::machine::RunConfig;
use perceus_runtime::ProfCounts;
use perceus_suite::{compile_workload, run_parallel, run_workload, workload, Strategy};
use std::process::{Command, Output};

fn profiled() -> RunConfig {
    RunConfig::new().with_profile(true)
}

#[test]
fn profile_totals_exactly_equal_run_stats() {
    for name in ["rbtree", "deriv", "nqueens", "cfold", "tmap", "map"] {
        let w = workload(name).unwrap();
        let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
        let out = run_workload(&compiled, Strategy::Perceus, w.test_n, profiled()).unwrap();
        let prof = out.profile.expect("profiling was enabled");
        assert_eq!(
            prof.totals(),
            ProfCounts::capture(&out.stats),
            "{name}: attributed counters must partition the run's stats"
        );
    }
}

#[test]
fn profile_is_exact_under_every_strategy() {
    let w = workload("rbtree").unwrap();
    for strategy in Strategy::ALL {
        let compiled = compile_workload(w.source, strategy).unwrap();
        let out = run_workload(&compiled, strategy, w.test_n, profiled()).unwrap();
        let prof = out.profile.expect("profiling was enabled");
        assert_eq!(
            prof.totals(),
            ProfCounts::capture(&out.stats),
            "{}: attributed counters must partition the run's stats",
            strategy.label()
        );
    }
}

#[test]
fn disabled_profiler_is_free() {
    let w = workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let off = run_workload(&compiled, Strategy::Perceus, w.test_n, RunConfig::default()).unwrap();
    let on = run_workload(&compiled, Strategy::Perceus, w.test_n, profiled()).unwrap();
    assert!(off.profile.is_none(), "default config must not profile");
    assert_eq!(off.value, on.value);
    assert_eq!(
        off.stats, on.stats,
        "attribution must not change a single counter of the run itself"
    );
}

#[test]
fn single_threaded_report_is_deterministic() {
    let w = workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let render = || {
        let out = run_workload(&compiled, Strategy::Perceus, w.test_n, profiled()).unwrap();
        let prof = out.profile.unwrap();
        (
            prof.render_json(&compiled, Some(w.source)),
            prof.render_folded(&compiled, perceus_runtime::ProfMetric::RcOps),
        )
    };
    let (json_a, folded_a) = render();
    let (json_b, folded_b) = render();
    assert_eq!(json_a, json_b, "two identical runs must render identically");
    assert_eq!(folded_a, folded_b);
    assert!(
        json_a.contains("\"name\":\"ins\""),
        "names the hot function"
    );
    assert!(folded_a.contains(";ins "), "folded stacks walk through ins");
}

#[test]
fn merged_parallel_profile_is_deterministic_and_exact() {
    // rbtree has no shared-input split: 4 independent instances, so
    // even the per-function split is deterministic after the
    // spawn-order merge (shared-input workloads only guarantee
    // deterministic *totals* — see docs/OBSERVABILITY.md).
    let w = workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let run = || {
        let out = run_parallel(&w, Strategy::Perceus, w.test_n, 4, profiled()).unwrap();
        let prof = out.profile.expect("profiling was enabled");
        (
            prof.render_json(&compiled, Some(w.source)),
            prof.totals(),
            out.stats,
        )
    };
    let (json_a, totals_a, stats_a) = run();
    let (json_b, _, _) = run();
    assert_eq!(
        json_a, json_b,
        "4-thread merged report must be reproducible"
    );
    assert_eq!(
        totals_a,
        ProfCounts::capture(&stats_a),
        "merged attribution must still partition the merged stats"
    );
}

#[test]
fn constructor_attribution_accounts_for_reuse() {
    let w = workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let out = run_workload(&compiled, Strategy::Perceus, w.test_n, profiled()).unwrap();
    let prof = out.profile.unwrap();
    let ctors = prof.per_ctor();
    let allocs: u64 = ctors.iter().map(|(_, c)| c.allocs).sum();
    let reuses: u64 = ctors.iter().map(|(_, c)| c.reuses).sum();
    assert_eq!(
        reuses, out.stats.reuses,
        "every reuse-token construction names its constructor"
    );
    assert!(
        allocs <= out.stats.allocations,
        "constructor allocs are a subset of all fresh allocations"
    );
    let node = ctors
        .iter()
        .map(|(id, c)| (compiled.types.ctor(*id).name.clone(), c))
        .find(|(name, _)| &**name == "Node")
        .expect("rbtree allocates Node cells");
    assert!(node.1.reuses > 0, "rbtree's insert reuses Node in place");
}

// --- CLI -----------------------------------------------------------

fn run_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perceus-suite"))
        .args(args)
        .output()
        .expect("spawn perceus-suite")
}

#[test]
fn profile_cli_json_is_byte_identical_across_runs() {
    let a = run_cli(&["profile", "--workload", "rbtree", "--json"]);
    let b = run_cli(&["profile", "--workload", "rbtree", "--json"]);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "profile --json must be deterministic");
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("\"workload\":\"rbtree\""));
    assert!(text.contains("\"totals\":{"));
}

#[test]
fn profile_cli_threads_merge_is_byte_identical_across_runs() {
    let args = [
        "profile",
        "--workload",
        "rbtree",
        "--threads",
        "4",
        "--json",
    ];
    let a = run_cli(&args);
    let b = run_cli(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "merged profile must be deterministic");
}

#[test]
fn profile_cli_rejects_conflicting_and_unknown_flags() {
    let conflict = run_cli(&["profile", "--workload", "rbtree", "--json", "--folded"]);
    assert_eq!(conflict.status.code(), Some(2));
    let metric = run_cli(&["profile", "--metric", "nonsense"]);
    assert_eq!(metric.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&metric.stderr).contains("nonsense"));
}
