//! Resume determinism: suspending and resuming an execution must be
//! invisible — the result value, the `println` output, and every
//! [`perceus_runtime::Stats`] schedule counter must be bit-identical to
//! an uninterrupted run, with the heap audit passing at every
//! suspension point (the budgeted driver checks it on each leg).

use perceus_bench::counters::counter_values;
use perceus_bench::{Baseline, COUNTER_KEYS};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{
    compile_workload, determinism_divergence, run_workload, run_workload_budgeted, workload,
    Strategy,
};
use proptest::prelude::*;

fn baseline() -> Baseline {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");
    let src = std::fs::read_to_string(path).expect("read BENCH_BASELINE.json");
    Baseline::parse_json(&src).expect("parse BENCH_BASELINE.json")
}

/// Every BENCH_BASELINE.json workload, suspended and resumed many
/// times, produces bit-identical `Stats` to an uninterrupted run — and
/// both match the committed baseline counters exactly.
#[test]
fn baseline_workloads_resume_bit_identically() {
    let baseline = baseline();
    assert!(!baseline.workloads.is_empty());
    for row in &baseline.workloads {
        let w = workload(&row.name).expect("baseline workload is registered");
        let compiled = compile_workload(w.source, Strategy::Perceus).expect("compile");
        let straight =
            run_workload(&compiled, Strategy::Perceus, row.n, RunConfig::default()).expect("run");

        // Split into enough legs that suspension actually happens many
        // times (the smallest baseline workload runs ~4.5k steps).
        let budget = (straight.stats.steps / 23).max(1);
        let resumed = run_workload_budgeted(
            &compiled,
            Strategy::Perceus,
            row.n,
            RunConfig::default(),
            &[budget],
        )
        .expect("budgeted run");
        assert!(
            resumed.suspensions >= 10,
            "{}: only {} suspensions — the budget must bite",
            row.name,
            resumed.suspensions
        );
        if let Some(d) = determinism_divergence(&straight, &resumed) {
            panic!("{}: {d}", row.name);
        }
        assert_eq!(resumed.outcome.leaked_blocks, 0, "{}", row.name);

        // Both runs match the committed baseline counter-for-counter.
        let got = counter_values(&resumed.outcome.stats);
        for (key, value) in &row.counters {
            let Some(idx) = COUNTER_KEYS.iter().position(|k| k == key) else {
                continue;
            };
            assert_eq!(
                got[idx], *value,
                "{}: counter {key} drifted from BENCH_BASELINE.json",
                row.name
            );
        }
    }
}

/// An irregular budget schedule (not a fixed chunk) is still invisible.
#[test]
fn irregular_budget_schedule_is_invisible() {
    let w = workload("rbtree").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let straight = run_workload(&compiled, Strategy::Perceus, 100, RunConfig::default()).unwrap();
    let resumed = run_workload_budgeted(
        &compiled,
        Strategy::Perceus,
        100,
        RunConfig::default(),
        &[1, 7, 100, 3, 1000, 42, 999],
    )
    .unwrap();
    assert!(resumed.suspensions > 0);
    assert!(determinism_divergence(&straight, &resumed).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random budget splits never change the result value (or anything
    /// else the determinism check compares).
    #[test]
    fn random_budget_splits_never_change_the_result(
        name in proptest::sample::select(&["map", "queue", "exn", "tmap-rec"][..]),
        budgets in proptest::collection::vec(1usize..5_000, 1..12),
        n in 20i64..200,
    ) {
        let w = workload(name).unwrap();
        let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
        let straight =
            run_workload(&compiled, Strategy::Perceus, n, RunConfig::default()).unwrap();
        let budgets: Vec<u64> = budgets.iter().map(|b| *b as u64).collect();
        let resumed = run_workload_budgeted(
            &compiled,
            Strategy::Perceus,
            n,
            RunConfig::default(),
            &budgets,
        )
        .unwrap();
        prop_assert_eq!(&resumed.outcome.value, &straight.value);
        prop_assert!(determinism_divergence(&straight, &resumed).is_none());
    }
}
