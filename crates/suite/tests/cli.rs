//! End-to-end tests of the `perceus-suite` command-line interface,
//! exercising the documented exit-code contract:
//!
//! * `0` — success (including `--help`-style usage on no arguments)
//! * `1` — an operation ran and failed (e.g. `analyze --deny` violations)
//! * `2` — usage error: unknown subcommand, unknown option, bad value

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perceus-suite"))
        .args(args)
        .output()
        .expect("spawn perceus-suite")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = run(&[]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).to_lowercase().contains("usage"),
        "usage text expected"
    );
    assert!(
        stdout(&out).contains("analyze"),
        "usage lists the analyze subcommand"
    );
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("frobnicate"),
        "names the offending word"
    );
}

#[test]
fn unknown_option_exits_2() {
    let out = run(&["fuzz", "--bogus"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("--bogus"),
        "names the offending option"
    );
}

#[test]
fn unknown_workload_exits_2() {
    let out = run(&["stages", "--workload", "nope"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_deny_code_exits_2() {
    let out = run(&["analyze", "--workload", "map", "--deny", "NOPE"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("NOPE"));
}

#[test]
fn missing_option_value_exits_2() {
    let out = run(&["analyze", "--workload"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn stages_json_is_well_formed() {
    let out = run(&["stages", "--workload", "map", "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "got: {json}");
    assert!(json.contains("\"stages\""));
    assert!(json.contains("\"workload\":\"map\""));
}

#[test]
fn analyze_json_reports_diagnostics() {
    let out = run(&["analyze", "--workload", "rbtree", "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "got: {json}");
    assert!(json.contains("\"diagnostics\""));
    assert!(json.contains("\"functions\""));
    assert!(json.contains("\"violations\""));
}

#[test]
fn analyze_deny_l2_passes_on_fused_output() {
    // The final stage under the default strategy is fully fused, so
    // denying L2 must not trip (this is the CI gate).
    let out = run(&["analyze", "--workload", "map", "--deny", "L2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

#[test]
fn analyze_deny_violation_exits_1() {
    // rbtree's `ins` allocates along its recursion under the default
    // strategy (no reuse token on that path), so L4 fires at the final
    // stage; denying a code that fires must exit 1.
    let out = run(&["analyze", "--workload", "rbtree", "--deny", "L4"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
}

#[test]
fn analyze_deny_json_emits_the_full_report_before_failing() {
    // A tripped deny gate must still print the complete JSON document
    // (CI consumers read *which* gate fired from stdout), including the
    // per-target denied counts, and only then exit 1 — not 2.
    let out = run(&["analyze", "--workload", "rbtree", "--deny", "L4", "--json"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "got: {json}");
    assert!(
        json.contains("\"denied\":[{\"code\":\"L4\",\"count\":"),
        "got: {json}"
    );
    assert!(json.contains("\"violations\":"), "got: {json}");
    assert!(
        json.contains("\"stages\""),
        "the report body is present too"
    );
}

#[test]
fn analyze_deny_json_reports_empty_denied_on_success() {
    let out = run(&["analyze", "--workload", "map", "--deny", "L2", "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("\"denied\":[]"),
        "clean gate, empty list"
    );
}

#[test]
fn parallel_runs_and_reports_the_join_audit() {
    let out = run(&[
        "parallel",
        "--workload",
        "map",
        "--threads",
        "2",
        "--n",
        "200",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 threads"), "got: {text}");
    assert!(text.contains("join audit: ok"), "got: {text}");
    assert!(text.contains("atomic rc ops:"), "got: {text}");
}

#[test]
fn parallel_json_is_well_formed() {
    let out = run(&[
        "parallel",
        "--workload",
        "map",
        "--threads",
        "2",
        "--n",
        "200",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "got: {json}");
    assert!(json.contains("\"atomic_ops\":"), "got: {json}");
    assert!(json.contains("\"join_audit\":{"), "got: {json}");
    assert!(json.contains("\"threads\":2"), "got: {json}");
}

#[test]
fn parallel_unknown_workload_exits_2() {
    let out = run(&["parallel", "--workload", "nope"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn parallel_zero_threads_exits_2() {
    let out = run(&["parallel", "--workload", "map", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}
