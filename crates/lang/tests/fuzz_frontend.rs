//! Robustness fuzzing for the front end: arbitrary input and mutated
//! valid programs must produce `Ok` or a located `Err` — never a panic,
//! and any accepted program must lower to well-formed core.

use perceus_core::ir::wf;
use perceus_core::passes::normalize;
use proptest::prelude::*;

const FRAGMENTS: &[&str] = &[
    "fun", "type", "val", "match", "if", "then", "elif", "else", "fn", "main", "x", "xs", "Cons",
    "Nil", "int", "bool", "list", "(", ")", "{", "}", "<", ">", ",", ";", "->", "=", "==", "!=",
    "<=", ">=", "+", "-", "*", "/", "%", "&&", "||", ":=", "!", ":", "0", "1", "42", "_", "\n",
    " ", "a", "b", "ref", "println",
];

const VALID: &str = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
fun main(n: int): int { n }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random token soup: the compiler terminates with Ok or Err.
    #[test]
    fn token_soup_never_panics(parts in proptest::collection::vec(
        proptest::sample::select(FRAGMENTS), 0..60
    )) {
        let src: String = parts.concat();
        match perceus_lang::compile_str(&src) {
            Ok(mut p) => {
                normalize::normalize_program(&mut p);
                wf::check_program(&p).expect("accepted programs are well-formed");
            }
            Err(e) => {
                // The error must render against the source without
                // panicking (span sanity).
                let _ = e.render(&src);
            }
        }
    }

    /// Mutations of a valid program: delete or duplicate a random byte
    /// range — again, no panics, and acceptance implies well-formedness.
    #[test]
    fn mutated_program_never_panics(
        start in 0usize..200,
        len in 0usize..40,
        duplicate in any::<bool>(),
    ) {
        let bytes = VALID.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let mutated: Vec<u8> = if duplicate {
            [&bytes[..end], &bytes[start..end], &bytes[end..]].concat()
        } else {
            [&bytes[..start], &bytes[end..]].concat()
        };
        // Only valid UTF-8 inputs (the API takes &str).
        if let Ok(src) = std::str::from_utf8(&mutated) {
            match perceus_lang::compile_str(src) {
                Ok(mut p) => {
                    normalize::normalize_program(&mut p);
                    wf::check_program(&p).expect("accepted programs are well-formed");
                }
                Err(e) => {
                    let _ = e.render(src);
                }
            }
        }
    }
}
