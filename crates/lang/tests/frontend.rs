//! Front-end battery: parser corners, type-inference behaviors, error
//! reporting, and lowering invariants, on programs larger than the unit
//! tests cover.

use perceus_core::ir::wf::assert_well_formed;
use perceus_core::passes::normalize;
use perceus_lang::error::Phase;
use perceus_lang::{compile_str, LangError};

fn ok(src: &str) {
    let mut p = compile_str(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    normalize::normalize_program(&mut p);
    assert_well_formed(&p);
}

fn err(src: &str) -> LangError {
    compile_str(src).expect_err("should be rejected")
}

// ---- programs that must compile --------------------------------------

#[test]
fn polymorphic_pipelines() {
    ok(r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
type pair<a, b> { P(fst: a, snd: b) }

fun zip(xs: list<a>, ys: list<b>): list<pair<a, b>> {
  match xs {
    Cons(x, xrest) ->
      match ys {
        Cons(y, yrest) -> Cons(P(x, y), zip(xrest, yrest))
        Nil -> Nil
      }
    Nil -> Nil
  }
}

fun fsts(ps: list<pair<a, b>>): list<a> {
  match ps {
    Cons(p, rest) ->
      match p { P(x, _) -> Cons(x, fsts(rest)) }
    Nil -> Nil
  }
}

fun main(n: int): int {
  match fsts(zip(Cons(n, Nil), Cons(True, Nil))) {
    Cons(x, _) -> x
    Nil -> 0
  }
}
"#);
}

#[test]
fn higher_order_and_closures() {
    ok(r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun foldr(xs: list<a>, z: b, f: (a, b) -> b): b {
  match xs {
    Cons(x, rest) -> f(x, foldr(rest, z, f))
    Nil -> z
  }
}

fun compose(f: (b) -> c, g: (a) -> b): (a) -> c {
  fn(x) { f(g(x)) }
}

fun main(n: int): int {
  val add-n = fn(x) { x + n }
  val double = fn(x) { x * 2 }
  val both = compose(add-n, double)
  foldr(Cons(1, Cons(2, Nil)), 0, fn(x, acc) { both(x) + acc })
}
"#);
}

#[test]
fn deep_nesting_and_operators() {
    ok(r#"
fun main(n: int): int {
  val a = (((n + 1) * 2 - 3) / 4) % 5
  val b = if a < 0 || a > 10 && n != 0 then 0 - a else a
  min(max(a, b), 100)
}
"#);
}

#[test]
fn shadowing_rebinds() {
    ok(r#"
fun main(n: int): int {
  val x = n
  val x = x + 1
  val x = x * 2
  x
}
"#);
}

#[test]
fn comments_everywhere() {
    ok(r#"
// leading comment
type t { /* inline */ A; B(x: int) /* trailing */ }
/* multi
   line /* nested */ still comment */
fun main(n: int): int { // after code
  match B(n) { B(x) -> x; A -> 0 }
}
"#);
}

#[test]
fn hyphenated_names_and_subtraction() {
    ok(r#"
fun is-small(x: int): bool { x < 10 }
fun main(n: int): int {
  if is-small(n - 1) then n - 1 else 0
}
"#);
}

#[test]
fn unit_returns_and_sequencing() {
    ok(r#"
fun log-twice(x: int): unit {
  println(x)
  println(x * 2)
}
fun main(n: int): int {
  log-twice(n)
  n
}
"#);
}

#[test]
fn big_mutual_recursion_scc() {
    ok(r#"
fun f1(n: int): int { if n == 0 then 1 else f2(n - 1) }
fun f2(n: int): int { if n == 0 then 2 else f3(n - 1) }
fun f3(n: int): int { if n == 0 then 3 else f1(n - 1) }
fun main(n: int): int { f1(n) + f2(n) + f3(n) }
"#);
}

// ---- programs that must be rejected, with the right phase ------------

#[test]
fn rejects_with_correct_phases() {
    assert_eq!(err("fun main( {").phase, Phase::Parse);
    assert_eq!(err("fun main(): int { 1 + () }").phase, Phase::Type);
    assert_eq!(err("type t { A }\ntype t { B }").phase, Phase::Resolve);
    assert_eq!(err("fun main(): int { missing(1) }").phase, Phase::Type);
}

#[test]
fn type_errors_carry_positions() {
    let src = "fun main(): int {\n  val x = 1\n  x + True\n}";
    let e = err(src);
    let rendered = e.render(src);
    assert!(rendered.contains("3:"), "line 3 expected: {rendered}");
}

#[test]
fn rejects_occurs_check() {
    // f applied to itself forces an infinite type.
    let e = err("fun main(): int { (fn(f) { f(f) })(fn(g) { g(g) }) }");
    assert_eq!(e.phase, Phase::Type);
    assert!(e.message.contains("infinite"), "{e}");
}

#[test]
fn rejects_arity_mismatches() {
    let e = err(r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun main(): int { match Cons(1) { _ -> 0 } }
"#);
    assert_eq!(e.phase, Phase::Type);
}

#[test]
fn rejects_wrong_ctor_type_in_pattern() {
    let e = err(r#"
type a { MkA }
type b { MkB }
fun main(): int {
  match MkA {
    MkB -> 1
  }
}
"#);
    assert_eq!(e.phase, Phase::Type);
}

#[test]
fn rejects_heterogeneous_list() {
    let e = err(r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun main(): int {
  match Cons(1, Cons(True, Nil)) { _ -> 0 }
}
"#);
    assert_eq!(e.phase, Phase::Type);
}

#[test]
fn rejects_unbound_type_in_signature() {
    let e = err("fun main(x: ghost<int>): int { 0 }");
    assert_eq!(e.phase, Phase::Type);
}

#[test]
fn rejects_non_bool_condition() {
    let e = err("fun main(n: int): int { if n then 1 else 2 }");
    assert_eq!(e.phase, Phase::Type);
}

// ---- lowering invariants ---------------------------------------------

#[test]
fn lowering_always_produces_anf() {
    use perceus_core::passes::normalize::is_anf;
    let srcs = [
        r#"fun main(n: int): int { (n + 1) * (n + 2) * (n + 3) }"#,
        r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun main(n: int): int {
  match Cons(n + 1, Cons(n * 2, Nil)) {
    Cons(x, _) -> x
    Nil -> 0
  }
}
"#,
    ];
    for src in srcs {
        let mut p = compile_str(src).unwrap();
        normalize::normalize_program(&mut p);
        for (_, f) in p.funs() {
            assert!(is_anf(&f.body), "{src}");
        }
    }
}

#[test]
fn entry_point_is_main_when_present() {
    let p = compile_str("fun helper(): int { 1 }\nfun main(n: int): int { helper() }").unwrap();
    let entry = p.entry.expect("main found");
    assert_eq!(&*p.fun(entry).name, "main");
    let p = compile_str("fun not-main(): int { 1 }").unwrap();
    assert!(p.entry.is_none());
}

// ---- integer-literal patterns ------------------------------------------

#[test]
fn literal_pattern_type_mismatch_rejected() {
    let e = err(r#"
type t { A }
fun main(): int { match A { 0 -> 1; _ -> 2 } }
"#);
    assert_eq!(e.phase, Phase::Type);
}

// ---- match diagnostics ---------------------------------------------------

#[test]
fn warns_on_unreachable_arm() {
    let src = r#"
type t { A; B(x: int) }
fun f(v: t): int {
  match v {
    A -> 1
    _ -> 2
    B(x) -> x
  }
}
"#;
    let (_, warnings) = perceus_lang::compile_str_checked(src).unwrap();
    assert!(
        warnings.iter().any(|w| w.message.contains("unreachable")),
        "{warnings:?}"
    );
}

#[test]
fn warns_on_non_exhaustive_match() {
    let src = r#"
type t { A; B(x: int) }
fun f(v: t): int {
  match v { A -> 1 }
}
"#;
    let (_, warnings) = perceus_lang::compile_str_checked(src).unwrap();
    assert!(
        warnings
            .iter()
            .any(|w| w.message.contains("non-exhaustive")),
        "{warnings:?}"
    );
}

#[test]
fn no_warnings_on_clean_matches() {
    let src = r#"
type t { A; B(x: int) }
fun f(v: t): int {
  match v {
    A -> 1
    B(x) -> x
  }
}
"#;
    let (_, warnings) = perceus_lang::compile_str_checked(src).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
}

#[test]
fn literal_matches_warn_without_catch_all() {
    let src = "fun f(n: int): int { match n { 0 -> 1; 1 -> 2 } }";
    let (_, warnings) = perceus_lang::compile_str_checked(src).unwrap();
    assert!(
        warnings
            .iter()
            .any(|w| w.message.contains("non-exhaustive")),
        "{warnings:?}"
    );
    let src = "fun f(n: int): int { match n { 0 -> 1; k -> k } }";
    let (_, warnings) = perceus_lang::compile_str_checked(src).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
}

#[test]
fn suite_programs_are_warning_free() {
    for w in perceus_suite_sources() {
        let (_, warnings) = perceus_lang::compile_str_checked(w).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
    }
}

/// The suite sources, inlined to avoid a circular dev-dependency.
fn perceus_suite_sources() -> Vec<&'static str> {
    vec![
        include_str!("../../suite/programs/rbtree.pk"),
        include_str!("../../suite/programs/rbtree_ck.pk"),
        include_str!("../../suite/programs/deriv.pk"),
        include_str!("../../suite/programs/nqueens.pk"),
        include_str!("../../suite/programs/cfold.pk"),
        include_str!("../../suite/programs/tmap.pk"),
        include_str!("../../suite/programs/map.pk"),
        include_str!("../../suite/programs/msort.pk"),
        include_str!("../../suite/programs/queue.pk"),
    ]
}
