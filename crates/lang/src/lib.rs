//! # perceus-lang
//!
//! A Koka-like surface language for the Perceus reproduction: lexer,
//! parser, name resolution, Hindley–Milner type inference, a
//! nested-pattern match compiler, and lowering to the λ¹ core IR of
//! `perceus-core`.
//!
//! ```
//! let program = perceus_lang::compile_str(r#"
//! type list<a> { Nil; Cons(head: a, tail: list<a>) }
//! fun sum(xs: list<int>, acc: int): int {
//!   match xs {
//!     Cons(x, xx) -> sum(xx, acc + x)
//!     Nil -> acc
//!   }
//! }
//! fun main(): int { sum(Cons(1, Cons(2, Nil)), 0) }
//! "#).unwrap();
//! assert!(program.entry.is_some());
//! ```

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod resolve;
pub mod token;
pub mod types;

pub use error::{LangError, LangWarning, Span};

use perceus_core::ir::Program;

/// Compiles surface source text to a core program (user fragment).
///
/// Runs the full front end: parse → resolve → type check → match
/// compilation and lowering. The entry point is the function named
/// `main`, when present. Diagnostics are discarded; use
/// [`compile_str_checked`] to collect them.
pub fn compile_str(src: &str) -> Result<Program, LangError> {
    compile_str_checked(src).map(|(p, _)| p)
}

/// Like [`compile_str`], additionally returning non-fatal diagnostics
/// (unreachable match arms, matches that may abort at runtime).
pub fn compile_str_checked(src: &str) -> Result<(Program, Vec<LangWarning>), LangError> {
    let ast = parser::parse(src)?;
    let syms = resolve::resolve(&ast)?;
    types::check(&ast, &syms)?;
    lower::lower_checked(&ast, &syms)
}

/// Like [`compile_str`], additionally returning the source byte span of
/// every function definition, indexed by the core `FunId` (lowering
/// assigns function ids in declaration order, so `spans[f.0 as usize]`
/// is the definition that produced function `f`).
///
/// This is the provenance hook for `perceus_core::analysis`: its
/// diagnostics are addressed by `FunId`, and a consumer holding these
/// spans can map them back to source locations (e.g. via
/// [`Span::line_col`]).
pub fn compile_str_with_spans(src: &str) -> Result<(Program, Vec<Span>), LangError> {
    let ast = parser::parse(src)?;
    let syms = resolve::resolve(&ast)?;
    types::check(&ast, &syms)?;
    let (program, _) = lower::lower_checked(&ast, &syms)?;
    let spans = ast.funs.iter().map(|f| f.span).collect();
    Ok((program, spans))
}

// Lowering also records the same spans *inside* the program
// (`Program::fun_spans`, plus `CtorInfo::span` on the type table), so
// consumers that only see the core program — the pass pipeline, the
// backend `Compiled` form, the runtime profiler — carry provenance
// without holding a side table. `compile_str_with_spans` remains the
// richer front-end API (it returns `Span` values with `line_col`).

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_str_end_to_end() {
        let p = compile_str(
            r#"
fun double(x: int): int { x * 2 }
fun main(): int { double(21) }
"#,
        )
        .unwrap();
        assert_eq!(p.funs().count(), 2);
        assert!(p.entry.is_some());
    }

    #[test]
    fn reports_type_errors_with_phase() {
        let err = compile_str("fun main(): int { 1 + True }").unwrap_err();
        assert_eq!(err.phase, error::Phase::Type);
    }

    #[test]
    fn reports_parse_errors() {
        let err = compile_str("fun main( { }").unwrap_err();
        assert_eq!(err.phase, error::Phase::Parse);
    }

    #[test]
    fn spans_line_up_with_fun_ids() {
        let src = r#"
fun double(x: int): int { x * 2 }
fun main(): int { double(21) }
"#;
        let (p, spans) = compile_str_with_spans(src).unwrap();
        assert_eq!(spans.len(), p.funs().count());
        let double = p.find_fun("double").unwrap();
        let main = p.find_fun("main").unwrap();
        let text = |s: Span| &src[s.start as usize..s.end as usize];
        assert!(text(spans[double.0 as usize]).contains("double(x"));
        assert!(text(spans[main.0 as usize]).starts_with("fun main"));
        // The program itself carries the same table (profiler provenance).
        assert_eq!(
            p.fun_spans,
            spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ctor_spans_are_recorded_on_the_type_table() {
        let src = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun main(): int { 0 }
"#;
        let p = compile_str(src).unwrap();
        let cons = p.types.find_ctor("Cons").unwrap();
        let (s, e) = p.types.ctor(cons).span.unwrap();
        assert!(src[s as usize..e as usize].starts_with("Cons"));
        // Built-ins have no source.
        assert!(p
            .types
            .ctor(perceus_core::ir::TypeTable::TRUE)
            .span
            .is_none());
    }
}
