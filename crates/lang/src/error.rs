//! Front-end errors with source spans.

use std::fmt;

/// A byte range in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes 1-based line and column for the start offset.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.start as usize).min(src.len())];
        let line = upto.bytes().filter(|b| *b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Resolve,
    Type,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Resolve => "resolve",
            Phase::Type => "type",
        })
    }
}

/// A non-fatal front-end diagnostic (redundant match arm,
/// non-exhaustive match, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangWarning {
    /// Human-readable message.
    pub message: String,
    /// Location in the source.
    pub span: Span,
}

impl LangWarning {
    /// Renders the warning with line/column information.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("warning at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for LangWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning at byte {}: {}", self.span.start, self.message)
    }
}

/// A front-end error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// The phase that failed.
    pub phase: Phase,
    /// Human-readable message.
    pub message: String,
    /// Location in the source.
    pub span: Span,
}

impl LangError {
    pub(crate) fn lex(message: &str, span: Span) -> Self {
        LangError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    pub(crate) fn parse(message: String, span: Span) -> Self {
        LangError {
            phase: Phase::Parse,
            message,
            span,
        }
    }

    pub(crate) fn resolve(message: String, span: Span) -> Self {
        LangError {
            phase: Phase::Resolve,
            message,
            span,
        }
    }

    pub(crate) fn ty(message: String, span: Span) -> Self {
        LangError {
            phase: Phase::Type,
            message,
            span,
        }
    }

    /// Renders the error with line/column information against the
    /// original source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        format!(
            "{} error at {line}:{col}: {}\n  | {line_text}\n  | {:>col$}",
            self.phase, self.message, "^",
        )
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at byte {}: {}",
            self.phase, self.span.start, self.message
        )
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_computation() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 3));
        assert_eq!(Span::new(9, 10).line_col(src), (3, 2));
    }

    #[test]
    fn merge_spans() {
        let a = Span::new(5, 8);
        let b = Span::new(2, 6);
        assert_eq!(a.merge(b), Span::new(2, 8));
    }

    #[test]
    fn render_points_at_line() {
        let src = "fun f() {\n  bad $\n}";
        let err = LangError::lex("unexpected character `$`", Span::new(16, 17));
        let rendered = err.render(src);
        assert!(rendered.contains("2:7"), "{rendered}");
        assert!(rendered.contains("bad $"), "{rendered}");
    }
}
