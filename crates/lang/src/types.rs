//! Hindley–Milner type inference for the surface language.
//!
//! Koka's effect rows are out of scope for this reproduction (the paper
//! takes the *output* of effect compilation as its starting point — see
//! DESIGN.md), so this is classic HM: unification with let-polymorphism,
//! generalizing top-level functions per strongly-connected component of
//! the call graph (monomorphic recursion inside an SCC).
//!
//! Inference is a pure checker: lowering does not depend on inferred
//! types (the match compiler derives constructor signatures from the
//! patterns themselves), so a program that fails here never reaches the
//! backend.

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::resolve::{Builtin, Symbols};
use perceus_core::ir::{DataId, TypeTable};
use std::collections::HashMap;

/// Inferred types.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// A unification variable.
    Var(u32),
    Int,
    Unit,
    /// A declared data type (bool is `Data(TypeTable::BOOL, [])`).
    Data(DataId, Vec<Type>),
    /// A function type.
    Fn(Vec<Type>, Box<Type>),
    /// A mutable reference (§2.7.3).
    Ref(Box<Type>),
}

impl Type {
    fn bool_() -> Type {
        Type::Data(TypeTable::BOOL, Vec::new())
    }
}

/// A polymorphic type scheme (`vars` are the quantified variable ids).
#[derive(Debug, Clone)]
pub struct Scheme {
    vars: Vec<u32>,
    ty: Type,
}

/// The unifier: a growable substitution.
#[derive(Debug, Default)]
struct Unifier {
    subst: Vec<Option<Type>>,
}

impl Unifier {
    fn fresh(&mut self) -> Type {
        self.subst.push(None);
        Type::Var((self.subst.len() - 1) as u32)
    }

    /// Follows substitution links at the head of a type.
    fn shallow(&self, mut t: Type) -> Type {
        while let Type::Var(v) = t {
            match &self.subst[v as usize] {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully applies the substitution.
    fn zonk(&self, t: &Type) -> Type {
        match self.shallow(t.clone()) {
            Type::Var(v) => Type::Var(v),
            Type::Int => Type::Int,
            Type::Unit => Type::Unit,
            Type::Data(d, args) => Type::Data(d, args.iter().map(|a| self.zonk(a)).collect()),
            Type::Fn(args, ret) => Type::Fn(
                args.iter().map(|a| self.zonk(a)).collect(),
                Box::new(self.zonk(&ret)),
            ),
            Type::Ref(t) => Type::Ref(Box::new(self.zonk(&t))),
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.shallow(t.clone()) {
            Type::Var(w) => v == w,
            Type::Int | Type::Unit => false,
            Type::Data(_, args) => args.iter().any(|a| self.occurs(v, a)),
            Type::Fn(args, ret) => args.iter().any(|a| self.occurs(v, a)) || self.occurs(v, &ret),
            Type::Ref(t) => self.occurs(v, &t),
        }
    }

    fn unify(
        &mut self,
        a: &Type,
        b: &Type,
        span: Span,
        names: &TypeTable,
    ) -> Result<(), LangError> {
        let a = self.shallow(a.clone());
        let b = self.shallow(b.clone());
        match (a, b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), t) | (t, Type::Var(v)) => {
                if self.occurs(v, &t) {
                    return Err(LangError::ty(
                        format!("infinite type: t{v} occurs in {}", self.show(&t, names)),
                        span,
                    ));
                }
                self.subst[v as usize] = Some(t);
                Ok(())
            }
            (Type::Int, Type::Int) | (Type::Unit, Type::Unit) => Ok(()),
            (Type::Data(d1, a1), Type::Data(d2, a2)) if d1 == d2 && a1.len() == a2.len() => {
                for (x, y) in a1.iter().zip(a2.iter()) {
                    self.unify(x, y, span, names)?;
                }
                Ok(())
            }
            (Type::Fn(a1, r1), Type::Fn(a2, r2)) if a1.len() == a2.len() => {
                for (x, y) in a1.iter().zip(a2.iter()) {
                    self.unify(x, y, span, names)?;
                }
                self.unify(&r1, &r2, span, names)
            }
            (Type::Ref(x), Type::Ref(y)) => self.unify(&x, &y, span, names),
            (x, y) => Err(LangError::ty(
                format!(
                    "type mismatch: expected {}, found {}",
                    self.show(&x, names),
                    self.show(&y, names)
                ),
                span,
            )),
        }
    }

    /// Renders a type for error messages.
    fn show(&self, t: &Type, names: &TypeTable) -> String {
        match self.shallow(t.clone()) {
            Type::Var(v) => format!("t{v}"),
            Type::Int => "int".into(),
            Type::Unit => "unit".into(),
            Type::Data(d, args) => {
                let base = names.data(d).name.to_string();
                if args.is_empty() {
                    base
                } else {
                    let args: Vec<String> = args.iter().map(|a| self.show(a, names)).collect();
                    format!("{base}<{}>", args.join(", "))
                }
            }
            Type::Fn(args, ret) => {
                let args: Vec<String> = args.iter().map(|a| self.show(a, names)).collect();
                format!("({}) -> {}", args.join(", "), self.show(&ret, names))
            }
            Type::Ref(t) => format!("ref<{}>", self.show(&t, names)),
        }
    }
}

/// Type-checks a resolved program.
pub fn check(p: &SProgram, syms: &Symbols) -> Result<(), LangError> {
    let mut cx = Cx {
        syms,
        uni: Unifier::default(),
        ctor_schemes: HashMap::new(),
        fun_schemes: HashMap::new(),
        fun_monotypes: HashMap::new(),
    };
    // Constructor schemes from declarations.
    let ctor_schemes: HashMap<String, Scheme> = syms
        .ctors
        .iter()
        .map(|(name, sym)| {
            let parent = syms
                .datas
                .values()
                .find(|d| d.id == sym.data)
                .expect("ctor's data exists");
            let vars: Vec<u32> = (0..parent.params.len() as u32).collect();
            let var_map: HashMap<&str, u32> = parent
                .params
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i as u32))
                .collect();
            let fields: Vec<Type> = sym
                .fields
                .iter()
                .map(|f| conv_rigid(f, &var_map, syms))
                .collect();
            let result = Type::Data(sym.data, vars.iter().map(|v| Type::Var(*v)).collect());
            let ty = if fields.is_empty() {
                result
            } else {
                Type::Fn(fields, Box::new(result))
            };
            (name.clone(), Scheme { vars, ty })
        })
        .collect();
    // A scheme's quantified vars are local indices; reserve as many
    // unifier slots as the largest data-type parameter list so that
    // instantiation can remap safely.
    cx.ctor_schemes = ctor_schemes;

    // Process functions SCC by SCC in dependency order.
    for group in sccs(p, syms) {
        // Monotypes for the group.
        for &i in &group {
            let fd = &p.funs[i];
            let mut tyvars = HashMap::new();
            let mut params: Vec<Type> = Vec::with_capacity(fd.params.len());
            for par in &fd.params {
                params.push(match &par.ann {
                    Some(t) => cx.conv(t, &mut tyvars, fd.span)?,
                    None => cx.uni.fresh(),
                });
            }
            let ret = match &fd.ret {
                Some(t) => cx.conv(t, &mut tyvars, fd.span)?,
                None => cx.uni.fresh(),
            };
            cx.fun_monotypes
                .insert(fd.name.clone(), Type::Fn(params, Box::new(ret)));
        }
        // Infer bodies.
        for &i in &group {
            let fd = &p.funs[i];
            let Type::Fn(params, ret) = cx.fun_monotypes[&fd.name].clone() else {
                unreachable!()
            };
            let mut env: Vec<(String, Type)> = fd
                .params
                .iter()
                .map(|p| p.name.clone())
                .zip(params)
                .collect();
            let t = cx.expr(&fd.body, &mut env)?;
            cx.uni.unify(&t, &ret, fd.body.span(), &syms.types)?;
        }
        // Generalize.
        for &i in &group {
            let fd = &p.funs[i];
            let mono = cx.fun_monotypes.remove(&fd.name).expect("monotype set");
            let ty = cx.uni.zonk(&mono);
            let mut vars = Vec::new();
            free_vars(&ty, &mut vars);
            cx.fun_schemes.insert(fd.name.clone(), Scheme { vars, ty });
        }
    }
    Ok(())
}

/// Converts a *rigid* surface type (constructor fields) where type
/// variables map to fixed scheme indices.
fn conv_rigid(t: &SType, var_map: &HashMap<&str, u32>, syms: &Symbols) -> Type {
    match t {
        SType::Unit => Type::Unit,
        SType::Fn(args, ret) => Type::Fn(
            args.iter().map(|a| conv_rigid(a, var_map, syms)).collect(),
            Box::new(conv_rigid(ret, var_map, syms)),
        ),
        SType::Name(name, args) => match name.as_str() {
            "int" => Type::Int,
            "unit" => Type::Unit,
            "ref" => Type::Ref(Box::new(conv_rigid(&args[0], var_map, syms))),
            _ => {
                if let Some(v) = var_map.get(name.as_str()) {
                    Type::Var(*v)
                } else {
                    let d = &syms.datas[name];
                    Type::Data(
                        d.id,
                        args.iter().map(|a| conv_rigid(a, var_map, syms)).collect(),
                    )
                }
            }
        },
    }
}

fn free_vars(t: &Type, out: &mut Vec<u32>) {
    match t {
        Type::Var(v) => {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        Type::Int | Type::Unit => {}
        Type::Data(_, args) => args.iter().for_each(|a| free_vars(a, out)),
        Type::Fn(args, ret) => {
            args.iter().for_each(|a| free_vars(a, out));
            free_vars(ret, out);
        }
        Type::Ref(t) => free_vars(t, out),
    }
}

struct Cx<'a> {
    syms: &'a Symbols,
    uni: Unifier,
    ctor_schemes: HashMap<String, Scheme>,
    fun_schemes: HashMap<String, Scheme>,
    /// Monotypes of the SCC currently being inferred.
    fun_monotypes: HashMap<String, Type>,
}

impl<'a> Cx<'a> {
    /// Converts an annotation; unknown *unapplied* lower-case names
    /// become flexible signature variables (lenient checking; see module
    /// docs), while an unknown name with type arguments is an error.
    fn conv(
        &mut self,
        t: &SType,
        tyvars: &mut HashMap<String, Type>,
        span: Span,
    ) -> Result<Type, LangError> {
        Ok(match t {
            SType::Unit => Type::Unit,
            SType::Fn(args, ret) => {
                let args = args
                    .iter()
                    .map(|a| self.conv(a, tyvars, span))
                    .collect::<Result<_, _>>()?;
                let ret = self.conv(ret, tyvars, span)?;
                Type::Fn(args, Box::new(ret))
            }
            SType::Name(name, args) => match name.as_str() {
                "int" => Type::Int,
                "unit" => Type::Unit,
                "ref" => {
                    let inner = self.conv(&args[0], tyvars, span)?;
                    Type::Ref(Box::new(inner))
                }
                _ => {
                    if let Some(d) = self.syms.datas.get(name) {
                        if d.params.len() != args.len() {
                            return Err(LangError::ty(
                                format!(
                                    "type `{name}` expects {} parameters, got {}",
                                    d.params.len(),
                                    args.len()
                                ),
                                span,
                            ));
                        }
                        let id = d.id;
                        let args = args
                            .iter()
                            .map(|a| self.conv(a, tyvars, span))
                            .collect::<Result<_, _>>()?;
                        Type::Data(id, args)
                    } else if args.is_empty() {
                        tyvars
                            .entry(name.clone())
                            .or_insert_with(|| self.uni.fresh())
                            .clone()
                    } else {
                        return Err(LangError::ty(format!("unknown type `{name}`"), span));
                    }
                }
            },
        })
    }

    fn instantiate(&mut self, s: &Scheme) -> Type {
        let map: HashMap<u32, Type> = s.vars.iter().map(|v| (*v, self.uni.fresh())).collect();
        subst_vars(&s.ty, &map)
    }

    fn builtin_type(&mut self, b: Builtin) -> Type {
        match b {
            Builtin::Println => Type::Fn(vec![Type::Int], Box::new(Type::Unit)),
            Builtin::RefNew => {
                let a = self.uni.fresh();
                Type::Fn(vec![a.clone()], Box::new(Type::Ref(Box::new(a))))
            }
            Builtin::TShare => {
                let a = self.uni.fresh();
                Type::Fn(vec![a], Box::new(Type::Unit))
            }
            Builtin::Not => Type::Fn(vec![Type::bool_()], Box::new(Type::bool_())),
            Builtin::Min | Builtin::Max => {
                Type::Fn(vec![Type::Int, Type::Int], Box::new(Type::Int))
            }
        }
    }

    fn lookup_var(
        &mut self,
        name: &str,
        env: &[(String, Type)],
        span: Span,
    ) -> Result<Type, LangError> {
        if let Some((_, t)) = env.iter().rev().find(|(n, _)| n == name) {
            return Ok(t.clone());
        }
        if let Some(t) = self.fun_monotypes.get(name) {
            return Ok(t.clone());
        }
        if let Some(s) = self.fun_schemes.get(name).cloned() {
            return Ok(self.instantiate(&s));
        }
        if let Some((_, b)) = Builtin::ALL.iter().find(|(n, _)| *n == name) {
            return Ok(self.builtin_type(*b));
        }
        Err(LangError::ty(format!("unbound variable `{name}`"), span))
    }

    fn expr(&mut self, e: &SExpr, env: &mut Vec<(String, Type)>) -> Result<Type, LangError> {
        match e {
            SExpr::Int(_, _) => Ok(Type::Int),
            SExpr::Unit(_) => Ok(Type::Unit),
            SExpr::Var(name, span) => self.lookup_var(name, env, *span),
            SExpr::Con(name, span) => {
                let s =
                    self.ctor_schemes.get(name).cloned().ok_or_else(|| {
                        LangError::ty(format!("unknown constructor `{name}`"), *span)
                    })?;
                Ok(self.instantiate(&s))
            }
            SExpr::Call(f, args, span) => {
                let tf = self.expr(f, env)?;
                let mut targs = Vec::with_capacity(args.len());
                for a in args {
                    targs.push(self.expr(a, env)?);
                }
                let ret = self.uni.fresh();
                self.uni.unify(
                    &tf,
                    &Type::Fn(targs, Box::new(ret.clone())),
                    *span,
                    &self.syms.types,
                )?;
                Ok(ret)
            }
            SExpr::Binop(op, a, b, span) => {
                let ta = self.expr(a, env)?;
                let tb = self.expr(b, env)?;
                let types = &self.syms.types;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        self.uni.unify(&ta, &Type::Int, a.span(), types)?;
                        self.uni.unify(&tb, &Type::Int, b.span(), types)?;
                        Ok(Type::Int)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        self.uni.unify(&ta, &Type::Int, a.span(), types)?;
                        self.uni.unify(&tb, &Type::Int, b.span(), types)?;
                        Ok(Type::bool_())
                    }
                    BinOp::And | BinOp::Or => {
                        self.uni.unify(&ta, &Type::bool_(), a.span(), types)?;
                        self.uni.unify(&tb, &Type::bool_(), b.span(), types)?;
                        Ok(Type::bool_())
                    }
                    BinOp::Assign => {
                        self.uni
                            .unify(&ta, &Type::Ref(Box::new(tb)), *span, types)?;
                        Ok(Type::Unit)
                    }
                }
            }
            SExpr::Neg(inner, _) => {
                let t = self.expr(inner, env)?;
                self.uni
                    .unify(&t, &Type::Int, inner.span(), &self.syms.types)?;
                Ok(Type::Int)
            }
            SExpr::Deref(inner, span) => {
                let t = self.expr(inner, env)?;
                let a = self.uni.fresh();
                self.uni
                    .unify(&t, &Type::Ref(Box::new(a.clone())), *span, &self.syms.types)?;
                Ok(a)
            }
            SExpr::If(c, t, f, _) => {
                let tc = self.expr(c, env)?;
                self.uni
                    .unify(&tc, &Type::bool_(), c.span(), &self.syms.types)?;
                let tt = self.expr(t, env)?;
                let tf = self.expr(f, env)?;
                self.uni.unify(&tt, &tf, f.span(), &self.syms.types)?;
                Ok(tt)
            }
            SExpr::Match(scrut, arms, span) => {
                let ts = self.expr(scrut, env)?;
                let result = self.uni.fresh();
                if arms.is_empty() {
                    return Err(LangError::ty("empty match".into(), *span));
                }
                for arm in arms {
                    let before = env.len();
                    self.pattern(&arm.pattern, &ts, env)?;
                    let tb = self.expr(&arm.body, env)?;
                    env.truncate(before);
                    self.uni
                        .unify(&tb, &result, arm.body.span(), &self.syms.types)?;
                }
                Ok(result)
            }
            SExpr::Block(stmts, tail, _) => {
                let before = env.len();
                for s in stmts {
                    match s {
                        SStmt::Val(name, rhs, _) => {
                            let t = self.expr(rhs, env)?;
                            env.push((name.clone(), t));
                        }
                        SStmt::Expr(e) => {
                            self.expr(e, env)?; // value discarded
                        }
                    }
                }
                let t = self.expr(tail, env);
                env.truncate(before);
                t
            }
            SExpr::Lam(params, body, _) => {
                let ptypes: Vec<Type> = params.iter().map(|_| self.uni.fresh()).collect();
                let before = env.len();
                env.extend(params.iter().cloned().zip(ptypes.iter().cloned()));
                let ret = self.expr(body, env)?;
                env.truncate(before);
                Ok(Type::Fn(ptypes, Box::new(ret)))
            }
        }
    }

    fn pattern(
        &mut self,
        p: &SPat,
        expected: &Type,
        env: &mut Vec<(String, Type)>,
    ) -> Result<(), LangError> {
        match p {
            SPat::Wild(_) => Ok(()),
            SPat::Var(name, _) => {
                env.push((name.clone(), expected.clone()));
                Ok(())
            }
            SPat::Int(_, span) => self
                .uni
                .unify(expected, &Type::Int, *span, &self.syms.types),
            SPat::Ctor(name, subpats, span) => {
                let s =
                    self.ctor_schemes.get(name).cloned().ok_or_else(|| {
                        LangError::ty(format!("unknown constructor `{name}`"), *span)
                    })?;
                let inst = self.instantiate(&s);
                let (fields, result) = match inst {
                    Type::Fn(fields, result) => (fields, *result),
                    result => (Vec::new(), result),
                };
                self.uni.unify(expected, &result, *span, &self.syms.types)?;
                if subpats.len() > fields.len() {
                    return Err(LangError::ty(
                        format!(
                            "constructor `{name}` has {} fields, pattern has {}",
                            fields.len(),
                            subpats.len()
                        ),
                        *span,
                    ));
                }
                // Prefix patterns: trailing fields are wildcards (the
                // paper's `Node(Red)` idiom).
                for (sub, ft) in subpats.iter().zip(fields.iter()) {
                    self.pattern(sub, ft, env)?;
                }
                Ok(())
            }
        }
    }
}

fn subst_vars(t: &Type, map: &HashMap<u32, Type>) -> Type {
    match t {
        Type::Var(v) => map.get(v).cloned().unwrap_or(Type::Var(*v)),
        Type::Int => Type::Int,
        Type::Unit => Type::Unit,
        Type::Data(d, args) => Type::Data(*d, args.iter().map(|a| subst_vars(a, map)).collect()),
        Type::Fn(args, ret) => Type::Fn(
            args.iter().map(|a| subst_vars(a, map)).collect(),
            Box::new(subst_vars(ret, map)),
        ),
        Type::Ref(t) => Type::Ref(Box::new(subst_vars(t, map))),
    }
}

/// Strongly-connected components of the function call graph, in
/// dependency order (callees before callers).
fn sccs(p: &SProgram, syms: &Symbols) -> Vec<Vec<usize>> {
    let n = p.funs.len();
    // Edges: fun i mentions fun j (respecting local shadowing is not
    // necessary for soundness — extra edges only coarsen generalization).
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, fd) in p.funs.iter().enumerate() {
        let mut mentioned = Vec::new();
        collect_mentions(&fd.body, &mut mentioned);
        for name in mentioned {
            if let Some((fid, _)) = syms.funs.get(&name) {
                let j = fid.0 as usize;
                if !edges[i].contains(&j) {
                    edges[i].push(j);
                }
            }
        }
    }
    // Reachability-based SCCs (graphs here are small).
    let reach = |from: usize| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut work = vec![from];
        while let Some(u) = work.pop() {
            for &v in &edges[u] {
                if !seen[v] {
                    seen[v] = true;
                    work.push(v);
                }
            }
        }
        seen
    };
    let reaches: Vec<Vec<bool>> = (0..n).map(reach).collect();
    let mut assigned = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if assigned[i] != usize::MAX {
            continue;
        }
        let g = groups.len();
        let mut group = vec![i];
        assigned[i] = g;
        for j in (i + 1)..n {
            if assigned[j] == usize::MAX && reaches[i][j] && reaches[j][i] {
                assigned[j] = g;
                group.push(j);
            }
        }
        groups.push(group);
    }
    // Topological order: callees first.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        let a_calls_b = groups[a]
            .iter()
            .any(|&i| groups[b].iter().any(|&j| reaches[i][j]));
        let b_calls_a = groups[b]
            .iter()
            .any(|&i| groups[a].iter().any(|&j| reaches[i][j]));
        match (a_calls_b, b_calls_a) {
            (true, false) => std::cmp::Ordering::Greater, // a depends on b
            (false, true) => std::cmp::Ordering::Less,
            _ => a.cmp(&b),
        }
    });
    order.into_iter().map(|g| groups[g].clone()).collect()
}

fn collect_mentions(e: &SExpr, out: &mut Vec<String>) {
    match e {
        SExpr::Var(name, _) => out.push(name.clone()),
        SExpr::Con(..) | SExpr::Int(..) | SExpr::Unit(_) => {}
        SExpr::Call(f, args, _) => {
            collect_mentions(f, out);
            args.iter().for_each(|a| collect_mentions(a, out));
        }
        SExpr::Binop(_, a, b, _) => {
            collect_mentions(a, out);
            collect_mentions(b, out);
        }
        SExpr::Neg(a, _) | SExpr::Deref(a, _) => collect_mentions(a, out),
        SExpr::If(c, t, f, _) => {
            collect_mentions(c, out);
            collect_mentions(t, out);
            collect_mentions(f, out);
        }
        SExpr::Match(s, arms, _) => {
            collect_mentions(s, out);
            arms.iter().for_each(|a| collect_mentions(&a.body, out));
        }
        SExpr::Block(stmts, tail, _) => {
            for s in stmts {
                match s {
                    SStmt::Val(_, rhs, _) => collect_mentions(rhs, out),
                    SStmt::Expr(e) => collect_mentions(e, out),
                }
            }
            collect_mentions(tail, out);
        }
        SExpr::Lam(_, body, _) => collect_mentions(body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn check_src(src: &str) -> Result<(), LangError> {
        let p = parse(src).unwrap();
        let syms = resolve(&p)?;
        check(&p, &syms)
    }

    #[test]
    fn accepts_polymorphic_map() {
        check_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
fun main(): list<int> {
  map(Cons(1, Nil), fn(x) { x + 1 })
}
"#,
        )
        .unwrap();
    }

    #[test]
    fn polymorphic_function_used_at_two_types() {
        check_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun len(xs: list<a>): int {
  match xs {
    Cons(_, xx) -> 1 + len(xx)
    Nil -> 0
  }
}
fun main(): int {
  len(Cons(1, Nil)) + len(Cons(True, Nil))
}
"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let err = check_src("fun f(): int { 1 + True }").unwrap_err();
        assert!(err.message.contains("mismatch"), "{err}");
    }

    #[test]
    fn rejects_branch_mismatch() {
        let err = check_src("fun f(x: bool): int { if x then 1 else False }").unwrap_err();
        assert!(err.message.contains("mismatch"), "{err}");
    }

    #[test]
    fn rejects_unbound_variable() {
        let err = check_src("fun f(): int { ghost }").unwrap_err();
        assert!(err.message.contains("unbound"), "{err}");
    }

    #[test]
    fn infers_without_annotations() {
        check_src(
            r#"
fun add3(x) { x + 3 }
fun main() { add3(4) }
"#,
        )
        .unwrap();
    }

    #[test]
    fn mutual_recursion() {
        check_src(
            r#"
fun even(n: int): bool { if n == 0 then True else odd(n - 1) }
fun odd(n: int): bool { if n == 0 then False else even(n - 1) }
fun main(): bool { even(10) }
"#,
        )
        .unwrap();
    }

    #[test]
    fn refs_and_assignment() {
        check_src(
            r#"
fun main(): int {
  val r = ref(1)
  r := 5
  !r
}
"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_assign_to_non_ref() {
        let err = check_src("fun f(x: int): unit { x := 1 }").unwrap_err();
        assert!(err.message.contains("mismatch"), "{err}");
    }

    #[test]
    fn rejects_pattern_arity_overflow() {
        let err = check_src("type t { C(x: int) }\nfun f(v: t): int { match v { C(a, b) -> a } }")
            .unwrap_err();
        assert!(err.message.contains("fields"), "{err}");
    }

    #[test]
    fn prefix_patterns_accepted() {
        check_src(
            r#"
type color { Red; Black }
type tree { Leaf; Node(c: color, l: tree, k: int, v: bool, r: tree) }
fun is-red(t: tree): bool {
  match t {
    Node(Red) -> True
    _ -> False
  }
}
"#,
        )
        .unwrap();
    }
}
