//! Name resolution: builds the symbol tables (and the core
//! [`TypeTable`]) that type inference and lowering share.

use crate::ast::{SProgram, SType};
use crate::error::{LangError, Span};
use perceus_core::ir::{CtorId, DataId, FunId, TypeTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Information about one declared constructor.
#[derive(Debug, Clone)]
pub struct CtorSym {
    /// Core constructor id.
    pub id: CtorId,
    /// The data type it belongs to.
    pub data: DataId,
    /// Declared field types (in terms of the parent's type parameters).
    pub fields: Vec<SType>,
}

/// Information about one declared data type.
#[derive(Debug, Clone)]
pub struct DataSym {
    /// Core data id.
    pub id: DataId,
    /// Type parameter names.
    pub params: Vec<String>,
    /// Constructors, in declaration order.
    pub ctors: Vec<String>,
}

/// Built-in functions the resolver knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Println,
    RefNew,
    TShare,
    Not,
    Min,
    Max,
}

impl Builtin {
    /// All builtins with their surface names.
    pub const ALL: &'static [(&'static str, Builtin)] = &[
        ("println", Builtin::Println),
        ("ref", Builtin::RefNew),
        ("tshare", Builtin::TShare),
        ("not", Builtin::Not),
        ("min", Builtin::Min),
        ("max", Builtin::Max),
    ];

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }
}

/// Symbol tables for a resolved program.
#[derive(Debug, Clone)]
pub struct Symbols {
    /// The core type table (bool built in, user types appended).
    pub types: TypeTable,
    /// Data types by name.
    pub datas: HashMap<String, DataSym>,
    /// Constructors by name.
    pub ctors: HashMap<String, CtorSym>,
    /// Top-level functions by name, with parameter counts.
    pub funs: HashMap<String, (FunId, usize)>,
    /// Function names in declaration order (`FunId(i)` ↔ `fun_order[i]`).
    pub fun_order: Vec<String>,
}

/// Resolves declarations; checks for duplicates and missing entry
/// points is left to the driver.
pub fn resolve(p: &SProgram) -> Result<Symbols, LangError> {
    let mut types = TypeTable::new();
    let mut datas = HashMap::new();
    let mut ctors: HashMap<String, CtorSym> = HashMap::new();

    // The built-in bool type participates in resolution like any other.
    datas.insert(
        "bool".to_string(),
        DataSym {
            id: TypeTable::BOOL,
            params: Vec::new(),
            ctors: vec!["False".into(), "True".into()],
        },
    );
    ctors.insert(
        "False".to_string(),
        CtorSym {
            id: TypeTable::FALSE,
            data: TypeTable::BOOL,
            fields: Vec::new(),
        },
    );
    ctors.insert(
        "True".to_string(),
        CtorSym {
            id: TypeTable::TRUE,
            data: TypeTable::BOOL,
            fields: Vec::new(),
        },
    );

    for td in &p.types {
        if datas.contains_key(&td.name) || matches!(td.name.as_str(), "int" | "unit" | "ref") {
            return Err(LangError::resolve(
                format!("duplicate or reserved type name `{}`", td.name),
                td.span,
            ));
        }
        let id = types.add_data(td.name.clone());
        datas.insert(
            td.name.clone(),
            DataSym {
                id,
                params: td.params.clone(),
                ctors: td.ctors.iter().map(|c| c.name.clone()).collect(),
            },
        );
    }
    // Second pass for constructors (fields may mention any data type).
    for td in &p.types {
        let data = datas[&td.name].id;
        for cd in &td.ctors {
            if ctors.contains_key(&cd.name) {
                return Err(LangError::resolve(
                    format!("duplicate constructor `{}`", cd.name),
                    cd.span,
                ));
            }
            let field_names: Vec<Arc<str>> = cd
                .fields
                .iter()
                .map(|(n, _)| Arc::from(n.clone().unwrap_or_default().as_str()))
                .collect();
            let id = types.add_ctor(data, cd.name.clone(), field_names);
            types.set_ctor_span(id, (cd.span.start, cd.span.end));
            // Validate field types mention only known names / the
            // parent's parameters.
            for (_, ft) in &cd.fields {
                check_type(ft, &td.params, &datas, cd.span)?;
            }
            ctors.insert(
                cd.name.clone(),
                CtorSym {
                    id,
                    data,
                    fields: cd.fields.iter().map(|(_, t)| t.clone()).collect(),
                },
            );
        }
    }

    let mut funs = HashMap::new();
    let mut fun_order = Vec::new();
    for (i, fd) in p.funs.iter().enumerate() {
        if funs.contains_key(&fd.name) {
            return Err(LangError::resolve(
                format!("duplicate function `{}`", fd.name),
                fd.span,
            ));
        }
        if Builtin::ALL.iter().any(|(n, _)| *n == fd.name) {
            return Err(LangError::resolve(
                format!("`{}` shadows a builtin", fd.name),
                fd.span,
            ));
        }
        funs.insert(fd.name.clone(), (FunId(i as u32), fd.params.len()));
        fun_order.push(fd.name.clone());
    }

    Ok(Symbols {
        types,
        datas,
        ctors,
        funs,
        fun_order,
    })
}

/// Checks that a surface type only mentions declared names and in-scope
/// type variables.
fn check_type(
    t: &SType,
    tyvars: &[String],
    datas: &HashMap<String, DataSym>,
    span: Span,
) -> Result<(), LangError> {
    match t {
        SType::Unit => Ok(()),
        SType::Fn(args, ret) => {
            for a in args {
                check_type(a, tyvars, datas, span)?;
            }
            check_type(ret, tyvars, datas, span)
        }
        SType::Name(name, args) => {
            for a in args {
                check_type(a, tyvars, datas, span)?;
            }
            match name.as_str() {
                "int" | "unit" if args.is_empty() => Ok(()),
                "ref" if args.len() == 1 => Ok(()),
                _ => {
                    if let Some(d) = datas.get(name) {
                        if d.params.len() != args.len() {
                            return Err(LangError::resolve(
                                format!(
                                    "type `{name}` expects {} parameters, got {}",
                                    d.params.len(),
                                    args.len()
                                ),
                                span,
                            ));
                        }
                        Ok(())
                    } else if tyvars.contains(name) && args.is_empty() {
                        Ok(())
                    } else {
                        Err(LangError::resolve(format!("unknown type `{name}`"), span))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn resolves_list() {
        let p = parse("type list<a> { Nil; Cons(head: a, tail: list<a>) }").unwrap();
        let s = resolve(&p).unwrap();
        assert!(s.ctors.contains_key("Cons"));
        assert!(s.ctors.contains_key("Nil"));
        assert_eq!(s.types.ctor(s.ctors["Cons"].id).arity, 2);
        assert_eq!(s.datas["list"].params, vec!["a"]);
    }

    #[test]
    fn bool_is_predefined() {
        let p = parse("").unwrap();
        let s = resolve(&p).unwrap();
        assert_eq!(s.ctors["True"].id, TypeTable::TRUE);
    }

    #[test]
    fn rejects_duplicate_ctor() {
        let p = parse("type a { X }\ntype b { X }").unwrap();
        assert!(resolve(&p).is_err());
    }

    #[test]
    fn rejects_unknown_field_type() {
        let p = parse("type t { C(x: missing) }").unwrap();
        let err = resolve(&p).unwrap_err();
        assert!(err.message.contains("unknown type"), "{err}");
    }

    #[test]
    fn rejects_shadowing_builtin() {
        let p = parse("fun println(x: int): int { x }").unwrap();
        assert!(resolve(&p).is_err());
    }

    #[test]
    fn rejects_type_arity_mismatch() {
        let p = parse("type list<a> { Nil }\ntype t { C(x: list<int, int>) }").unwrap();
        assert!(resolve(&p).is_err());
    }
}
