//! Recursive-descent parser for the surface language.
//!
//! Newlines are statement separators inside blocks and arm separators in
//! `match`/`type` bodies; they are transparent inside parentheses,
//! argument lists, and after binary operators and `->`.

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::token::{lex, Spanned, Tok};

/// Parses a whole source file.
pub fn parse(src: &str) -> Result<SProgram, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    /// The next non-newline token (for lookahead across line breaks).
    fn peek_past_newlines(&self) -> &Tok {
        let mut i = self.pos;
        while matches!(self.toks[i].tok, Tok::Newline) {
            i += 1;
        }
        &self.toks[i].tok
    }

    fn bump(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span, LangError> {
        if self.peek() == &tok {
            Ok(self.bump().span)
        } else {
            Err(LangError::parse(
                format!("expected {tok}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    /// Skips newlines and semicolons.
    fn skip_seps(&mut self) {
        while matches!(self.peek(), Tok::Newline | Tok::Semi) {
            self.bump();
        }
    }

    /// Skips newlines only (inside delimiters).
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    /// Layout rule (as in Koka): a line that *starts* with a non-prefix
    /// binary operator continues the previous expression. `-` and `!`
    /// are excluded — they are prefix operators, so a leading one starts
    /// a new statement.
    fn continue_line_if(&mut self, tok: &Tok) {
        if matches!(self.peek(), Tok::Newline) && self.peek_past_newlines() == tok {
            self.skip_newlines();
        }
    }

    /// Like [`continue_line_if`](Self::continue_line_if) for a class of
    /// operators.
    fn continue_line_if_any(&mut self, toks: &[Tok]) {
        if matches!(self.peek(), Tok::Newline) && toks.contains(self.peek_past_newlines()) {
            self.skip_newlines();
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(LangError::parse(
                format!("expected an identifier, found {other}"),
                self.peek_span(),
            )),
        }
    }

    // ---- declarations ------------------------------------------------

    fn program(&mut self) -> Result<SProgram, LangError> {
        let mut out = SProgram::default();
        self.skip_seps();
        while !matches!(self.peek(), Tok::Eof) {
            match self.peek() {
                Tok::Type => out.types.push(self.typedef()?),
                Tok::Fun => out.funs.push(self.fundef()?),
                other => {
                    return Err(LangError::parse(
                        format!("expected `type` or `fun`, found {other}"),
                        self.peek_span(),
                    ))
                }
            }
            self.skip_seps();
        }
        Ok(out)
    }

    fn typedef(&mut self) -> Result<STypeDef, LangError> {
        let start = self.expect(Tok::Type)?;
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::Lt) {
            loop {
                let (p, _) = self.ident()?;
                params.push(p);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        self.skip_newlines();
        self.expect(Tok::LBrace)?;
        self.skip_seps();
        let mut ctors = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            ctors.push(self.ctordef()?);
            self.skip_seps();
        }
        let end = self.expect(Tok::RBrace)?;
        Ok(STypeDef {
            name,
            params,
            ctors,
            span: start.merge(end),
        })
    }

    fn ctordef(&mut self) -> Result<SCtorDef, LangError> {
        let (name, span) = match self.peek().clone() {
            Tok::ConId(s) => {
                let span = self.bump().span;
                (s, span)
            }
            other => {
                return Err(LangError::parse(
                    format!("expected a constructor name, found {other}"),
                    self.peek_span(),
                ))
            }
        };
        let mut fields = Vec::new();
        if self.eat(&Tok::LParen) {
            self.skip_newlines();
            loop {
                // `name : type` or bare `type`; disambiguate by looking
                // one token past an identifier for a colon.
                let field_name = if matches!(self.peek(), Tok::Ident(_))
                    && matches!(self.toks[self.pos + 1].tok, Tok::Colon)
                {
                    let (n, _) = self.ident()?;
                    self.expect(Tok::Colon)?;
                    Some(n)
                } else {
                    None
                };
                let ty = self.type_()?;
                fields.push((field_name, ty));
                self.skip_newlines();
                if !self.eat(&Tok::Comma) {
                    break;
                }
                self.skip_newlines();
            }
            self.expect(Tok::RParen)?;
        }
        Ok(SCtorDef { name, fields, span })
    }

    fn fundef(&mut self) -> Result<SFunDef, LangError> {
        let start = self.expect(Tok::Fun)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        self.skip_newlines();
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                // `borrow` is a soft keyword: it modifies the parameter
                // that follows (a plain parameter may still be *named*
                // `borrow` when nothing follows it).
                let borrowed = matches!(self.peek(), Tok::Ident(s) if s == "borrow")
                    && matches!(&self.toks[self.pos + 1].tok, Tok::Ident(_));
                if borrowed {
                    self.bump();
                }
                let (p, _) = self.ident()?;
                let ann = if self.eat(&Tok::Colon) {
                    Some(self.type_()?)
                } else {
                    None
                };
                params.push(crate::ast::SParam {
                    name: p,
                    ann,
                    borrowed,
                });
                self.skip_newlines();
                if !self.eat(&Tok::Comma) {
                    break;
                }
                self.skip_newlines();
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.eat(&Tok::Colon) {
            Some(self.type_()?)
        } else {
            None
        };
        self.skip_newlines();
        let body = self.block()?;
        let span = start.merge(body.span());
        Ok(SFunDef {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    // ---- types ---------------------------------------------------------

    fn type_(&mut self) -> Result<SType, LangError> {
        // `( … )` may open a function-type parameter list or a
        // parenthesized/unit type.
        if self.eat(&Tok::LParen) {
            self.skip_newlines();
            let mut parts = Vec::new();
            if !matches!(self.peek(), Tok::RParen) {
                loop {
                    parts.push(self.type_()?);
                    self.skip_newlines();
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    self.skip_newlines();
                }
            }
            self.expect(Tok::RParen)?;
            if self.eat(&Tok::Arrow) {
                let ret = self.type_()?;
                return Ok(SType::Fn(parts, Box::new(ret)));
            }
            return match parts.len() {
                0 => Ok(SType::Unit),
                1 => Ok(parts.into_iter().next().expect("len checked")),
                n => Err(LangError::parse(
                    format!("tuple types are not supported ({n} components)"),
                    self.peek_span(),
                )),
            };
        }
        let (name, _) = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&Tok::Lt) {
            loop {
                args.push(self.type_()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        let base = SType::Name(name, args);
        // Single-argument function sugar: `int -> int`.
        if self.eat(&Tok::Arrow) {
            let ret = self.type_()?;
            return Ok(SType::Fn(vec![base], Box::new(ret)));
        }
        Ok(base)
    }

    // ---- statements and blocks ------------------------------------------

    fn block(&mut self) -> Result<SExpr, LangError> {
        let start = self.expect(Tok::LBrace)?;
        self.skip_seps();
        let mut stmts: Vec<SStmt> = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            if self.eat(&Tok::Val) {
                let (name, vspan) = self.ident()?;
                self.expect(Tok::Eq)?;
                self.skip_newlines();
                let rhs = self.expr()?;
                let span = vspan.merge(rhs.span());
                stmts.push(SStmt::Val(name, rhs, span));
            } else {
                let e = self.expr()?;
                stmts.push(SStmt::Expr(e));
            }
            // A statement ends at a newline, semicolon or the brace.
            if !matches!(self.peek(), Tok::RBrace) {
                if !matches!(self.peek(), Tok::Newline | Tok::Semi) {
                    return Err(LangError::parse(
                        format!("expected end of statement, found {}", self.peek()),
                        self.peek_span(),
                    ));
                }
                self.skip_seps();
            }
        }
        let end = self.expect(Tok::RBrace)?;
        let span = start.merge(end);
        // The tail is the last expression statement; a trailing `val`
        // makes the block unit-valued.
        let tail = match stmts.pop() {
            Some(SStmt::Expr(e)) => e,
            Some(v @ SStmt::Val(..)) => {
                stmts.push(v);
                SExpr::Unit(span)
            }
            None => SExpr::Unit(span),
        };
        Ok(SExpr::Block(stmts, Box::new(tail), span))
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, LangError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<SExpr, LangError> {
        let lhs = self.or_expr()?;
        if self.eat(&Tok::Assign) {
            self.skip_newlines();
            let rhs = self.assign_expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(SExpr::Binop(
                BinOp::Assign,
                Box::new(lhs),
                Box::new(rhs),
                span,
            ));
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.and_expr()?;
        loop {
            self.continue_line_if(&Tok::OrOr);
            if !self.eat(&Tok::OrOr) {
                break;
            }
            self.skip_newlines();
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = SExpr::Binop(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.cmp_expr()?;
        loop {
            self.continue_line_if(&Tok::AndAnd);
            if !self.eat(&Tok::AndAnd) {
                break;
            }
            self.skip_newlines();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = SExpr::Binop(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<SExpr, LangError> {
        let lhs = self.add_expr()?;
        self.continue_line_if_any(&[Tok::EqEq, Tok::NotEq, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]);
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        self.skip_newlines();
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(SExpr::Binop(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn add_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            self.continue_line_if(&Tok::Plus);
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs), span);
        }
    }

    fn mul_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            self.continue_line_if_any(&[Tok::Star, Tok::Slash, Tok::Percent]);
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.unary_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs), span);
        }
    }

    fn unary_expr(&mut self) -> Result<SExpr, LangError> {
        match self.peek() {
            Tok::Minus => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.merge(e.span());
                Ok(SExpr::Neg(Box::new(e), span))
            }
            Tok::Bang => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.merge(e.span());
                Ok(SExpr::Deref(Box::new(e), span))
            }
            _ => self.call_expr(),
        }
    }

    fn call_expr(&mut self) -> Result<SExpr, LangError> {
        let mut e = self.atom()?;
        while matches!(self.peek(), Tok::LParen) {
            self.bump();
            self.skip_newlines();
            let mut args = Vec::new();
            if !matches!(self.peek(), Tok::RParen) {
                loop {
                    args.push(self.expr()?);
                    self.skip_newlines();
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    self.skip_newlines();
                }
            }
            let end = self.expect(Tok::RParen)?;
            let span = e.span().merge(end);
            e = SExpr::Call(Box::new(e), args, span);
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<SExpr, LangError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                let span = self.bump().span;
                Ok(SExpr::Int(i, span))
            }
            Tok::Ident(s) => {
                let span = self.bump().span;
                Ok(SExpr::Var(s, span))
            }
            Tok::ConId(s) => {
                let span = self.bump().span;
                Ok(SExpr::Con(s, span))
            }
            Tok::LParen => {
                self.bump();
                self.skip_newlines();
                if self.eat(&Tok::RParen) {
                    return Ok(SExpr::Unit(self.peek_span()));
                }
                let e = self.expr()?;
                self.skip_newlines();
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => self.block(),
            Tok::If => self.if_expr(),
            Tok::Match => self.match_expr(),
            Tok::Fn => self.fn_expr(),
            other => Err(LangError::parse(
                format!("expected an expression, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn if_expr(&mut self) -> Result<SExpr, LangError> {
        let start = self.expect(Tok::If)?;
        let cond = self.expr()?;
        self.skip_newlines();
        self.expect(Tok::Then)?;
        self.skip_newlines();
        let then_e = self.expr()?;
        // `elif`/`else` may start on the following line.
        if matches!(self.peek_past_newlines(), Tok::Elif) {
            self.skip_newlines();
            // Parse `elif …` by reusing if_expr with the elif consumed.
            let elif_span = self.expect(Tok::Elif)?;
            // Rebuild as a nested if: push a synthetic If token? Simpler:
            // parse the rest inline.
            let inner = self.if_tail(elif_span)?;
            let span = start.merge(inner.span());
            return Ok(SExpr::If(
                Box::new(cond),
                Box::new(then_e),
                Box::new(inner),
                span,
            ));
        }
        if !matches!(self.peek_past_newlines(), Tok::Else) {
            return Err(LangError::parse(
                "`if` requires an `else` branch".into(),
                self.peek_span(),
            ));
        }
        self.skip_newlines();
        self.expect(Tok::Else)?;
        self.skip_newlines();
        let else_e = self.expr()?;
        let span = start.merge(else_e.span());
        Ok(SExpr::If(
            Box::new(cond),
            Box::new(then_e),
            Box::new(else_e),
            span,
        ))
    }

    /// Parses the continuation of an `elif`: condition, then-branch and
    /// the rest of the chain.
    fn if_tail(&mut self, start: Span) -> Result<SExpr, LangError> {
        let cond = self.expr()?;
        self.skip_newlines();
        self.expect(Tok::Then)?;
        self.skip_newlines();
        let then_e = self.expr()?;
        if matches!(self.peek_past_newlines(), Tok::Elif) {
            self.skip_newlines();
            let elif_span = self.expect(Tok::Elif)?;
            let inner = self.if_tail(elif_span)?;
            let span = start.merge(inner.span());
            return Ok(SExpr::If(
                Box::new(cond),
                Box::new(then_e),
                Box::new(inner),
                span,
            ));
        }
        self.skip_newlines();
        self.expect(Tok::Else)?;
        self.skip_newlines();
        let else_e = self.expr()?;
        let span = start.merge(else_e.span());
        Ok(SExpr::If(
            Box::new(cond),
            Box::new(then_e),
            Box::new(else_e),
            span,
        ))
    }

    fn match_expr(&mut self) -> Result<SExpr, LangError> {
        let start = self.expect(Tok::Match)?;
        let scrutinee = self.expr()?;
        self.skip_newlines();
        self.expect(Tok::LBrace)?;
        self.skip_seps();
        let mut arms = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            let pattern = self.pattern()?;
            self.skip_newlines();
            self.expect(Tok::Arrow)?;
            self.skip_newlines();
            let body = self.expr()?;
            let span = pattern.span().merge(body.span());
            arms.push(SArm {
                pattern,
                body,
                span,
            });
            self.skip_seps();
        }
        let end = self.expect(Tok::RBrace)?;
        Ok(SExpr::Match(Box::new(scrutinee), arms, start.merge(end)))
    }

    fn fn_expr(&mut self) -> Result<SExpr, LangError> {
        let start = self.expect(Tok::Fn)?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                let (p, _) = self.ident()?;
                // Optional annotation, ignored (inference handles it).
                if self.eat(&Tok::Colon) {
                    self.type_()?;
                }
                params.push(p);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.skip_newlines();
        let body = self.block()?;
        let span = start.merge(body.span());
        Ok(SExpr::Lam(params, Box::new(body), span))
    }

    fn pattern(&mut self) -> Result<SPat, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.bump().span;
                if s == "_" {
                    Ok(SPat::Wild(span))
                } else {
                    Ok(SPat::Var(s, span))
                }
            }
            Tok::Int(i) => {
                let span = self.bump().span;
                Ok(SPat::Int(i, span))
            }
            Tok::Minus => {
                let start = self.bump().span;
                match self.peek().clone() {
                    Tok::Int(i) => {
                        let span = start.merge(self.bump().span);
                        Ok(SPat::Int(-i, span))
                    }
                    other => Err(LangError::parse(
                        format!("expected an integer after `-`, found {other}"),
                        self.peek_span(),
                    )),
                }
            }
            Tok::ConId(s) => {
                let mut span = self.bump().span;
                let mut fields = Vec::new();
                if self.eat(&Tok::LParen) {
                    self.skip_newlines();
                    loop {
                        fields.push(self.pattern()?);
                        self.skip_newlines();
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                    span = span.merge(self.expect(Tok::RParen)?);
                }
                Ok(SPat::Ctor(s, fields, span))
            }
            other => Err(LangError::parse(
                format!("expected a pattern, found {other}"),
                self.peek_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typedef() {
        let p = parse("type list<a> { Nil; Cons(head: a, tail: list<a>) }").unwrap();
        assert_eq!(p.types.len(), 1);
        let t = &p.types[0];
        assert_eq!(t.name, "list");
        assert_eq!(t.params, vec!["a"]);
        assert_eq!(t.ctors.len(), 2);
        assert_eq!(t.ctors[1].fields.len(), 2);
        assert_eq!(t.ctors[1].fields[0].0.as_deref(), Some("head"));
    }

    #[test]
    fn parses_fun_with_match() {
        let src = r#"
fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.funs.len(), 1);
        let f = &p.funs[0];
        assert_eq!(f.name, "map");
        assert_eq!(f.params.len(), 2);
        assert!(f.ret.is_some());
    }

    #[test]
    fn parses_if_elif_chain() {
        let src = "fun f(x: int): int { if x < 0 then 0 elif x == 0 then 1 else 2 }";
        let p = parse(src).unwrap();
        let SExpr::Block(_, tail, _) = &p.funs[0].body else {
            panic!()
        };
        let SExpr::If(_, _, else_b, _) = &**tail else {
            panic!("expected if, got {tail:?}")
        };
        assert!(matches!(**else_b, SExpr::If(..)), "elif nests");
    }

    #[test]
    fn parses_operator_precedence() {
        let src = "fun f(a: int, b: int): bool { a + b * 2 < a * 3 }";
        let p = parse(src).unwrap();
        let SExpr::Block(_, tail, _) = &p.funs[0].body else {
            panic!()
        };
        let SExpr::Binop(BinOp::Lt, lhs, _, _) = &**tail else {
            panic!("expected <, got {tail:?}")
        };
        assert!(matches!(**lhs, SExpr::Binop(BinOp::Add, ..)));
    }

    #[test]
    fn parses_blocks_with_val() {
        let src = "fun f(): int {\n  val x = 1\n  val y = 2\n  x + y\n}";
        let p = parse(src).unwrap();
        let SExpr::Block(stmts, tail, _) = &p.funs[0].body else {
            panic!()
        };
        assert_eq!(stmts.len(), 2);
        assert!(matches!(**tail, SExpr::Binop(BinOp::Add, ..)));
    }

    #[test]
    fn parses_lambda_and_calls() {
        let src = "fun f(): int { (fn(x) { x + 1 })(41) }";
        let p = parse(src).unwrap();
        let SExpr::Block(_, tail, _) = &p.funs[0].body else {
            panic!()
        };
        assert!(matches!(**tail, SExpr::Call(..)));
    }

    #[test]
    fn parses_nested_patterns() {
        let src = r#"
fun f(t: tree): tree {
  match t {
    Node(_, Node(Red, lx, kx, vx, rx), ky, vy, ry) -> lx
    _ -> t
  }
}
"#;
        let p = parse(src).unwrap();
        let SExpr::Block(_, tail, _) = &p.funs[0].body else {
            panic!()
        };
        let SExpr::Match(_, arms, _) = &**tail else {
            panic!()
        };
        let SPat::Ctor(name, fields, _) = &arms[0].pattern else {
            panic!()
        };
        assert_eq!(name, "Node");
        assert_eq!(fields.len(), 5);
        assert!(matches!(&fields[1], SPat::Ctor(n, f, _) if n == "Node" && f.len() == 5));
    }

    #[test]
    fn parses_multiline_arguments() {
        let src =
            "fun f(): int {\n  g(1,\n    2,\n    3)\n}\nfun g(a: int, b: int, c: int): int { a }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_deref_and_assign() {
        let src = "fun f(r: ref<int>): int {\n  r := 5\n  !r\n}";
        let p = parse(src).unwrap();
        let SExpr::Block(stmts, tail, _) = &p.funs[0].body else {
            panic!()
        };
        assert!(matches!(
            stmts[0],
            SStmt::Expr(SExpr::Binop(BinOp::Assign, ..))
        ));
        assert!(matches!(**tail, SExpr::Deref(..)));
    }

    #[test]
    fn error_mentions_location() {
        let err = parse("fun f() { ??? }").unwrap_err();
        assert!(err.render("fun f() { ??? }").contains("1:"), "{err}");
    }

    #[test]
    fn trailing_val_makes_unit_block() {
        let src = "fun f() { val x = 1 }";
        let p = parse(src).unwrap();
        let SExpr::Block(stmts, tail, _) = &p.funs[0].body else {
            panic!()
        };
        assert_eq!(stmts.len(), 1);
        assert!(matches!(**tail, SExpr::Unit(_)));
    }
}
