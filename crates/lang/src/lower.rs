//! Lowering: typed surface AST → core λ¹ IR.
//!
//! The main job is the *match compiler*: nested patterns (Okasaki's
//! red-black rebalancing matches three constructors deep) are compiled
//! into the flat, single-constructor matches of the core language using
//! the classic column-specialization algorithm (à la Maranget). Rows
//! with variable or wildcard patterns flow into every specialized arm,
//! so right-hand sides may be lowered more than once; every lowering
//! generates fresh core variables, keeping ids globally unique.
//!
//! Everything else is syntax-directed desugaring: `if` to a match on the
//! built-in `bool`, `&&`/`||` to conditionals, operators to primitives,
//! statement blocks to `val` chains, and bare constructors or builtins
//! in value position to eta-expanded lambdas.

use crate::ast::*;
use crate::error::{LangError, LangWarning, Span};
use crate::resolve::{Builtin, Symbols};
use perceus_core::ir::builder::ite;
use perceus_core::ir::expr::{Arm, Expr, Lambda, PrimOp};
use perceus_core::ir::{CtorId, FunDef, Program, Var, VarGen};
use std::collections::HashSet;

/// Lowers a resolved, type-checked program to the core IR, discarding
/// diagnostics (see [`lower_checked`] to collect them).
pub fn lower(p: &SProgram, syms: &Symbols) -> Result<Program, LangError> {
    lower_checked(p, syms).map(|(program, _)| program)
}

/// Lowers a program and collects non-fatal diagnostics: redundant match
/// arms (an arm no scrutinee value can reach) and matches that can fall
/// through at runtime.
pub fn lower_checked(
    p: &SProgram,
    syms: &Symbols,
) -> Result<(Program, Vec<LangWarning>), LangError> {
    let mut out = Program::new();
    out.types = syms.types.clone();
    let mut gen = VarGen::default();
    let mut warnings = Vec::new();
    for fd in &p.funs {
        let mut cx = Cx {
            syms,
            gen: &mut gen,
            fun: &fd.name,
            warnings: &mut warnings,
        };
        let mut scope: Vec<(String, Var)> = Vec::new();
        let params: Vec<Var> = fd
            .params
            .iter()
            .map(|par| {
                let v = cx.gen.fresh(&par.name);
                scope.push((par.name.clone(), v.clone()));
                v
            })
            .collect();
        let body = cx.expr(&fd.body, &mut scope)?;
        // Explicit `borrow` annotations seed the program's borrow masks
        // (the inference pass may add more when enabled, and never
        // demotes an explicit request — a consuming use just retains).
        out.borrows
            .push(fd.params.iter().map(|p| p.borrowed).collect());
        out.fun_spans.push((fd.span.start, fd.span.end));
        out.add_fun(FunDef {
            name: fd.name.clone().into(),
            params,
            body,
        });
    }
    out.entry = out.find_fun("main");
    if let Some(entry) = out.entry {
        if let Some(fd) = p.funs.get(entry.0 as usize) {
            if let Some(par) = fd.params.iter().find(|p| p.borrowed) {
                return Err(LangError::resolve(
                    format!(
                        "entry-point parameter `{}` cannot be `borrow` (the host passes owned values)",
                        par.name
                    ),
                    fd.span,
                ));
            }
        }
    }
    // Masks that request nothing are dropped so the default stays the
    // paper's all-owned convention.
    if out.borrows.iter().all(|m| m.iter().all(|b| !b)) {
        out.borrows.clear();
    }
    out.var_gen = gen;
    Ok((out, warnings))
}

struct Cx<'a> {
    syms: &'a Symbols,
    gen: &'a mut VarGen,
    fun: &'a str,
    warnings: &'a mut Vec<LangWarning>,
}

type Scope = Vec<(String, Var)>;

impl<'a> Cx<'a> {
    fn lookup(&self, scope: &Scope, name: &str) -> Option<Var> {
        scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    fn expr(&mut self, e: &SExpr, scope: &mut Scope) -> Result<Expr, LangError> {
        match e {
            SExpr::Int(i, _) => Ok(Expr::int(*i)),
            SExpr::Unit(_) => Ok(Expr::unit()),
            SExpr::Var(name, span) => {
                if let Some(v) = self.lookup(scope, name) {
                    return Ok(Expr::Var(v));
                }
                if let Some((fid, _)) = self.syms.funs.get(name) {
                    return Ok(Expr::Global(*fid));
                }
                if let Some((_, b)) = Builtin::ALL.iter().find(|(n, _)| *n == name) {
                    return Ok(self.eta_builtin(*b));
                }
                Err(LangError::resolve(
                    format!("unbound variable `{name}`"),
                    *span,
                ))
            }
            SExpr::Con(name, span) => {
                let sym = self.syms.ctors.get(name).ok_or_else(|| {
                    LangError::resolve(format!("unknown constructor `{name}`"), *span)
                })?;
                let arity = self.syms.types.ctor(sym.id).arity;
                if arity == 0 {
                    Ok(con(sym.id, Vec::new()))
                } else {
                    // Eta-expand a bare constructor used as a function.
                    let params: Vec<Var> = (0..arity)
                        .map(|i| self.gen.fresh(&format!("c{i}")))
                        .collect();
                    let args = params.iter().cloned().map(Expr::Var).collect();
                    Ok(Expr::Lam(Lambda {
                        params,
                        captures: Vec::new(),
                        body: Box::new(con(sym.id, args)),
                    }))
                }
            }
            SExpr::Call(f, args, span) => self.call(f, args, *span, scope),
            SExpr::Binop(op, a, b, span) => self.binop(*op, a, b, *span, scope),
            SExpr::Neg(a, _) => {
                let a = self.expr(a, scope)?;
                Ok(Expr::Prim(PrimOp::Neg, vec![a]))
            }
            SExpr::Deref(a, _) => {
                let a = self.expr(a, scope)?;
                Ok(Expr::Prim(PrimOp::RefGet, vec![a]))
            }
            SExpr::If(c, t, f, _) => {
                let c = self.expr(c, scope)?;
                let t = self.expr(t, scope)?;
                let f = self.expr(f, scope)?;
                Ok(self.ite_expr(c, t, f))
            }
            SExpr::Match(scrut, arms, span) => {
                let scrut_e = self.expr(scrut, scope)?;
                let occ = self.gen.fresh("m");
                let rows: Vec<Row> = arms
                    .iter()
                    .enumerate()
                    .map(|(i, arm)| Row {
                        pats: vec![arm.pattern.clone()],
                        bindings: Vec::new(),
                        body: &arm.body,
                        arm_id: i,
                    })
                    .collect();
                let mut diag = MatchDiag::default();
                let body = self.compile_match(vec![occ.clone()], rows, scope, *span, &mut diag)?;
                for (i, arm) in arms.iter().enumerate() {
                    if !diag.used.contains(&i) {
                        self.warnings.push(LangWarning {
                            message: format!(
                                "unreachable match arm in `{}` (covered by earlier arms)",
                                self.fun
                            ),
                            span: arm.span,
                        });
                    }
                }
                if diag.fell_through {
                    self.warnings.push(LangWarning {
                        message: format!(
                            "non-exhaustive match in `{}` may abort at runtime",
                            self.fun
                        ),
                        span: *span,
                    });
                }
                Ok(Expr::let_(occ, scrut_e, body))
            }
            SExpr::Block(stmts, tail, _) => {
                let before = scope.len();
                let mut bindings: Vec<(Var, Expr)> = Vec::new();
                for s in stmts {
                    match s {
                        SStmt::Val(name, rhs, _) => {
                            let rhs = self.expr(rhs, scope)?;
                            let v = self.gen.fresh(name);
                            scope.push((name.clone(), v.clone()));
                            bindings.push((v, rhs));
                        }
                        SStmt::Expr(e) => {
                            // Bind to a throwaway; insertion will drop it
                            // right after (sbind-drop), so non-unit
                            // statement results are still reclaimed.
                            let rhs = self.expr(e, scope)?;
                            let v = self.gen.fresh("_s");
                            bindings.push((v, rhs));
                        }
                    }
                }
                let tail = self.expr(tail, scope)?;
                scope.truncate(before);
                Ok(bindings
                    .into_iter()
                    .rev()
                    .fold(tail, |acc, (v, rhs)| Expr::let_(v, rhs, acc)))
            }
            SExpr::Lam(params, body, _) => {
                let before = scope.len();
                let params: Vec<Var> = params
                    .iter()
                    .map(|n| {
                        let v = self.gen.fresh(n);
                        scope.push((n.clone(), v.clone()));
                        v
                    })
                    .collect();
                let body = self.expr(body, scope)?;
                scope.truncate(before);
                Ok(Expr::Lam(Lambda {
                    params,
                    captures: Vec::new(), // computed by normalization
                    body: Box::new(body),
                }))
            }
        }
    }

    /// `if c then t else f` with arbitrary expressions: bind the
    /// condition so the core match scrutinee is a variable.
    fn ite_expr(&mut self, c: Expr, t: Expr, f: Expr) -> Expr {
        let cv = self.gen.fresh("c");
        let m = ite(cv.clone(), t, f);
        Expr::let_(cv, c, m)
    }

    fn call(
        &mut self,
        f: &SExpr,
        args: &[SExpr],
        span: Span,
        scope: &mut Scope,
    ) -> Result<Expr, LangError> {
        let largs: Vec<Expr> = args
            .iter()
            .map(|a| self.expr(a, scope))
            .collect::<Result<_, _>>()?;
        match f {
            SExpr::Con(name, cspan) => {
                let sym = self.syms.ctors.get(name).ok_or_else(|| {
                    LangError::resolve(format!("unknown constructor `{name}`"), *cspan)
                })?;
                let arity = self.syms.types.ctor(sym.id).arity;
                if arity != largs.len() {
                    return Err(LangError::resolve(
                        format!(
                            "constructor `{name}` expects {arity} arguments, got {}",
                            largs.len()
                        ),
                        span,
                    ));
                }
                Ok(con(sym.id, largs))
            }
            SExpr::Var(name, _) if self.lookup(scope, name).is_none() => {
                if let Some((fid, arity)) = self.syms.funs.get(name) {
                    if *arity != largs.len() {
                        return Err(LangError::resolve(
                            format!("`{name}` expects {arity} arguments, got {}", largs.len()),
                            span,
                        ));
                    }
                    return Ok(Expr::Call(*fid, largs));
                }
                if let Some((_, b)) = Builtin::ALL.iter().find(|(n, _)| *n == name) {
                    return self.builtin_call(*b, largs, span);
                }
                Err(LangError::resolve(
                    format!("unbound function `{name}`"),
                    span,
                ))
            }
            other => {
                let f = self.expr(other, scope)?;
                Ok(Expr::App(Box::new(f), largs))
            }
        }
    }

    fn builtin_call(&mut self, b: Builtin, args: Vec<Expr>, span: Span) -> Result<Expr, LangError> {
        if args.len() != b.arity() {
            return Err(LangError::resolve(
                format!(
                    "builtin expects {} arguments, got {}",
                    b.arity(),
                    args.len()
                ),
                span,
            ));
        }
        Ok(match b {
            Builtin::Println => Expr::Prim(PrimOp::Println, args),
            Builtin::RefNew => Expr::Prim(PrimOp::RefNew, args),
            Builtin::TShare => Expr::Prim(PrimOp::TShare, args),
            Builtin::Min => Expr::Prim(PrimOp::Min, args),
            Builtin::Max => Expr::Prim(PrimOp::Max, args),
            Builtin::Not => {
                let [a] = <[Expr; 1]>::try_from(args).expect("arity checked");
                self.ite_expr(
                    a,
                    con(perceus_core::ir::TypeTable::FALSE, vec![]),
                    con(perceus_core::ir::TypeTable::TRUE, vec![]),
                )
            }
        })
    }

    fn binop(
        &mut self,
        op: BinOp,
        a: &SExpr,
        b: &SExpr,
        _span: Span,
        scope: &mut Scope,
    ) -> Result<Expr, LangError> {
        let la = self.expr(a, scope)?;
        // Short-circuit operators must not evaluate the rhs eagerly.
        match op {
            BinOp::And => {
                let lb = self.expr(b, scope)?;
                return Ok(self.ite_expr(la, lb, con(perceus_core::ir::TypeTable::FALSE, vec![])));
            }
            BinOp::Or => {
                let lb = self.expr(b, scope)?;
                return Ok(self.ite_expr(la, con(perceus_core::ir::TypeTable::TRUE, vec![]), lb));
            }
            _ => {}
        }
        let lb = self.expr(b, scope)?;
        let prim = match op {
            BinOp::Add => PrimOp::Add,
            BinOp::Sub => PrimOp::Sub,
            BinOp::Mul => PrimOp::Mul,
            BinOp::Div => PrimOp::Div,
            BinOp::Rem => PrimOp::Rem,
            BinOp::Lt => PrimOp::Lt,
            BinOp::Le => PrimOp::Le,
            BinOp::Gt => PrimOp::Gt,
            BinOp::Ge => PrimOp::Ge,
            BinOp::Eq => PrimOp::Eq,
            BinOp::Ne => PrimOp::Ne,
            BinOp::Assign => PrimOp::RefSet,
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        };
        Ok(Expr::Prim(prim, vec![la, lb]))
    }

    // ---- the match compiler ---------------------------------------------

    #[allow(clippy::only_used_in_recursion)] // span: kept for future diagnostics
    fn compile_match(
        &mut self,
        occs: Vec<Var>,
        rows: Vec<Row<'_>>,
        scope: &mut Scope,
        span: Span,
        diag: &mut MatchDiag,
    ) -> Result<Expr, LangError> {
        let Some(first) = rows.first() else {
            diag.fell_through = true;
            return Ok(Expr::Abort(format!(
                "non-exhaustive match in `{}`",
                self.fun
            )));
        };
        // Irrefutable first row: bind and lower its body.
        if first
            .pats
            .iter()
            .all(|p| matches!(p, SPat::Wild(_) | SPat::Var(..)))
        {
            diag.used.insert(first.arm_id);
            let before = scope.len();
            scope.extend(first.bindings.iter().cloned());
            for (p, occ) in first.pats.iter().zip(occs.iter()) {
                if let SPat::Var(name, _) = p {
                    scope.push((name.clone(), occ.clone()));
                }
            }
            let out = self.expr(first.body, scope)?;
            scope.truncate(before);
            return Ok(out);
        }
        // Pick the first column containing a refutable pattern.
        let col = (0..occs.len())
            .find(|i| {
                rows.iter()
                    .any(|r| matches!(r.pats[*i], SPat::Ctor(..) | SPat::Int(..)))
            })
            .expect("refutable row implies a constructor or literal column");
        // Literal columns compile to equality chains.
        if rows.iter().any(|r| matches!(r.pats[col], SPat::Int(..))) {
            return self.compile_literal_column(occs, rows, col, scope, span, diag);
        }
        // The data type of the column, from any constructor in it.
        let data = rows
            .iter()
            .find_map(|r| match &r.pats[col] {
                SPat::Ctor(name, _, _) => self.syms.ctors.get(name).map(|c| c.data),
                _ => None,
            })
            .expect("constructor column");
        // Constructors present in the column, in first-appearance order.
        let mut present: Vec<(String, CtorId, usize)> = Vec::new();
        for r in &rows {
            if let SPat::Ctor(name, _, cspan) = &r.pats[col] {
                let sym = self.syms.ctors.get(name).ok_or_else(|| {
                    LangError::resolve(format!("unknown constructor `{name}`"), *cspan)
                })?;
                if sym.data != data {
                    return Err(LangError::resolve(
                        format!("pattern `{name}` belongs to a different type"),
                        *cspan,
                    ));
                }
                if !present.iter().any(|(n, _, _)| n == name) {
                    present.push((name.clone(), sym.id, self.syms.types.ctor(sym.id).arity));
                }
            }
        }
        let all_ctors = self
            .syms
            .datas
            .values()
            .find(|d| d.id == data)
            .expect("data exists")
            .ctors
            .len();

        let mut arms = Vec::with_capacity(present.len());
        for (name, ctor, arity) in &present {
            // Fresh binders for the fields.
            let info = self.syms.types.ctor(*ctor);
            let binders: Vec<Var> = (0..*arity)
                .map(|i| {
                    let hint = info
                        .field_names
                        .get(i)
                        .filter(|n| !n.is_empty())
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| format!("f{i}"));
                    self.gen.fresh(&hint)
                })
                .collect();
            // Specialized sub-matrix.
            let mut sub_rows = Vec::new();
            for r in &rows {
                match &r.pats[col] {
                    SPat::Int(..) => unreachable!("literal in constructor column"),
                    SPat::Ctor(n, subpats, _) if n == name => {
                        let mut pats = r.pats.clone();
                        let mut expanded: Vec<SPat> = subpats.clone();
                        // Prefix patterns: pad trailing wildcards.
                        while expanded.len() < *arity {
                            expanded.push(SPat::Wild(Span::default()));
                        }
                        pats.splice(col..=col, expanded);
                        sub_rows.push(Row {
                            pats,
                            bindings: r.bindings.clone(),
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                    SPat::Ctor(..) => {}
                    SPat::Wild(_) => {
                        let mut pats = r.pats.clone();
                        pats.splice(col..=col, (0..*arity).map(|_| SPat::Wild(Span::default())));
                        sub_rows.push(Row {
                            pats,
                            bindings: r.bindings.clone(),
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                    SPat::Var(n, _) => {
                        let mut pats = r.pats.clone();
                        pats.splice(col..=col, (0..*arity).map(|_| SPat::Wild(Span::default())));
                        let mut bindings = r.bindings.clone();
                        bindings.push((n.clone(), occs[col].clone()));
                        sub_rows.push(Row {
                            pats,
                            bindings,
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                }
            }
            let mut sub_occs = occs.clone();
            sub_occs.splice(col..=col, binders.iter().cloned());
            let body = self.compile_match(sub_occs, sub_rows, scope, span, diag)?;
            arms.push(Arm {
                ctor: *ctor,
                binders: binders.into_iter().map(Some).collect(),
                reuse_token: None,
                body,
            });
        }

        // Default arm for constructors not in the column.
        let default = if present.len() == all_ctors {
            None
        } else {
            let mut def_rows = Vec::new();
            for r in &rows {
                match &r.pats[col] {
                    SPat::Int(..) => unreachable!("literal in constructor column"),
                    SPat::Ctor(..) => {}
                    SPat::Wild(_) => {
                        let mut pats = r.pats.clone();
                        pats.remove(col);
                        def_rows.push(Row {
                            pats,
                            bindings: r.bindings.clone(),
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                    SPat::Var(n, _) => {
                        let mut pats = r.pats.clone();
                        pats.remove(col);
                        let mut bindings = r.bindings.clone();
                        bindings.push((n.clone(), occs[col].clone()));
                        def_rows.push(Row {
                            pats,
                            bindings,
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                }
            }
            let mut def_occs = occs.clone();
            def_occs.remove(col);
            Some(Box::new(
                self.compile_match(def_occs, def_rows, scope, span, diag)?,
            ))
        };

        Ok(Expr::Match {
            scrutinee: occs[col].clone(),
            arms,
            default,
        })
    }

    /// Compiles a column of integer-literal patterns into an equality
    /// chain: `if occ == ℓ₁ then … elif occ == ℓ₂ then … else default`.
    /// Integer matches are never exhaustive, so the default sub-matrix
    /// (wildcard/variable rows) supplies the fall-through; when it is
    /// empty, the chain ends in a runtime abort.
    fn compile_literal_column(
        &mut self,
        occs: Vec<Var>,
        rows: Vec<Row<'_>>,
        col: usize,
        scope: &mut Scope,
        span: Span,
        diag: &mut MatchDiag,
    ) -> Result<Expr, LangError> {
        // Distinct literals, first-appearance order.
        let mut lits: Vec<i64> = Vec::new();
        for r in &rows {
            if let SPat::Int(i, _) = &r.pats[col] {
                if !lits.contains(i) {
                    lits.push(*i);
                }
            }
        }
        // Default sub-matrix: wildcard/variable rows with the column
        // removed.
        let mut def_rows = Vec::new();
        for r in &rows {
            match &r.pats[col] {
                SPat::Int(..) => {}
                SPat::Ctor(..) => unreachable!("ctor in literal column"),
                SPat::Wild(_) => {
                    let mut pats = r.pats.clone();
                    pats.remove(col);
                    def_rows.push(Row {
                        pats,
                        bindings: r.bindings.clone(),
                        body: r.body,
                        arm_id: r.arm_id,
                    });
                }
                SPat::Var(n, _) => {
                    let mut pats = r.pats.clone();
                    pats.remove(col);
                    let mut bindings = r.bindings.clone();
                    bindings.push((n.clone(), occs[col].clone()));
                    def_rows.push(Row {
                        pats,
                        bindings,
                        body: r.body,
                        arm_id: r.arm_id,
                    });
                }
            }
        }
        let mut def_occs = occs.clone();
        def_occs.remove(col);
        let mut chain = self.compile_match(def_occs, def_rows, scope, span, diag)?;
        // Build the chain inside-out: later literals first.
        for lit in lits.into_iter().rev() {
            let mut sub_rows = Vec::new();
            for r in &rows {
                match &r.pats[col] {
                    SPat::Int(i, _) if *i == lit => {
                        let mut pats = r.pats.clone();
                        pats.remove(col);
                        sub_rows.push(Row {
                            pats,
                            bindings: r.bindings.clone(),
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                    SPat::Int(..) | SPat::Ctor(..) => {}
                    SPat::Wild(_) => {
                        let mut pats = r.pats.clone();
                        pats.remove(col);
                        sub_rows.push(Row {
                            pats,
                            bindings: r.bindings.clone(),
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                    SPat::Var(n, _) => {
                        let mut pats = r.pats.clone();
                        pats.remove(col);
                        let mut bindings = r.bindings.clone();
                        bindings.push((n.clone(), occs[col].clone()));
                        sub_rows.push(Row {
                            pats,
                            bindings,
                            body: r.body,
                            arm_id: r.arm_id,
                        });
                    }
                }
            }
            let mut sub_occs = occs.clone();
            sub_occs.remove(col);
            let hit = self.compile_match(sub_occs, sub_rows, scope, span, diag)?;
            let c = self.gen.fresh("c");
            let test = Expr::Prim(
                PrimOp::Eq,
                vec![Expr::Var(occs[col].clone()), Expr::int(lit)],
            );
            chain = Expr::let_(c.clone(), test, ite(c, hit, chain));
        }
        Ok(chain)
    }

    /// Eta-expands a builtin used as a first-class value.
    fn eta_builtin(&mut self, b: Builtin) -> Expr {
        let params: Vec<Var> = (0..b.arity())
            .map(|i| self.gen.fresh(&format!("b{i}")))
            .collect();
        let args: Vec<Expr> = params.iter().cloned().map(Expr::Var).collect();
        let body = self
            .builtin_call(b, args, Span::default())
            .expect("arity matches by construction");
        Expr::Lam(Lambda {
            params,
            captures: Vec::new(),
            body: Box::new(body),
        })
    }
}

/// Diagnostics collected while compiling one surface `match`.
#[derive(Default)]
struct MatchDiag {
    /// Surface arms whose bodies were reached by some leaf.
    used: HashSet<usize>,
    /// Some path falls through to a runtime abort.
    fell_through: bool,
}

/// One row of the pattern matrix.
struct Row<'s> {
    pats: Vec<SPat>,
    /// Variable-pattern bindings accumulated so far (name → occurrence).
    bindings: Vec<(String, Var)>,
    body: &'s SExpr,
    /// Index of the surface arm this row descends from (diagnostics).
    arm_id: usize,
}

fn con(ctor: CtorId, args: Vec<Expr>) -> Expr {
    Expr::Con {
        ctor,
        args,
        reuse: None,
        skip: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;
    use perceus_core::ir::wf::assert_well_formed;

    fn lower_src(src: &str) -> Program {
        let p = parse(src).unwrap();
        let syms = resolve(&p).unwrap();
        crate::types::check(&p, &syms).unwrap();
        let prog = lower(&p, &syms).unwrap();
        // Normalize to establish capture annotations before checking.
        let mut prog = prog;
        perceus_core::passes::normalize::normalize_program(&mut prog);
        assert_well_formed(&prog);
        prog
    }

    #[test]
    fn lowers_map() {
        let p = lower_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
"#,
        );
        assert_eq!(p.funs().count(), 1);
        let s = perceus_core::ir::pretty::program_to_string(&p);
        assert!(s.contains("match"), "{s}");
        assert!(s.contains("Cons"), "{s}");
    }

    #[test]
    fn compiles_nested_patterns_to_flat_matches() {
        let p = lower_src(
            r#"
type color { Red; Black }
type tree { Leaf; Node(c: color, l: tree, k: int, v: bool, r: tree) }
fun deep(t: tree): int {
  match t {
    Node(_, Node(Red, lx), ky) -> ky
    Node(_, l, k) -> k
    Leaf -> 0
  }
}
"#,
        );
        let s = perceus_core::ir::pretty::program_to_string(&p);
        // Two nested flat matches: outer on t, inner on the left child,
        // and one on the color.
        let count = s.matches("match").count();
        assert!(count >= 3, "expected nested flat matches: {s}");
    }

    #[test]
    fn exhaustive_match_has_no_default() {
        let p = lower_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun f(xs: list<int>): int {
  match xs {
    Cons(x, _) -> x
    Nil -> 0
  }
}
"#,
        );
        // Normalization copy-propagates the scrutinee binding away.
        match &p.funs[0].body {
            Expr::Match { default, arms, .. } => {
                assert!(default.is_none());
                assert_eq!(arms.len(), 2);
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn non_exhaustive_match_gets_abort_default() {
        let p = lower_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun f(xs: list<int>): int {
  match xs {
    Cons(x, _) -> x
  }
}
"#,
        );
        let s = perceus_core::ir::pretty::program_to_string(&p);
        assert!(s.contains("abort"), "{s}");
    }

    #[test]
    fn if_lowers_to_bool_match() {
        let p = lower_src("fun f(x: int): int { if x < 3 then 1 else 2 }");
        let s = perceus_core::ir::pretty::program_to_string(&p);
        assert!(s.contains("True ->"), "{s}");
        assert!(s.contains("False ->"), "{s}");
    }

    #[test]
    fn short_circuit_and() {
        // `f(x) && g(x)` must not evaluate g eagerly: it lowers to a
        // conditional around the second operand.
        let p = lower_src(
            r#"
fun f(x: int): bool { x > 0 }
fun g(x: int): bool { 10 / x > 1 }
fun both(x: int): bool { f(x) && g(x) }
"#,
        );
        let s = perceus_core::ir::pretty::program_to_string(&p);
        let both = s.split("fun both").nth(1).unwrap();
        assert!(both.contains("match"), "short-circuit via match: {both}");
    }

    #[test]
    fn bare_ctor_eta_expands() {
        let p = lower_src(
            r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }
fun apply(f: (int, list<int>) -> list<int>): list<int> { f(1, Nil) }
fun main(): list<int> { apply(Cons) }
"#,
        );
        let s = perceus_core::ir::pretty::program_to_string(&p);
        assert!(s.contains("fn"), "{s}");
    }

    #[test]
    fn prefix_pattern_pads_wildcards() {
        let p = lower_src(
            r#"
type color { Red; Black }
type tree { Leaf; Node(c: color, l: tree, k: int, v: bool, r: tree) }
fun is-red(t: tree): bool {
  match t {
    Node(Red) -> True
    _ -> False
  }
}
"#,
        );
        let s = perceus_core::ir::pretty::program_to_string(&p);
        assert!(s.contains("Node("), "{s}");
    }
}
