//! The surface abstract syntax tree.

use crate::error::Span;

/// A whole source file.
#[derive(Debug, Clone, Default)]
pub struct SProgram {
    /// `type` declarations, in source order.
    pub types: Vec<STypeDef>,
    /// `fun` definitions, in source order.
    pub funs: Vec<SFunDef>,
}

/// A data type declaration.
#[derive(Debug, Clone)]
pub struct STypeDef {
    pub name: String,
    /// Type parameters, e.g. `a` in `type list<a>`.
    pub params: Vec<String>,
    pub ctors: Vec<SCtorDef>,
    pub span: Span,
}

/// One constructor of a data type.
#[derive(Debug, Clone)]
pub struct SCtorDef {
    pub name: String,
    /// Fields: optional name plus type.
    pub fields: Vec<(Option<String>, SType)>,
    pub span: Span,
}

/// Surface types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SType {
    /// A named type, possibly applied: `int`, `list<a>`, `ref<int>`.
    /// Type *variables* are lower-case names that are not declared data
    /// types; the resolver decides.
    Name(String, Vec<SType>),
    /// Function type `(t1, …, tn) -> t`.
    Fn(Vec<SType>, Box<SType>),
    /// `()`.
    Unit,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct SParam {
    pub name: String,
    /// Optional type annotation.
    pub ann: Option<SType>,
    /// `borrow` modifier (§6 / Lean's `@&`): the caller keeps ownership
    /// for the duration of the call. Always sound — a consuming use
    /// inside the body simply retains first — but surrenders the
    /// garbage-free property for this parameter.
    pub borrowed: bool,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct SFunDef {
    pub name: String,
    /// Parameters.
    pub params: Vec<SParam>,
    /// Optional result type annotation.
    pub ret: Option<SType>,
    pub body: SExpr,
    pub span: Span,
}

/// Binary operators of the surface language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    /// `r := v` (mutable reference assignment).
    Assign,
}

/// Surface expressions.
#[derive(Debug, Clone)]
pub enum SExpr {
    /// Lower-case identifier: local variable, parameter, or top-level
    /// function reference.
    Var(String, Span),
    /// Upper-case identifier: constructor (possibly applied by `Call`).
    Con(String, Span),
    /// Integer literal.
    Int(i64, Span),
    /// `()`.
    Unit(Span),
    /// Application `e(e1, …, en)`.
    Call(Box<SExpr>, Vec<SExpr>, Span),
    /// Binary operation (desugared by lowering).
    Binop(BinOp, Box<SExpr>, Box<SExpr>, Span),
    /// Unary minus.
    Neg(Box<SExpr>, Span),
    /// Dereference `!e`.
    Deref(Box<SExpr>, Span),
    /// `if c then a elif c2 then b else d` (else optional only for
    /// unit-typed branches; the parser requires it).
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>, Span),
    /// `match e { pat -> body … }`.
    Match(Box<SExpr>, Vec<SArm>, Span),
    /// `{ stmt; …; tail }`.
    Block(Vec<SStmt>, Box<SExpr>, Span),
    /// `fn(x, y) { body }`.
    Lam(Vec<String>, Box<SExpr>, Span),
}

impl SExpr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            SExpr::Var(_, s)
            | SExpr::Con(_, s)
            | SExpr::Int(_, s)
            | SExpr::Unit(s)
            | SExpr::Call(_, _, s)
            | SExpr::Binop(_, _, _, s)
            | SExpr::Neg(_, s)
            | SExpr::Deref(_, s)
            | SExpr::If(_, _, _, s)
            | SExpr::Match(_, _, s)
            | SExpr::Block(_, _, s)
            | SExpr::Lam(_, _, s) => *s,
        }
    }
}

/// A statement inside a block.
#[derive(Debug, Clone)]
pub enum SStmt {
    /// `val x = e`.
    Val(String, SExpr, Span),
    /// An expression evaluated for its effect.
    Expr(SExpr),
}

/// A match arm with a (possibly nested) pattern.
#[derive(Debug, Clone)]
pub struct SArm {
    pub pattern: SPat,
    pub body: SExpr,
    pub span: Span,
}

/// Surface patterns. Nested patterns are compiled to flat matches by the
/// match compiler in [`crate::lower`].
#[derive(Debug, Clone)]
pub enum SPat {
    /// `_`.
    Wild(Span),
    /// A variable binder.
    Var(String, Span),
    /// An integer literal (`match n { 0 -> …; _ -> … }`).
    Int(i64, Span),
    /// `Cons(p1, …, pn)`; fields may be omitted entirely (`Node` as a
    /// shorthand for `Node(_, …, _)`, like the paper's `Node(Red)`
    /// prefix patterns — trailing fields default to wildcards).
    Ctor(String, Vec<SPat>, Span),
}

impl SPat {
    /// The source span of the pattern.
    pub fn span(&self) -> Span {
        match self {
            SPat::Wild(s) | SPat::Var(_, s) | SPat::Int(_, s) | SPat::Ctor(_, _, s) => *s,
        }
    }
}
