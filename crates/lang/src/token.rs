//! Lexer for the Koka-like surface language.
//!
//! Newlines are significant as soft statement separators inside `{}`
//! blocks (like Koka), so the lexer emits them as tokens and the parser
//! decides where they matter.

use crate::error::{LangError, Span};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Lower-case identifier (variables, functions, type names).
    Ident(String),
    /// Upper-case identifier (constructors).
    ConId(String),
    /// Integer literal.
    Int(i64),
    // Keywords.
    Type,
    Fun,
    Fn,
    Val,
    Match,
    If,
    Then,
    Elif,
    Else,
    Return,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Newline,
    Arrow,  // ->
    Colon,  // :
    Assign, // :=
    Eq,     // =
    EqEq,   // ==
    NotEq,  // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    AndAnd,
    OrOr,
    Bang, // ! (dereference, as in Koka)
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::ConId(s) => write!(f, "constructor `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Type => f.write_str("`type`"),
            Tok::Fun => f.write_str("`fun`"),
            Tok::Fn => f.write_str("`fn`"),
            Tok::Val => f.write_str("`val`"),
            Tok::Match => f.write_str("`match`"),
            Tok::If => f.write_str("`if`"),
            Tok::Then => f.write_str("`then`"),
            Tok::Elif => f.write_str("`elif`"),
            Tok::Else => f.write_str("`else`"),
            Tok::Return => f.write_str("`return`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Newline => f.write_str("end of line"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Assign => f.write_str("`:=`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Percent => f.write_str("`%`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub span: Span,
}

/// Lexes a whole source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let push = |out: &mut Vec<Spanned>, tok: Tok, start: usize, end: usize| {
        out.push(Spanned {
            tok,
            span: Span::new(start as u32, end as u32),
        });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                // Collapse a run of newlines (and surrounding blanks)
                // into a single separator token.
                while i < bytes.len() && matches!(bytes[i], b'\n' | b' ' | b'\t' | b'\r') {
                    i += 1;
                }
                push(&mut out, Tok::Newline, start, i);
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LangError::lex(
                        "unterminated block comment",
                        Span::new(start as u32, i as u32),
                    ));
                }
            }
            '0'..='9' => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| {
                    LangError::lex(
                        &format!("integer literal `{text}` out of range"),
                        Span::new(start as u32, i as u32),
                    )
                })?;
                push(&mut out, Tok::Int(n), start, i);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Hyphens join identifiers Koka-style (`is-red`,
                // `bal-left`) but only before a letter, so `n-1` still
                // lexes as a subtraction.
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_alphabetic())
                {
                    i += 1;
                }
                let text = &src[start..i];
                let tok = match text {
                    "type" => Tok::Type,
                    "fun" => Tok::Fun,
                    "fn" => Tok::Fn,
                    "val" => Tok::Val,
                    "match" => Tok::Match,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "elif" => Tok::Elif,
                    "else" => Tok::Else,
                    "return" => Tok::Return,
                    _ if c.is_ascii_uppercase() => Tok::ConId(text.to_string()),
                    _ => Tok::Ident(text.to_string()),
                };
                push(&mut out, tok, start, i);
            }
            '(' => {
                i += 1;
                push(&mut out, Tok::LParen, start, i);
            }
            ')' => {
                i += 1;
                push(&mut out, Tok::RParen, start, i);
            }
            '{' => {
                i += 1;
                push(&mut out, Tok::LBrace, start, i);
            }
            '}' => {
                i += 1;
                push(&mut out, Tok::RBrace, start, i);
            }
            ',' => {
                i += 1;
                push(&mut out, Tok::Comma, start, i);
            }
            ';' => {
                i += 1;
                push(&mut out, Tok::Semi, start, i);
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                i += 2;
                push(&mut out, Tok::Arrow, start, i);
            }
            '-' => {
                i += 1;
                push(&mut out, Tok::Minus, start, i);
            }
            ':' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                push(&mut out, Tok::Assign, start, i);
            }
            ':' => {
                i += 1;
                push(&mut out, Tok::Colon, start, i);
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                push(&mut out, Tok::EqEq, start, i);
            }
            '=' => {
                i += 1;
                push(&mut out, Tok::Eq, start, i);
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                push(&mut out, Tok::NotEq, start, i);
            }
            '!' => {
                i += 1;
                push(&mut out, Tok::Bang, start, i);
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                push(&mut out, Tok::Le, start, i);
            }
            '<' => {
                i += 1;
                push(&mut out, Tok::Lt, start, i);
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                push(&mut out, Tok::Ge, start, i);
            }
            '>' => {
                i += 1;
                push(&mut out, Tok::Gt, start, i);
            }
            '+' => {
                i += 1;
                push(&mut out, Tok::Plus, start, i);
            }
            '*' => {
                i += 1;
                push(&mut out, Tok::Star, start, i);
            }
            '/' => {
                i += 1;
                push(&mut out, Tok::Slash, start, i);
            }
            '%' => {
                i += 1;
                push(&mut out, Tok::Percent, start, i);
            }
            '&' if bytes.get(i + 1) == Some(&b'&') => {
                i += 2;
                push(&mut out, Tok::AndAnd, start, i);
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                i += 2;
                push(&mut out, Tok::OrOr, start, i);
            }
            other => {
                return Err(LangError::lex(
                    &format!("unexpected character `{other}`"),
                    Span::new(start as u32, (start + 1) as u32),
                ))
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        span: Span::new(src.len() as u32, src.len() as u32),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("fun map Cons xs"),
            vec![
                Tok::Fun,
                Tok::Ident("map".into()),
                Tok::ConId("Cons".into()),
                Tok::Ident("xs".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_hyphenated_identifiers() {
        // Koka-style: is-red, bal-left.
        assert_eq!(
            toks("is-red bal-left a - b"),
            vec![
                Tok::Ident("is-red".into()),
                Tok::Ident("bal-left".into()),
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("-> - := : == = != ! <= < >= > && ||"),
            vec![
                Tok::Arrow,
                Tok::Minus,
                Tok::Assign,
                Tok::Colon,
                Tok::EqEq,
                Tok::Eq,
                Tok::NotEq,
                Tok::Bang,
                Tok::Le,
                Tok::Lt,
                Tok::Ge,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn newlines_collapse() {
        assert_eq!(
            toks("a\n\n\nb"),
            vec![
                Tok::Ident("a".into()),
                Tok::Newline,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\nb /* multi\nline */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Newline,
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0 123"),
            vec![Tok::Int(42), Tok::Int(0), Tok::Int(123), Tok::Eof]
        );
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* never ends").is_err());
    }
}
