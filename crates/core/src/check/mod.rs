//! Static verifiers for pass output.

pub mod linear;

pub use linear::{
    check_fun_body, check_program, check_program_relaxed, check_program_with, Discipline,
    LinearError,
};
