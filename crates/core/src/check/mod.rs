//! Static verifiers for pass output.

pub mod linear;

pub use linear::{check_fun_body, check_program, LinearError};
