//! The *resource checker*: an executable counterpart of the declarative
//! linear resource calculus (Fig. 5 of the paper).
//!
//! After insertion (and after each optimization pass), every function
//! must satisfy a path-sensitive ownership discipline:
//!
//! * every owned reference is consumed **exactly once** on every
//!   control-flow path (uses, `drop`, `decref`, `free`, `drop-reuse`,
//!   `&x`, closure capture, and constructor/call arguments all consume);
//! * `dup` may only target a variable that is provably alive: one that
//!   is currently owned, or a match binder whose parent cell is alive
//!   (the borrowed-field rule that justifies Fig. 1b's
//!   `dup x; dup xx; drop xs` ordering);
//! * at a control-flow join (the arms of a `match` or of an
//!   `is-unique`), every path must agree on the resulting ownership;
//! * entering the unique branch of `is-unique(x)` transfers the cell's
//!   ownership of its fields to the arm binders (one count each), which
//!   is what makes the fused fast path of Fig. 1d/1g — `free x` with no
//!   other rc instruction — check out.
//!
//! Theorem 3 of the paper (the syntax-directed system is sound w.r.t.
//! the declarative one) corresponds to: everything the insertion pass
//! emits passes this checker; the test suites of `perceus-core` and the
//! integration tests enforce it for every program and every pass
//! combination.

use crate::ir::expr::{Expr, Lambda};
use crate::ir::program::{FunId, Program};
use crate::ir::var::Var;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which face of the λ¹ resource calculus to check against.
///
/// The paper has two systems (Fig. 5): the *declarative* one, where
/// contraction (`dup`) and weakening (`drop`) are admissible at any
/// point, and the *syntax-directed* one, where every dup/drop is
/// explicit and ownership is consumed exactly once per path. Programs
/// **before** Perceus insertion are judged against the declarative
/// system; pass output **after** insertion must satisfy the strict one
/// (Theorem 3 is the inclusion between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Syntax-directed: exact consumption, balanced joins, no leaks.
    Strict,
    /// Declarative: uses only require the variable to be provably
    /// alive; implicit contraction/weakening is allowed.
    Relaxed,
}

/// A violation of the linear ownership discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearError {
    /// Function in which the violation occurred.
    pub fun: Option<FunId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for LinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fun {
            Some(id) => write!(f, "linearity (fun #{}): {}", id.0, self.message),
            None => write!(f, "linearity: {}", self.message),
        }
    }
}

impl std::error::Error for LinearError {}

/// Ownership environment: per-variable owned count plus the binder
/// parent chain used for aliveness, plus the borrowed parameters, which
/// are pinned alive for the whole function body (§6).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Env {
    owned: HashMap<Var, isize>,
    parent: HashMap<Var, Var>,
    pinned: HashSet<Var>,
}

impl Env {
    fn alive(&self, v: &Var) -> bool {
        if self.pinned.contains(v) || self.owned.get(v).copied().unwrap_or(0) > 0 {
            return true;
        }
        match self.parent.get(v) {
            Some(p) => self.alive(p),
            None => false,
        }
    }

    fn consume(&mut self, v: &Var, what: &str) -> Result<(), String> {
        let c = self
            .owned
            .get_mut(v)
            .ok_or_else(|| format!("{what} of {v:?} which is not a tracked resource"))?;
        if *c < 1 {
            return Err(format!("{what} of {v:?} without ownership (count {c})"));
        }
        *c -= 1;
        Ok(())
    }

    fn grant(&mut self, v: &Var) {
        *self.owned.entry(v.clone()).or_insert(0) += 1;
    }

    fn bind(&mut self, v: &Var, count: isize) {
        self.owned.insert(v.clone(), count);
    }

    fn unbind(&mut self, v: &Var, what: &str) -> Result<(), String> {
        match self.owned.remove(v) {
            Some(0) => Ok(()),
            Some(n) => Err(format!("{what} {v:?} leaves scope with count {n}")),
            None => Err(format!("{what} {v:?} was never bound")),
        }
    }

    /// The comparable footprint: variables with a non-zero count.
    fn footprint(&self) -> Vec<(Var, isize)> {
        let mut v: Vec<(Var, isize)> = self
            .owned
            .iter()
            .filter(|(_, c)| **c != 0)
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort();
        v
    }
}

/// Checks every function of a program, honoring its borrow masks, under
/// the strict (syntax-directed) discipline.
pub fn check_program(p: &Program) -> Result<(), LinearError> {
    check_program_with(p, Discipline::Strict)
}

/// Checks every function against the declarative system: every use must
/// target a provably-alive variable, but implicit dup/drop is allowed.
/// This is the check that applies to pipeline stages *before* Perceus
/// insertion (and to the erased programs of the GC/arena strategies).
pub fn check_program_relaxed(p: &Program) -> Result<(), LinearError> {
    check_program_with(p, Discipline::Relaxed)
}

/// Checks every function of a program under the chosen discipline.
pub fn check_program_with(p: &Program, discipline: Discipline) -> Result<(), LinearError> {
    let cx = Cx {
        borrows: &p.borrows,
        relaxed: discipline == Discipline::Relaxed,
    };
    for (id, f) in p.funs() {
        let mask = p.borrows.get(id.0 as usize).cloned().unwrap_or_default();
        check_fun_body_in(&cx, &f.params, &mask, &f.body).map_err(|message| LinearError {
            fun: Some(id),
            message,
        })?;
    }
    Ok(())
}

/// Call-site context: the borrow masks of the whole program plus the
/// active discipline.
struct Cx<'a> {
    borrows: &'a [Vec<bool>],
    relaxed: bool,
}

impl<'a> Cx<'a> {
    fn borrowed_pos(&self, f: FunId, i: usize) -> bool {
        self.borrows
            .get(f.0 as usize)
            .and_then(|m| m.get(i))
            .copied()
            .unwrap_or(false)
    }

    /// Consumes one ownership of `v` (strict), or merely checks that `v`
    /// is alive (relaxed: contraction is implicit there).
    fn consume(&self, env: &mut Env, v: &Var, what: &str) -> Result<(), String> {
        if self.relaxed {
            if env.alive(v) || env.owned.contains_key(v) {
                Ok(())
            } else {
                Err(format!("{what} of {v:?} which is not in scope"))
            }
        } else {
            env.consume(v, what)
        }
    }

    /// Removes a binding that leaves scope; under the strict discipline
    /// a leftover count is a leak, under the relaxed one weakening is
    /// implicit.
    fn unbind(&self, env: &mut Env, v: &Var, what: &str) -> Result<(), String> {
        if self.relaxed {
            env.owned.remove(v);
            Ok(())
        } else {
            env.unbind(v, what)
        }
    }
}

/// Checks one function body under the owned calling convention
/// (parameters owned with count 1, all consumed by the end), strictly.
pub fn check_fun_body(params: &[Var], body: &Expr) -> Result<(), String> {
    check_fun_body_in(
        &Cx {
            borrows: &[],
            relaxed: false,
        },
        params,
        &[],
        body,
    )
}

fn check_fun_body_in(
    cx: &Cx<'_>,
    params: &[Var],
    mask: &[bool],
    body: &Expr,
) -> Result<(), String> {
    let mut env = Env::default();
    for (i, par) in params.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            // Borrowed: alive for the whole body, never consumed here.
            env.bind(par, 0);
            env.pinned.insert(par.clone());
        } else {
            env.bind(par, 1);
        }
    }
    let out = check(cx, body, env)?;
    if let Some(env) = out {
        let leftover = env.footprint();
        if !cx.relaxed && !leftover.is_empty() {
            return Err(format!("resources leaked at function exit: {leftover:?}"));
        }
    }
    Ok(())
}

/// Checks `e`; returns the resulting environment, or `None` if the path
/// diverges (aborts).
fn check(cx: &Cx<'_>, e: &Expr, mut env: Env) -> Result<Option<Env>, String> {
    match e {
        Expr::Var(x) => {
            cx.consume(&mut env, x, "use")?;
            Ok(Some(env))
        }
        Expr::Lit(_) | Expr::Global(_) | Expr::NullToken => Ok(Some(env)),
        Expr::Abort(_) => Ok(None),
        Expr::TokenOf(x) => {
            cx.consume(&mut env, x, "&")?;
            Ok(Some(env))
        }
        Expr::App(f, args) => {
            let mut cur = match check(cx, f, env)? {
                Some(e) => e,
                None => return Ok(None),
            };
            for a in args {
                cur = match check(cx, a, cur)? {
                    Some(e) => e,
                    None => return Ok(None),
                };
            }
            Ok(Some(cur))
        }
        Expr::Call(f, args) => {
            let mut cur = env;
            for (i, a) in args.iter().enumerate() {
                // A variable in a borrowed position is used without
                // being consumed; it only has to be alive (§6).
                if cx.borrowed_pos(*f, i) {
                    if let Expr::Var(v) = a {
                        if !cur.alive(v) {
                            return Err(format!("borrowed argument {v:?} is dead at the call"));
                        }
                        continue;
                    }
                }
                cur = match check(cx, a, cur)? {
                    Some(e) => e,
                    None => return Ok(None),
                };
            }
            Ok(Some(cur))
        }
        Expr::Prim(_, args) => {
            let mut cur = env;
            for a in args {
                cur = match check(cx, a, cur)? {
                    Some(e) => e,
                    None => return Ok(None),
                };
            }
            Ok(Some(cur))
        }
        Expr::Con { args, reuse, .. } => {
            if let Some(t) = reuse {
                cx.consume(&mut env, t, "reuse")?;
            }
            let mut cur = env;
            for a in args {
                cur = match check(cx, a, cur)? {
                    Some(e) => e,
                    None => return Ok(None),
                };
            }
            Ok(Some(cur))
        }
        Expr::Lam(Lambda {
            params,
            captures,
            body,
        }) => {
            // The closure consumes its captures …
            for c in captures {
                cx.consume(&mut env, c, "capture")?;
            }
            // … and the body is its own resource world: params and
            // captures owned, everything consumed by the end.
            let mut inner = Env::default();
            for v in captures.iter().chain(params.iter()) {
                inner.bind(v, 1);
            }
            if let Some(out) = check(cx, body, inner)? {
                let leftover = out.footprint();
                if !cx.relaxed && !leftover.is_empty() {
                    return Err(format!("lambda leaks resources: {leftover:?}"));
                }
            }
            Ok(Some(env))
        }
        Expr::Let { var, rhs, body } => {
            let mut cur = match check(cx, rhs, env)? {
                Some(e) => e,
                None => return Ok(None),
            };
            cur.bind(var, 1);
            match check(cx, body, cur)? {
                Some(mut out) => {
                    cx.unbind(&mut out, var, "let binding")?;
                    Ok(Some(out))
                }
                None => Ok(None),
            }
        }
        Expr::Seq(a, b) => {
            let cur = match check(cx, a, env)? {
                Some(e) => e,
                None => return Ok(None),
            };
            check(cx, b, cur)
        }
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            if !env.alive(scrutinee) {
                return Err(format!("match on dead scrutinee {scrutinee:?}"));
            }
            let mut results: Vec<Env> = Vec::new();
            for arm in arms {
                let mut local = env.clone();
                let binders: Vec<Var> = arm.binders.iter().flatten().cloned().collect();
                for b in &binders {
                    local.bind(b, 0); // borrowed from the scrutinee cell
                    local.parent.insert(b.clone(), scrutinee.clone());
                }
                if let Some(t) = &arm.reuse_token {
                    if !cx.relaxed {
                        return Err(format!(
                            "unlowered reuse annotation @{t:?} (insertion should have consumed it)"
                        ));
                    }
                    // Pre-insertion: reuse analysis has attached the
                    // token; the arm body may pass it to a constructor.
                    local.bind(t, 1);
                }
                if let Some(mut out) = check(cx, &arm.body, local)? {
                    for b in &binders {
                        cx.unbind(&mut out, b, "match binder")?;
                        out.parent.remove(b);
                    }
                    if let Some(t) = &arm.reuse_token {
                        cx.unbind(&mut out, t, "reuse annotation")?;
                    }
                    results.push(out);
                }
            }
            if let Some(d) = default {
                if let Some(out) = check(cx, d, env.clone())? {
                    results.push(out);
                }
            }
            join(cx, results, "match")
        }
        Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } => {
            if cx.relaxed {
                if !env.alive(var) && !env.owned.contains_key(var) {
                    return Err(format!("is-unique on out-of-scope {var:?}"));
                }
            } else if env.owned.get(var).copied().unwrap_or(0) < 1 {
                return Err(format!("is-unique on unowned {var:?}"));
            }
            let mut uenv = env.clone();
            // Entering the unique branch transfers the cell's field
            // references to the binders.
            for b in binders {
                uenv.grant(b);
            }
            let mut results = Vec::new();
            if let Some(out) = check(cx, unique, uenv)? {
                results.push(out);
            }
            if let Some(out) = check(cx, shared, env)? {
                results.push(out);
            }
            join(cx, results, "is-unique")
        }
        Expr::Dup(x, rest) => {
            if !env.alive(x) {
                return Err(format!("dup of dead variable {x:?}"));
            }
            env.grant(x);
            check(cx, rest, env)
        }
        Expr::Drop(x, rest) | Expr::DecRef(x, rest) | Expr::Free(x, rest) => {
            let what = match e {
                Expr::Drop(..) => "drop",
                Expr::DecRef(..) => "decref",
                _ => "free",
            };
            cx.consume(&mut env, x, what)?;
            check(cx, rest, env)
        }
        Expr::DropToken(t, rest) => {
            cx.consume(&mut env, t, "drop-token")?;
            check(cx, rest, env)
        }
        Expr::DropReuse { var, token, body } => {
            cx.consume(&mut env, var, "drop-reuse")?;
            env.bind(token, 1);
            match check(cx, body, env)? {
                Some(mut out) => {
                    cx.unbind(&mut out, token, "reuse token")?;
                    Ok(Some(out))
                }
                None => Ok(None),
            }
        }
    }
}

/// All surviving paths must agree on the ownership footprint (strict
/// only; the declarative system weakens each branch independently).
fn join(cx: &Cx<'_>, mut results: Vec<Env>, what: &str) -> Result<Option<Env>, String> {
    let Some(first) = results.pop() else {
        return Ok(None); // all paths diverge
    };
    if cx.relaxed {
        return Ok(Some(first));
    }
    let fp = first.footprint();
    for other in &results {
        if other.footprint() != fp {
            return Err(format!(
                "{what} branches disagree on ownership: {:?} vs {:?}",
                fp,
                other.footprint()
            ));
        }
    }
    Ok(Some(first))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::var::Var;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn accepts_single_use() {
        let x = v(0, "x");
        assert!(check_fun_body(std::slice::from_ref(&x), &Expr::Var(x.clone())).is_ok());
    }

    #[test]
    fn rejects_double_use() {
        use crate::ir::expr::PrimOp;
        let x = v(0, "x");
        let e = Expr::Prim(
            PrimOp::Add,
            vec![Expr::Var(x.clone()), Expr::Var(x.clone())],
        );
        let err = check_fun_body(&[x], &e).unwrap_err();
        assert!(err.contains("without ownership"), "{err}");
    }

    #[test]
    fn accepts_dup_then_double_use() {
        use crate::ir::expr::PrimOp;
        let x = v(0, "x");
        let e = Expr::dup(
            x.clone(),
            Expr::Prim(
                PrimOp::Add,
                vec![Expr::Var(x.clone()), Expr::Var(x.clone())],
            ),
        );
        assert!(check_fun_body(&[x], &e).is_ok());
    }

    #[test]
    fn rejects_leak() {
        let x = v(0, "x");
        let e = Expr::int(1); // x never consumed
        let err = check_fun_body(&[x], &e).unwrap_err();
        assert!(err.contains("leaked"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_branches() {
        use crate::ir::builder::ite;
        let c = v(0, "c");
        let x = v(1, "x");
        // if c then x else 0 — x consumed on one path only.
        let e = ite(c.clone(), Expr::Var(x.clone()), Expr::int(0));
        let err = check_fun_body(&[c, x], &e).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn unique_branch_grants_binders() {
        // The fused fast path (Fig. 1d): free consumes the cell, binders
        // become owned and are consumed by the continuation.
        use crate::ir::builder::{arm, con, ProgramBuilder};
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let cond = Expr::IsUnique {
            var: xs.clone(),
            binders: vec![x.clone(), xx.clone()],
            unique: Box::new(Expr::Free(xs.clone(), Box::new(Expr::unit()))),
            shared: Box::new(Expr::dup(
                x.clone(),
                Expr::dup(xx.clone(), Expr::DecRef(xs.clone(), Box::new(Expr::unit()))),
            )),
        };
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(
                cons,
                vec![x.clone(), xx.clone()],
                Expr::seq(
                    cond,
                    con(cons, vec![Expr::Var(x.clone()), Expr::Var(xx.clone())]),
                ),
            )],
            default: Some(Box::new(Expr::drop_(xs.clone(), Expr::unit()))),
        };
        pb.fun("f", vec![xs], body);
        let p = pb.finish();
        check_program(&p).unwrap();
    }

    #[test]
    fn rejects_dup_of_dead_binder() {
        use crate::ir::builder::arm;
        let mut pb = crate::ir::builder::ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        // drop xs (frees the cell), *then* dup x — invalid order.
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(
                cons,
                vec![x.clone(), xx.clone()],
                Expr::drop_(xs.clone(), Expr::dup(x.clone(), Expr::Var(x.clone()))),
            )],
            default: Some(Box::new(Expr::drop_(xs.clone(), Expr::unit()))),
        };
        pb.fun("f", vec![xs], body);
        let p = pb.finish();
        let err = check_program(&p).unwrap_err();
        assert!(err.message.contains("dup of dead"), "{err}");
    }

    #[test]
    fn relaxed_allows_contraction_and_weakening() {
        use crate::ir::expr::PrimOp;
        let mut p = crate::ir::program::Program::new();
        let x = v(0, "x");
        let y = v(1, "y");
        // x used twice (contraction), y never used (weakening): rejected
        // strictly, accepted declaratively.
        p.add_fun(crate::ir::program::FunDef {
            name: "f".into(),
            params: vec![x.clone(), y],
            body: Expr::Prim(
                PrimOp::Add,
                vec![Expr::Var(x.clone()), Expr::Var(x.clone())],
            ),
        });
        assert!(check_program(&p).is_err());
        check_program_relaxed(&p).unwrap();
    }

    #[test]
    fn relaxed_still_rejects_out_of_scope_use() {
        let mut p = crate::ir::program::Program::new();
        p.add_fun(crate::ir::program::FunDef {
            name: "f".into(),
            params: vec![],
            body: Expr::Var(v(9, "ghost")),
        });
        let err = check_program_relaxed(&p).unwrap_err();
        assert!(err.message.contains("not in scope"), "{err}");
    }

    #[test]
    fn relaxed_accepts_reuse_annotations() {
        // Post-reuse-analysis, pre-insertion shape: a match arm carries a
        // reuse token that a constructor in the body consumes.
        use crate::ir::builder::ProgramBuilder;
        use crate::ir::expr::Arm;
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let h = pb.fresh("h");
        let t = pb.fresh("t");
        let ru = pb.fresh("ru");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                Arm {
                    ctor: cons,
                    binders: vec![Some(h.clone()), Some(t.clone())],
                    reuse_token: Some(ru.clone()),
                    body: Expr::Con {
                        ctor: cons,
                        args: vec![Expr::Var(h), Expr::Var(t)],
                        reuse: Some(ru),
                        skip: vec![],
                    },
                },
                Arm {
                    ctor: nil,
                    binders: vec![],
                    reuse_token: None,
                    body: Expr::Con {
                        ctor: nil,
                        args: vec![],
                        reuse: None,
                        skip: vec![],
                    },
                },
            ],
            default: None,
        };
        pb.fun("f", vec![xs], body);
        let p = pb.finish();
        assert!(check_program(&p).is_err(), "strict rejects annotations");
        check_program_relaxed(&p).unwrap();
    }

    #[test]
    fn closure_consumes_captures() {
        use crate::ir::expr::Lambda;
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Expr::Lam(Lambda {
            params: vec![y.clone()],
            captures: vec![x.clone()],
            body: Box::new(Expr::drop_(y.clone(), Expr::Var(x.clone()))),
        });
        // x consumed by the capture; nothing leaks.
        assert!(check_fun_body(&[x], &lam).is_ok());
    }
}
