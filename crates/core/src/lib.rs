//! # perceus-core
//!
//! The λ¹ linear resource calculus and the Perceus reference-counting
//! algorithm from *Perceus: Garbage Free Reference Counting with Reuse*
//! (Reinking, Xie, de Moura, Leijen — PLDI 2021).
//!
//! This crate contains:
//!
//! * [`ir`] — the core intermediate representation: an untyped functional
//!   core language with algebraic data types, explicit control flow, and
//!   the reference-counting instruction forms of the paper (`dup`, `drop`,
//!   `drop-reuse`, `is-unique`, `free`, `decref`, constructor-with-reuse).
//! * [`check`] — the *resource checker*, an executable analog of the
//!   declarative linear resource rules (Fig. 5): it verifies that every
//!   owned reference is consumed exactly once on every control-flow path.
//! * [`passes`] — the Perceus insertion algorithm (Fig. 8) and every
//!   optimization described in §2 of the paper: reuse analysis,
//!   drop specialization, drop-reuse specialization, dup push-down with
//!   dup/drop fusion, and reuse specialization; plus the scoped
//!   ("`shared_ptr`-style", §2.2) insertion used as a baseline, an ANF
//!   normalizer and a small-function inliner.
//!
//! The typical pipeline is driven by [`passes::Pipeline`]:
//!
//! ```
//! use perceus_core::ir::Program;
//! use perceus_core::passes::{Pipeline, PassConfig};
//!
//! // A program is usually produced by the `perceus-lang` front end; here
//! // we start from an empty one just to show the driver API.
//! let program = Program::new();
//! let compiled = Pipeline::new(PassConfig::perceus()).run(program).unwrap();
//! assert!(compiled.funs.is_empty());
//! ```

pub mod analysis;
pub mod check;
pub mod ir;
pub mod passes;

pub use analysis::{analyze_program, Analysis, Diagnostic, Diagnostics, LintCode};
pub use ir::{Expr, Program, Var};
pub use passes::{
    AnalyzedStages, PassConfig, PassError, PassName, Pipeline, StageAnalysis, StageError,
    StageTrace, Validation,
};
