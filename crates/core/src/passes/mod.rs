//! The Perceus pass pipeline.
//!
//! Pass order (paper §2, Fig. 1):
//!
//! 1. [`normalize`] — ANF, capture annotation, full binder naming.
//! 2. [`inline`] — small-function inlining (enables whole-branch reuse,
//!    §2.5's `bal-left` example).
//! 3. [`reuse`] — reuse analysis: pair matched cells with allocations
//!    (Fig. 1e).
//! 4. [`insert`] — Perceus `dup`/`drop` insertion (Fig. 8 / Fig. 1b),
//!    or [`scoped`] for the scope-tied baseline.
//! 5. [`reuse_spec`] — reuse specialization: skip unchanged field writes
//!    (§2.5).
//! 6. [`drop_spec`] — drop / drop-reuse specialization (Fig. 1c/1f).
//! 7. [`fuse`] — dup push-down and dup/drop fusion (Fig. 1d/1g).
//!
//! # Staged verification
//!
//! Every pass boundary is observable: [`Pipeline::stages`] returns a
//! [`StageTrace`] of named `(PassName, Program)` snapshots with
//! per-stage timing, and — when [`Validation`] is active — the pipeline
//! checks **after every pass** that the program is still well-formed
//! ([`crate::ir::wf`]) and still satisfies the λ¹ resource calculus
//! ([`crate::check::linear`]): the declarative discipline before
//! `dup`/`drop` insertion, the strict syntax-directed one after (the
//! two systems of Fig. 5; Theorem 3 is their inclusion). A violation is
//! reported as [`PassError::Stage`], naming the first offending pass
//! and carrying a pretty-printed counterexample restricted to the
//! offending function. See `docs/VALIDATION.md`.

pub mod borrow;
pub mod drop_spec;
pub mod fuse;
pub mod inline;
pub mod insert;
pub mod normalize;
pub mod reuse;
pub mod reuse_spec;
pub mod scoped;

use crate::check::linear::{self, Discipline};
use crate::ir::pretty;
use crate::ir::program::Program;
use crate::ir::wf;
use std::fmt;
use std::time::{Duration, Instant};

/// Which reference-counting discipline to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcStrategy {
    /// Precise ownership-based insertion (the paper's contribution).
    Perceus,
    /// Scope-tied insertion (§2.2's `shared_ptr`/Swift baseline).
    Scoped,
    /// No reference counting at all — for the tracing-GC and arena
    /// runtime modes, which reclaim (or leak) without counts.
    None,
}

/// The named stages of the pipeline, in execution order. Each value
/// identifies the pass *whose output* a snapshot or a stage error
/// refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassName {
    /// ANF normalization (also re-run after inlining; the `Inline`
    /// snapshot is post-renormalization).
    Normalize,
    /// Small-function inlining.
    Inline,
    /// Reuse analysis (token pairing, Fig. 1e).
    Reuse,
    /// Borrow inference (§6 extension).
    Borrow,
    /// Perceus `dup`/`drop` insertion.
    Insert,
    /// Scope-tied `dup`/`drop` insertion (baseline).
    Scoped,
    /// Reuse specialization (skip unchanged field writes).
    ReuseSpec,
    /// Drop / drop-reuse specialization.
    DropSpec,
    /// Dup push-down and dup/drop fusion.
    Fuse,
}

impl PassName {
    /// Every stage, in pipeline order (not all run under every config).
    pub const ALL: [PassName; 9] = [
        PassName::Normalize,
        PassName::Inline,
        PassName::Reuse,
        PassName::Borrow,
        PassName::Insert,
        PassName::Scoped,
        PassName::ReuseSpec,
        PassName::DropSpec,
        PassName::Fuse,
    ];

    /// Stable display label (used in stage errors and the fuzz CLI).
    pub fn label(self) -> &'static str {
        match self {
            PassName::Normalize => "normalize",
            PassName::Inline => "inline",
            PassName::Reuse => "reuse",
            PassName::Borrow => "borrow",
            PassName::Insert => "insert",
            PassName::Scoped => "scoped",
            PassName::ReuseSpec => "reuse-spec",
            PassName::DropSpec => "drop-spec",
            PassName::Fuse => "fuse",
        }
    }

    /// True for the stages that run after rc insertion, whose output
    /// must satisfy the *strict* λ¹ discipline (for rc strategies).
    fn rc_inserted(self) -> bool {
        matches!(
            self,
            PassName::Insert
                | PassName::Scoped
                | PassName::ReuseSpec
                | PassName::DropSpec
                | PassName::Fuse
        )
    }
}

impl fmt::Display for PassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// When the per-pass λ¹ + well-formedness checks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Validation {
    /// Never (a single well-formedness check still runs at the end of
    /// the pipeline, as a last-resort guard).
    Off,
    /// Only in debug/test builds (`cfg(debug_assertions)`) — the
    /// default: release compilations pay nothing.
    #[default]
    DebugOnly,
    /// Always, including release builds — what the differential fuzzer
    /// uses so a broken pass is attributed even under `--release`.
    Full,
}

impl Validation {
    /// Is per-stage checking active in this build?
    pub fn active(self) -> bool {
        match self {
            Validation::Off => false,
            Validation::DebugOnly => cfg!(debug_assertions),
            Validation::Full => true,
        }
    }
}

/// Full pipeline configuration.
///
/// Constructed from a strategy preset and refined with the builder
/// methods, e.g. `PassConfig::perceus().with_borrow(true)` or
/// `PassConfig::perceus().with_validation(Validation::Full)`.
#[derive(Debug, Clone)]
pub struct PassConfig {
    strategy: RcStrategy,
    borrow: bool,
    inline: bool,
    inline_config: inline::InlineConfig,
    reuse: bool,
    reuse_config: reuse::ReuseConfig,
    reuse_spec: bool,
    drop_spec: bool,
    fuse: bool,
    validation: Validation,
}

impl PassConfig {
    /// Full Perceus with all optimizations — the paper's "Koka" column.
    pub fn perceus() -> Self {
        PassConfig {
            strategy: RcStrategy::Perceus,
            borrow: false,
            inline: true,
            inline_config: inline::InlineConfig::default(),
            reuse: true,
            reuse_config: reuse::ReuseConfig::default(),
            reuse_spec: true,
            drop_spec: true,
            fuse: true,
            validation: Validation::default(),
        }
    }

    /// Precise insertion only, no reuse and no specialization — the
    /// paper's "Koka, no-opt" column.
    pub fn perceus_no_opt() -> Self {
        PassConfig::perceus()
            .with_reuse(false)
            .with_reuse_spec(false)
            .with_drop_spec(false)
            .with_fuse(false)
    }

    /// Full Perceus plus inferred borrowed parameters (§6 extension).
    /// Fewer rc operations, but no longer garbage-free: a caller holds
    /// borrowed values across whole calls.
    pub fn perceus_borrowing() -> Self {
        PassConfig::perceus().with_borrow(true)
    }

    /// Scope-tied reference counting (§2.2 baseline).
    pub fn scoped() -> Self {
        PassConfig::for_strategy(RcStrategy::Scoped)
    }

    /// No reference counting: for the tracing-GC and arena runtimes.
    pub fn erased() -> Self {
        PassConfig::for_strategy(RcStrategy::None)
    }

    /// The canonical configuration for an insertion discipline: full
    /// optimizations for [`RcStrategy::Perceus`], the plain baseline
    /// pipelines otherwise.
    pub fn for_strategy(strategy: RcStrategy) -> Self {
        match strategy {
            RcStrategy::Perceus => PassConfig::perceus(),
            RcStrategy::Scoped | RcStrategy::None => PassConfig {
                strategy,
                ..PassConfig::perceus()
                    .with_reuse(false)
                    .with_reuse_spec(false)
                    .with_drop_spec(false)
                    .with_fuse(false)
            },
        }
    }

    // ---- builder -----------------------------------------------------

    /// Enables/disables inferred borrowed parameters (§6 extension).
    pub fn with_borrow(mut self, on: bool) -> Self {
        self.borrow = on;
        self
    }

    /// Enables/disables the inliner.
    pub fn with_inline(mut self, on: bool) -> Self {
        self.inline = on;
        self
    }

    /// Sets the inliner knobs.
    pub fn with_inline_config(mut self, config: inline::InlineConfig) -> Self {
        self.inline_config = config;
        self
    }

    /// Enables/disables reuse analysis (Perceus only).
    pub fn with_reuse(mut self, on: bool) -> Self {
        self.reuse = on;
        if !on {
            self.reuse_spec = false;
        }
        self
    }

    /// Sets the reuse-analysis knobs.
    pub fn with_reuse_config(mut self, config: reuse::ReuseConfig) -> Self {
        self.reuse_config = config;
        self
    }

    /// Enables/disables reuse specialization (requires reuse analysis).
    pub fn with_reuse_spec(mut self, on: bool) -> Self {
        self.reuse_spec = on && self.reuse;
        self
    }

    /// Enables/disables drop / drop-reuse specialization.
    pub fn with_drop_spec(mut self, on: bool) -> Self {
        self.drop_spec = on;
        self
    }

    /// Enables/disables dup push-down and fusion.
    pub fn with_fuse(mut self, on: bool) -> Self {
        self.fuse = on;
        self
    }

    /// Sets when the per-stage λ¹/well-formedness checks run.
    pub fn with_validation(mut self, validation: Validation) -> Self {
        self.validation = validation;
        self
    }

    // ---- accessors ---------------------------------------------------

    /// Insertion discipline.
    pub fn strategy(&self) -> RcStrategy {
        self.strategy
    }

    /// Are borrowed parameters inferred?
    pub fn borrow(&self) -> bool {
        self.borrow
    }

    /// Does the inliner run?
    pub fn inline(&self) -> bool {
        self.inline
    }

    /// Inliner knobs.
    pub fn inline_config(&self) -> &inline::InlineConfig {
        &self.inline_config
    }

    /// Does reuse analysis run?
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// Reuse-analysis knobs.
    pub fn reuse_config(&self) -> &reuse::ReuseConfig {
        &self.reuse_config
    }

    /// Does reuse specialization run?
    pub fn reuse_spec(&self) -> bool {
        self.reuse_spec
    }

    /// Does drop specialization run?
    pub fn drop_spec(&self) -> bool {
        self.drop_spec
    }

    /// Does dup/drop fusion run?
    pub fn fuse(&self) -> bool {
        self.fuse
    }

    /// Per-stage validation level.
    pub fn validation(&self) -> Validation {
        self.validation
    }

    /// Returns a copy with one optimization toggled off — used by the
    /// ablation benchmarks.
    pub fn without(mut self, opt: Ablation) -> Self {
        match opt {
            Ablation::Reuse => {
                self.reuse = false;
                self.reuse_spec = false;
            }
            Ablation::ReuseSpec => self.reuse_spec = false,
            Ablation::DropSpec => self.drop_spec = false,
            Ablation::Fuse => self.fuse = false,
            Ablation::Inline => self.inline = false,
        }
        self
    }
}

/// Optimizations that can be individually disabled for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    Reuse,
    ReuseSpec,
    DropSpec,
    Fuse,
    Inline,
}

/// What a stage check found wrong with a pass's output.
#[derive(Debug)]
pub enum StageViolation {
    /// The output is no longer well-formed (scoping/arity bug).
    Wf(wf::WfError),
    /// The output violates the λ¹ resource discipline.
    Linear(linear::LinearError),
}

impl fmt::Display for StageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageViolation::Wf(e) => write!(f, "well-formedness: {e}"),
            StageViolation::Linear(e) => write!(f, "{e}"),
        }
    }
}

/// A per-stage validation failure: the first pass whose output broke an
/// invariant, with a counterexample minimized to the offending function.
#[derive(Debug)]
pub struct StageError {
    /// The pass whose output failed the check.
    pub pass: PassName,
    /// What was violated.
    pub violation: StageViolation,
    /// Pretty-printed counterexample: the offending function when the
    /// violation names one, otherwise the whole program.
    pub counterexample: String,
    /// Number of top-level definitions in the counterexample.
    pub counterexample_defs: usize,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass `{}` broke a pipeline invariant: {}\ncounterexample ({} def{}):\n{}",
            self.pass,
            self.violation,
            self.counterexample_defs,
            if self.counterexample_defs == 1 {
                ""
            } else {
                "s"
            },
            self.counterexample
        )
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.violation {
            StageViolation::Wf(e) => Some(e),
            StageViolation::Linear(e) => Some(e),
        }
    }
}

/// An error produced by the pipeline.
#[derive(Debug)]
pub enum PassError {
    /// Perceus insertion failed (ill-scoped input).
    Insert(insert::InsertError),
    /// The final output failed the well-formedness check (a pass bug
    /// detected by the end-of-pipeline guard when per-stage validation
    /// is off).
    Malformed(wf::WfError),
    /// A per-stage check failed: names the first offending pass.
    Stage(StageError),
}

impl PassError {
    /// The stage a validation failure is attributed to, if any.
    pub fn stage(&self) -> Option<PassName> {
        match self {
            PassError::Stage(e) => Some(e.pass),
            _ => None,
        }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Insert(e) => write!(f, "{e}"),
            PassError::Malformed(e) => write!(f, "pipeline produced ill-formed code: {e}"),
            PassError::Stage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassError::Insert(e) => Some(e),
            PassError::Malformed(e) => Some(e),
            PassError::Stage(e) => Some(e),
        }
    }
}

impl From<insert::InsertError> for PassError {
    fn from(e: insert::InsertError) -> Self {
        PassError::Insert(e)
    }
}

/// One recorded stage: the pass that ran, a snapshot of its output, and
/// how long the pass (plus its validation) took.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The pass this snapshot is the output of.
    pub pass: PassName,
    /// The program as it left the pass.
    pub program: Program,
    /// Wall time spent in the pass and its per-stage checks.
    pub elapsed: Duration,
}

/// The observable result of a staged pipeline run: one snapshot per
/// executed pass, in order. The last snapshot is the final program.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    stages: Vec<Stage>,
}

impl StageTrace {
    /// Named `(PassName, &Program)` snapshots, in execution order — the
    /// hook surface the per-pass checkers and the bench stage timers
    /// consume.
    pub fn stages(&self) -> impl Iterator<Item = (PassName, &Program)> + '_ {
        self.stages.iter().map(|s| (s.pass, &s.program))
    }

    /// Per-stage wall-clock timings, in execution order.
    pub fn timings(&self) -> impl Iterator<Item = (PassName, Duration)> + '_ {
        self.stages.iter().map(|s| (s.pass, s.elapsed))
    }

    /// Full access to the recorded stages.
    pub fn records(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of executed stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The final program (output of the last stage).
    pub fn final_program(&self) -> &Program {
        &self
            .stages
            .last()
            .expect("a pipeline always runs at least one stage")
            .program
    }

    /// Consumes the trace, returning the final program.
    pub fn into_final(mut self) -> Program {
        self.stages
            .pop()
            .expect("a pipeline always runs at least one stage")
            .program
    }
}

/// The static analysis of one pipeline stage snapshot (see
/// [`Pipeline::analyze`]).
#[derive(Debug, Clone)]
pub struct StageAnalysis {
    /// The pass whose output was analyzed.
    pub pass: PassName,
    /// Cost summaries and lints for that snapshot.
    pub analysis: crate::analysis::Analysis,
}

/// Per-stage analyses of a whole pipeline run — the diff surface for
/// lints across pass boundaries (e.g. "L2 must drop to zero after
/// fuse"). Produced by [`Pipeline::analyze`].
#[derive(Debug, Clone)]
pub struct AnalyzedStages {
    /// One record per executed stage, in pipeline order.
    pub stages: Vec<StageAnalysis>,
}

impl AnalyzedStages {
    /// The final stage's analysis (the program that ships).
    pub fn final_stage(&self) -> &StageAnalysis {
        self.stages
            .last()
            .expect("a pipeline always runs at least one stage")
    }

    /// The analysis of a particular stage, if that pass ran under the
    /// active configuration.
    pub fn stage(&self, pass: PassName) -> Option<&StageAnalysis> {
        self.stages.iter().find(|s| s.pass == pass)
    }

    /// The count of `code` lints at every stage boundary, in order.
    pub fn lint_trend(&self, code: crate::analysis::LintCode) -> Vec<(PassName, usize)> {
        self.stages
            .iter()
            .map(|s| (s.pass, s.analysis.diagnostics.count(code)))
            .collect()
    }
}

/// A mutation injected after a named pass — test instrumentation used
/// to prove that the per-stage checker attributes a broken pass to the
/// right stage (see `tests/staged_validation.rs`).
pub type StageMutation = fn(&mut Program);

/// Drives the configured passes over a program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PassConfig,
    mutation: Option<(PassName, StageMutation)>,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PassConfig) -> Self {
        Pipeline {
            config,
            mutation: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PassConfig {
        &self.config
    }

    /// Injects `mutation` into the program right after `pass` runs and
    /// *before* that pass's validation — so an intentionally broken
    /// pass is caught and attributed to `pass` by name. Intended for
    /// tests of the validation subsystem itself.
    pub fn with_mutation_after(mut self, pass: PassName, mutation: StageMutation) -> Self {
        self.mutation = Some((pass, mutation));
        self
    }

    /// Runs all passes; returns the compiled program.
    pub fn run(&self, p: Program) -> Result<Program, PassError> {
        let (p, _) = self.drive(p, false)?;
        Ok(p)
    }

    /// Runs all passes, recording a named snapshot (and timing) after
    /// every executed pass. The per-stage checks run exactly as in
    /// [`Pipeline::run`]; the trace additionally makes every stage
    /// boundary observable.
    pub fn stages(&self, p: Program) -> Result<StageTrace, PassError> {
        let (_, trace) = self.drive(p, true)?;
        Ok(trace)
    }

    /// Runs all passes and the static RC-cost analyzer
    /// ([`crate::analysis::analyze_program`]) on *every* stage snapshot,
    /// so cost summaries and lints can be compared across pass
    /// boundaries. The per-stage validation checks run exactly as in
    /// [`Pipeline::stages`].
    pub fn analyze(&self, p: Program) -> Result<AnalyzedStages, PassError> {
        let trace = self.stages(p)?;
        Ok(AnalyzedStages {
            stages: trace
                .stages()
                .map(|(pass, prog)| StageAnalysis {
                    pass,
                    analysis: crate::analysis::analyze_program(prog),
                })
                .collect(),
        })
    }

    fn drive(&self, mut p: Program, capture: bool) -> Result<(Program, StageTrace), PassError> {
        let mut trace = StageTrace::default();
        let mut stage_start = Instant::now();
        macro_rules! stage {
            ($pass:expr) => {{
                self.after_pass($pass, &mut p, capture, &mut trace, &mut stage_start)?;
            }};
        }

        normalize::normalize_program(&mut p);
        stage!(PassName::Normalize);
        if self.config.inline {
            inline::inline_program(&mut p, &self.config.inline_config);
            // Inlining splices ANF terms under fresh lets; stay in ANF.
            normalize::normalize_program(&mut p);
            stage!(PassName::Inline);
        }
        match self.config.strategy {
            RcStrategy::Perceus => {
                // Reuse analysis runs first; borrow inference then keeps
                // any parameter that reuse wants to consume owned (the
                // Lean ordering — reuse beats borrowing when both apply).
                if self.config.reuse {
                    reuse::reuse_program(&mut p, &self.config.reuse_config);
                    stage!(PassName::Reuse);
                }
                if self.config.borrow {
                    borrow::borrow_program(&mut p);
                    stage!(PassName::Borrow);
                }
                insert::insert_program(&mut p)?;
                stage!(PassName::Insert);
                if self.config.reuse_spec {
                    reuse_spec::reuse_spec_program(&mut p);
                    stage!(PassName::ReuseSpec);
                }
                if self.config.drop_spec {
                    drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
                    stage!(PassName::DropSpec);
                }
                if self.config.fuse {
                    fuse::fuse_program(&mut p);
                    stage!(PassName::Fuse);
                }
            }
            RcStrategy::Scoped => {
                scoped::scoped_program(&mut p);
                stage!(PassName::Scoped);
            }
            RcStrategy::None => {}
        }
        if !self.config.validation.active() {
            // Last-resort guard when per-stage checking is off: the
            // pre-existing end-of-pipeline well-formedness check.
            wf::check_program(&p).map_err(PassError::Malformed)?;
        }
        Ok((p, trace))
    }

    /// Bookkeeping after pass `pass` produced `p`: apply an injected
    /// test mutation, run the per-stage checks, record the snapshot.
    fn after_pass(
        &self,
        pass: PassName,
        p: &mut Program,
        capture: bool,
        trace: &mut StageTrace,
        stage_start: &mut Instant,
    ) -> Result<(), PassError> {
        if let Some((at, mutation)) = self.mutation {
            if at == pass {
                mutation(p);
            }
        }
        if self.config.validation.active() {
            validate_stage(pass, p, self.discipline_after(pass)).map_err(PassError::Stage)?;
        }
        if capture {
            trace.stages.push(Stage {
                pass,
                program: p.clone(),
                elapsed: stage_start.elapsed(),
            });
        }
        *stage_start = Instant::now();
        Ok(())
    }

    /// The λ¹ discipline a stage's output must satisfy: strict once
    /// `dup`/`drop` have been inserted (rc strategies only), otherwise
    /// the declarative one.
    fn discipline_after(&self, pass: PassName) -> Discipline {
        if pass.rc_inserted() && self.config.strategy != RcStrategy::None {
            Discipline::Strict
        } else {
            Discipline::Relaxed
        }
    }
}

/// Checks one stage's output: IR well-formedness plus the λ¹ resource
/// discipline. On failure, minimizes the counterexample to the
/// offending function.
fn validate_stage(pass: PassName, p: &Program, discipline: Discipline) -> Result<(), StageError> {
    if let Err(e) = wf::check_program(p) {
        let fun = e.fun;
        return Err(stage_error(pass, StageViolation::Wf(e), p, fun));
    }
    if let Err(e) = linear::check_program_with(p, discipline) {
        let fun = e.fun;
        return Err(stage_error(pass, StageViolation::Linear(e), p, fun));
    }
    Ok(())
}

fn stage_error(
    pass: PassName,
    violation: StageViolation,
    p: &Program,
    fun: Option<crate::ir::program::FunId>,
) -> StageError {
    let (counterexample, counterexample_defs) = match fun {
        Some(id) if (id.0 as usize) < p.funs.len() => {
            let mut s = String::new();
            let _ = pretty::write_fun(&mut s, p.fun(id), &p.types);
            (s, 1)
        }
        _ => (pretty::program_to_string(p), p.funs.len()),
    };
    StageError {
        pass,
        violation,
        counterexample,
        counterexample_defs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};
    use crate::ir::expr::Expr;
    use crate::ir::pretty::program_to_string;

    /// The paper's running example: `map` over a list.
    fn map_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let f = pb.fresh("f");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let map = pb.declare("map", vec![xs.clone(), f.clone()]);
        let cons_body = con(
            cons,
            vec![
                Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::Var(x.clone())]),
                Expr::Call(map, vec![Expr::Var(xx.clone()), Expr::Var(f.clone())]),
            ],
        );
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(cons, vec![x.clone(), xx.clone()], cons_body),
                arm0(nil, con(nil, vec![])),
            ],
            default: None,
        };
        pb.set_body(map, body);
        pb.entry(map);
        pb.finish()
    }

    #[test]
    fn full_perceus_pipeline_produces_figure_1g() {
        let p = Pipeline::new(PassConfig::perceus())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        // The fast path has no rc ops: is-unique straight to &xs.
        assert!(s.contains("is-unique(xs)"), "{s}");
        assert!(s.contains("&xs"), "{s}");
        assert!(s.contains("Cons@"), "{s}");
        // The unique branch must not contain any dup/drop before &xs.
        let unique_branch = s
            .split("if is-unique(xs) {")
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap();
        assert!(
            !unique_branch.contains("dup") && !unique_branch.contains("drop"),
            "fast path should be rc-free: {unique_branch}"
        );
    }

    #[test]
    fn no_opt_pipeline_keeps_plain_drops() {
        let p = Pipeline::new(PassConfig::perceus_no_opt())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("drop xs"), "{s}");
        assert!(!s.contains("is-unique"), "{s}");
        assert!(!s.contains("Cons@"), "{s}");
    }

    #[test]
    fn scoped_pipeline_emits_scope_drops() {
        let p = Pipeline::new(PassConfig::scoped())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("dup"), "{s}");
        assert!(s.contains("drop"), "{s}");
        assert!(!s.contains("is-unique"), "{s}");
    }

    #[test]
    fn erased_pipeline_has_no_rc_ops() {
        let p = Pipeline::new(PassConfig::erased())
            .run(map_program())
            .unwrap();
        for (_, f) in p.funs() {
            assert!(f.body.is_user_fragment(), "{}", program_to_string(&p));
        }
    }

    #[test]
    fn ablation_toggles() {
        let c = PassConfig::perceus().without(Ablation::Reuse);
        assert!(!c.reuse() && !c.reuse_spec());
        let c = PassConfig::perceus().without(Ablation::Fuse);
        assert!(!c.fuse() && c.reuse());
    }

    #[test]
    fn builder_composes() {
        let c = PassConfig::perceus()
            .with_borrow(true)
            .with_fuse(false)
            .with_validation(Validation::Full);
        assert!(c.borrow() && !c.fuse());
        assert_eq!(c.validation(), Validation::Full);
        assert_eq!(c.strategy(), RcStrategy::Perceus);
        // Turning reuse off also disables reuse specialization.
        let c = PassConfig::perceus().with_reuse(false);
        assert!(!c.reuse() && !c.reuse_spec());
        // Reuse specialization cannot be enabled without reuse.
        let c = PassConfig::perceus()
            .with_reuse(false)
            .with_reuse_spec(true);
        assert!(!c.reuse_spec());
    }

    #[test]
    fn stage_trace_names_every_executed_pass() {
        let trace = Pipeline::new(PassConfig::perceus().with_validation(Validation::Full))
            .stages(map_program())
            .unwrap();
        let names: Vec<PassName> = trace.stages().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                PassName::Normalize,
                PassName::Inline,
                PassName::Reuse,
                PassName::Insert,
                PassName::ReuseSpec,
                PassName::DropSpec,
                PassName::Fuse,
            ]
        );
        // The final snapshot is the same program `run` produces.
        let direct = Pipeline::new(PassConfig::perceus())
            .run(map_program())
            .unwrap();
        assert_eq!(
            program_to_string(trace.final_program()),
            program_to_string(&direct)
        );
        assert_eq!(trace.timings().count(), trace.len());
    }

    #[test]
    fn erased_trace_is_rc_free_at_every_stage() {
        let trace = Pipeline::new(PassConfig::erased().with_validation(Validation::Full))
            .stages(map_program())
            .unwrap();
        for (name, p) in trace.stages() {
            for (_, f) in p.funs() {
                assert!(f.body.is_user_fragment(), "rc op after {name}");
            }
        }
    }

    #[test]
    fn injected_corruption_is_attributed_to_the_right_stage() {
        // Corrupt the program right after drop-spec: grant an extra
        // ownership of the entry's first parameter that nothing drops.
        fn corrupt(p: &mut Program) {
            let entry = p.entry.unwrap();
            let f = &mut p.funs[entry.0 as usize];
            let par = f.params[0].clone();
            let body = std::mem::replace(&mut f.body, Expr::unit());
            f.body = Expr::dup(par, body);
        }
        let err = Pipeline::new(PassConfig::perceus().with_validation(Validation::Full))
            .with_mutation_after(PassName::DropSpec, corrupt)
            .run(map_program())
            .unwrap_err();
        assert_eq!(err.stage(), Some(PassName::DropSpec), "{err}");
        let PassError::Stage(stage) = err else {
            panic!("expected a stage error");
        };
        assert!(matches!(stage.violation, StageViolation::Linear(_)));
        assert!(stage.counterexample_defs <= 10);
        assert!(!stage.counterexample.is_empty());
    }

    #[test]
    fn scope_corruption_is_reported_as_wf_violation() {
        fn corrupt(p: &mut Program) {
            let entry = p.entry.unwrap();
            let ghost = p.var_gen.fresh("ghost");
            p.funs[entry.0 as usize].body = Expr::Var(ghost);
        }
        let err = Pipeline::new(PassConfig::perceus().with_validation(Validation::Full))
            .with_mutation_after(PassName::Normalize, corrupt)
            .run(map_program())
            .unwrap_err();
        assert_eq!(err.stage(), Some(PassName::Normalize), "{err}");
        let PassError::Stage(stage) = err else {
            panic!("expected a stage error");
        };
        assert!(matches!(stage.violation, StageViolation::Wf(_)));
    }
}
