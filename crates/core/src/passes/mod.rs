//! The Perceus pass pipeline.
//!
//! Pass order (paper §2, Fig. 1):
//!
//! 1. [`normalize`] — ANF, capture annotation, full binder naming.
//! 2. [`inline`] — small-function inlining (enables whole-branch reuse,
//!    §2.5's `bal-left` example).
//! 3. [`reuse`] — reuse analysis: pair matched cells with allocations
//!    (Fig. 1e).
//! 4. [`insert`] — Perceus `dup`/`drop` insertion (Fig. 8 / Fig. 1b),
//!    or [`scoped`] for the scope-tied baseline.
//! 5. [`reuse_spec`] — reuse specialization: skip unchanged field writes
//!    (§2.5).
//! 6. [`drop_spec`] — drop / drop-reuse specialization (Fig. 1c/1f).
//! 7. [`fuse`] — dup push-down and dup/drop fusion (Fig. 1d/1g).

pub mod borrow;
pub mod drop_spec;
pub mod fuse;
pub mod inline;
pub mod insert;
pub mod normalize;
pub mod reuse;
pub mod reuse_spec;
pub mod scoped;

use crate::ir::program::Program;
use crate::ir::wf;
use std::fmt;

/// Which reference-counting discipline to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcStrategy {
    /// Precise ownership-based insertion (the paper's contribution).
    Perceus,
    /// Scope-tied insertion (§2.2's `shared_ptr`/Swift baseline).
    Scoped,
    /// No reference counting at all — for the tracing-GC and arena
    /// runtime modes, which reclaim (or leak) without counts.
    None,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PassConfig {
    /// Insertion discipline.
    pub strategy: RcStrategy,
    /// Infer and use borrowed parameters (§6 extension; sacrifices the
    /// garbage-free property for fewer rc operations).
    pub borrow: bool,
    /// Run the inliner (before reuse analysis).
    pub inline: bool,
    /// Inliner knobs.
    pub inline_config: inline::InlineConfig,
    /// Run reuse analysis (Perceus only).
    pub reuse: bool,
    /// Reuse-analysis knobs.
    pub reuse_config: reuse::ReuseConfig,
    /// Run reuse specialization (requires `reuse`).
    pub reuse_spec: bool,
    /// Run drop / drop-reuse specialization.
    pub drop_spec: bool,
    /// Run dup push-down and fusion.
    pub fuse: bool,
}

impl PassConfig {
    /// Full Perceus with all optimizations — the paper's "Koka" column.
    pub fn perceus() -> Self {
        PassConfig {
            strategy: RcStrategy::Perceus,
            borrow: false,
            inline: true,
            inline_config: inline::InlineConfig::default(),
            reuse: true,
            reuse_config: reuse::ReuseConfig::default(),
            reuse_spec: true,
            drop_spec: true,
            fuse: true,
        }
    }

    /// Precise insertion only, no reuse and no specialization — the
    /// paper's "Koka, no-opt" column.
    pub fn perceus_no_opt() -> Self {
        PassConfig {
            strategy: RcStrategy::Perceus,
            borrow: false,
            inline: true,
            inline_config: inline::InlineConfig::default(),
            reuse: false,
            reuse_config: reuse::ReuseConfig::default(),
            reuse_spec: false,
            drop_spec: false,
            fuse: false,
        }
    }

    /// Full Perceus plus inferred borrowed parameters (§6 extension).
    /// Fewer rc operations, but no longer garbage-free: a caller holds
    /// borrowed values across whole calls.
    pub fn perceus_borrowing() -> Self {
        PassConfig {
            borrow: true,
            ..PassConfig::perceus()
        }
    }

    /// Scope-tied reference counting (§2.2 baseline).
    pub fn scoped() -> Self {
        PassConfig {
            strategy: RcStrategy::Scoped,
            borrow: false,
            inline: true,
            inline_config: inline::InlineConfig::default(),
            reuse: false,
            reuse_config: reuse::ReuseConfig::default(),
            reuse_spec: false,
            drop_spec: false,
            fuse: false,
        }
    }

    /// No reference counting: for the tracing-GC and arena runtimes.
    pub fn erased() -> Self {
        PassConfig {
            strategy: RcStrategy::None,
            borrow: false,
            inline: true,
            inline_config: inline::InlineConfig::default(),
            reuse: false,
            reuse_config: reuse::ReuseConfig::default(),
            reuse_spec: false,
            drop_spec: false,
            fuse: false,
        }
    }

    /// Returns a copy with one optimization toggled off — used by the
    /// ablation benchmarks.
    pub fn without(mut self, opt: Ablation) -> Self {
        match opt {
            Ablation::Reuse => {
                self.reuse = false;
                self.reuse_spec = false;
            }
            Ablation::ReuseSpec => self.reuse_spec = false,
            Ablation::DropSpec => self.drop_spec = false,
            Ablation::Fuse => self.fuse = false,
            Ablation::Inline => self.inline = false,
        }
        self
    }
}

/// Optimizations that can be individually disabled for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    Reuse,
    ReuseSpec,
    DropSpec,
    Fuse,
    Inline,
}

/// An error produced by the pipeline.
#[derive(Debug)]
pub enum PassError {
    /// Perceus insertion failed (ill-scoped input).
    Insert(insert::InsertError),
    /// The output failed the well-formedness check (a pass bug).
    Malformed(wf::WfError),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Insert(e) => write!(f, "{e}"),
            PassError::Malformed(e) => write!(f, "pipeline produced ill-formed code: {e}"),
        }
    }
}

impl std::error::Error for PassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassError::Insert(e) => Some(e),
            PassError::Malformed(e) => Some(e),
        }
    }
}

impl From<insert::InsertError> for PassError {
    fn from(e: insert::InsertError) -> Self {
        PassError::Insert(e)
    }
}

/// Drives the configured passes over a program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PassConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PassConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PassConfig {
        &self.config
    }

    /// Runs all passes; returns the compiled program.
    pub fn run(&self, mut p: Program) -> Result<Program, PassError> {
        normalize::normalize_program(&mut p);
        if self.config.inline {
            inline::inline_program(&mut p, &self.config.inline_config);
            // Inlining splices ANF terms under fresh lets; stay in ANF.
            normalize::normalize_program(&mut p);
        }
        match self.config.strategy {
            RcStrategy::Perceus => {
                // Reuse analysis runs first; borrow inference then keeps
                // any parameter that reuse wants to consume owned (the
                // Lean ordering — reuse beats borrowing when both apply).
                if self.config.reuse {
                    reuse::reuse_program(&mut p, &self.config.reuse_config);
                }
                if self.config.borrow {
                    borrow::borrow_program(&mut p);
                }
                insert::insert_program(&mut p)?;
                if self.config.reuse_spec {
                    reuse_spec::reuse_spec_program(&mut p);
                }
                if self.config.drop_spec {
                    drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
                }
                if self.config.fuse {
                    fuse::fuse_program(&mut p);
                }
            }
            RcStrategy::Scoped => {
                scoped::scoped_program(&mut p);
            }
            RcStrategy::None => {}
        }
        wf::check_program(&p).map_err(PassError::Malformed)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};
    use crate::ir::expr::Expr;
    use crate::ir::pretty::program_to_string;

    /// The paper's running example: `map` over a list.
    fn map_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let f = pb.fresh("f");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let map = pb.declare("map", vec![xs.clone(), f.clone()]);
        let cons_body = con(
            cons,
            vec![
                Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::Var(x.clone())]),
                Expr::Call(map, vec![Expr::Var(xx.clone()), Expr::Var(f.clone())]),
            ],
        );
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(cons, vec![x.clone(), xx.clone()], cons_body),
                arm0(nil, con(nil, vec![])),
            ],
            default: None,
        };
        pb.set_body(map, body);
        pb.entry(map);
        pb.finish()
    }

    #[test]
    fn full_perceus_pipeline_produces_figure_1g() {
        let p = Pipeline::new(PassConfig::perceus())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        // The fast path has no rc ops: is-unique straight to &xs.
        assert!(s.contains("is-unique(xs)"), "{s}");
        assert!(s.contains("&xs"), "{s}");
        assert!(s.contains("Cons@"), "{s}");
        // The unique branch must not contain any dup/drop before &xs.
        let unique_branch = s
            .split("if is-unique(xs) {")
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap();
        assert!(
            !unique_branch.contains("dup") && !unique_branch.contains("drop"),
            "fast path should be rc-free: {unique_branch}"
        );
    }

    #[test]
    fn no_opt_pipeline_keeps_plain_drops() {
        let p = Pipeline::new(PassConfig::perceus_no_opt())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("drop xs"), "{s}");
        assert!(!s.contains("is-unique"), "{s}");
        assert!(!s.contains("Cons@"), "{s}");
    }

    #[test]
    fn scoped_pipeline_emits_scope_drops() {
        let p = Pipeline::new(PassConfig::scoped())
            .run(map_program())
            .unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("dup"), "{s}");
        assert!(s.contains("drop"), "{s}");
        assert!(!s.contains("is-unique"), "{s}");
    }

    #[test]
    fn erased_pipeline_has_no_rc_ops() {
        let p = Pipeline::new(PassConfig::erased())
            .run(map_program())
            .unwrap();
        for (_, f) in p.funs() {
            assert!(f.body.is_user_fragment(), "{}", program_to_string(&p));
        }
    }

    #[test]
    fn ablation_toggles() {
        let c = PassConfig::perceus().without(Ablation::Reuse);
        assert!(!c.reuse && !c.reuse_spec);
        let c = PassConfig::perceus().without(Ablation::Fuse);
        assert!(!c.fuse && c.reuse);
    }
}
