//! The Perceus reference-count insertion algorithm — the syntax-directed
//! linear resource rules of Fig. 8 of the paper, generalized to n-ary
//! functions, direct calls, primitives and data constructors, and
//! (optionally) to *borrowed* parameters (§6 / the Lean convention).
//!
//! The derivation `Δ | Γ ⊢ₛ e ⇝ e′` threads a *borrowed* environment Δ
//! and an *owned* environment Γ with the invariants of the paper:
//!
//! 1. `Δ ∩ Γ = ∅`
//! 2. `Γ ⊆ fv(e)`
//! 3. `fv(e) ⊆ Δ ∪ Γ`
//!
//! The algorithm is *precise* (garbage-free): `dup`s are pushed to the
//! leaves (as late as possible) and `drop`s are emitted as early as
//! possible — immediately after a binding or at the start of a match arm.
//!
//! Match arms follow the paper's compiled form (Fig. 1b): the match
//! itself borrows the scrutinee; the generated arm code first `dup`s the
//! pattern binders that the arm actually uses, then `drop`s (or
//! `drop-reuse`s, when reuse analysis attached a token) the scrutinee,
//! then `drop`s any owned variables that are dead in this arm. This is
//! the fusion of rule (matchᵣ)'s implicit `dup ys; drop x` with rule
//! *smatch*'s arm-entry drops, which is exactly what the Koka compiler
//! emits. A match on a *borrowed* scrutinee emits neither the scrutinee
//! drop nor any dup for it — the borrower guarantees liveness.
//!
//! With borrow masks present (see [`crate::passes::borrow`]), arguments
//! in borrowed positions of a direct call are not consumed: the caller
//! retains ownership and, when the call was the last use, releases the
//! value right after the call returns.

use crate::ir::expr::{Arm, Expr, Lambda};
use crate::ir::fv::{free_vars, lambda_free_vars};
use crate::ir::program::Program;
use crate::ir::var::{Var, VarGen, VarSet};
use std::fmt;

/// An error from the insertion algorithm. These indicate ill-scoped
/// input or an internal invariant violation — a well-formed user-fragment
/// program never triggers one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertError(pub String);

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "perceus insertion: {}", self.0)
    }
}

impl std::error::Error for InsertError {}

/// Shared context for a derivation: the program's borrow masks and a
/// fresh-variable source (needed when a borrowed argument must be
/// released right after its call).
pub struct InsertCx<'a> {
    borrows: &'a [Vec<bool>],
    gen: &'a mut VarGen,
}

impl<'a> InsertCx<'a> {
    /// A context with the given borrow masks (empty slice = all owned).
    pub fn new(borrows: &'a [Vec<bool>], gen: &'a mut VarGen) -> Self {
        InsertCx { borrows, gen }
    }

    fn mask(&self, fun: crate::ir::program::FunId) -> Option<Vec<bool>> {
        self.borrows
            .get(fun.0 as usize)
            .filter(|m| m.iter().any(|b| *b))
            .cloned()
    }
}

/// Runs Perceus insertion over every function of the program, honoring
/// `program.borrows` when present.
///
/// Expects the user fragment (plus reuse-analysis annotations) in ANF;
/// produces a program whose functions contain explicit `dup`/`drop`/
/// `drop-reuse` instructions and consume their owned parameters (the
/// owned calling convention of §2.2).
pub fn insert_program(p: &mut Program) -> Result<(), InsertError> {
    let borrows = std::mem::take(&mut p.borrows);
    let mut gen = std::mem::take(&mut p.var_gen);
    let funs = std::mem::take(&mut p.funs);
    let mut out = Vec::with_capacity(funs.len());
    let mut failure = None;
    for (fi, f) in funs.into_iter().enumerate() {
        if failure.is_some() {
            out.push(f);
            continue;
        }
        let mask = borrows.get(fi).cloned().unwrap_or_default();
        let fv = free_vars(&f.body);
        let mut owned = VarSet::new();
        let mut delta = VarSet::new();
        let mut dead = Vec::new();
        for (pi, par) in f.params.iter().enumerate() {
            let borrowed = mask.get(pi).copied().unwrap_or(false);
            if borrowed {
                delta.insert(par.clone());
            } else if fv.contains(par) {
                owned.insert(par.clone());
            } else {
                dead.push(par.clone());
            }
        }
        let mut cx = InsertCx::new(&borrows, &mut gen);
        match infer(&mut cx, &delta, owned, f.body) {
            Ok(body) => {
                // Unused owned parameters are dropped on entry
                // (slam-drop); borrowed parameters are never dropped.
                let body = Expr::drop_all(dead, body);
                out.push(crate::ir::program::FunDef {
                    name: f.name,
                    params: f.params,
                    body,
                });
            }
            Err(e) => failure = Some(e),
        }
    }
    p.funs = out;
    p.var_gen = gen;
    p.borrows = borrows;
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The derivation `Δ | Γ ⊢ₛ e ⇝ e′`.
///
/// Exposed for tests and for the examples that reproduce the paper's
/// Fig. 1 step by step.
pub fn infer(
    cx: &mut InsertCx<'_>,
    delta: &VarSet,
    gamma: VarSet,
    e: Expr,
) -> Result<Expr, InsertError> {
    debug_assert!(
        delta.intersect(&gamma).is_empty(),
        "Δ ∩ Γ must be empty: Δ={delta:?} Γ={gamma:?}"
    );
    match e {
        // [svar] / [svar-dup]
        Expr::Var(x) => {
            if gamma.contains(&x) && gamma.len() == 1 {
                Ok(Expr::Var(x))
            } else if gamma.is_empty() && delta.contains(&x) {
                Ok(Expr::dup(x.clone(), Expr::Var(x)))
            } else {
                Err(InsertError(format!(
                    "variable {x:?} not exactly owned (Γ={gamma:?}) nor borrowed (Δ={delta:?})"
                )))
            }
        }
        Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) | Expr::NullToken => {
            expect_empty(&gamma, "literal")?;
            Ok(e)
        }
        Expr::TokenOf(_) | Expr::IsUnique { .. } | Expr::Free(..) | Expr::DecRef(..) => Err(
            InsertError("specialized instruction in insertion input".into()),
        ),
        Expr::Dup(..) | Expr::Drop(..) | Expr::DropReuse { .. } => Err(InsertError(
            "reference-count instruction in insertion input".into(),
        )),
        // Reuse analysis runs before insertion and releases unused tokens
        // with drop-token; the token is a linear resource consumed here.
        Expr::DropToken(t, rest) => {
            let mut gamma = gamma;
            if !gamma.remove(&t) {
                return Err(InsertError(format!("token {t:?} not owned at drop-token")));
            }
            Ok(Expr::DropToken(
                t,
                Box::new(infer(cx, delta, gamma, *rest)?),
            ))
        }

        // [sapp] generalized: callee first, then arguments left to right.
        Expr::App(f, args) => {
            let mut exprs = Vec::with_capacity(args.len() + 1);
            exprs.push(*f);
            exprs.extend(args);
            let exprs = infer_sequence(cx, delta, &gamma, exprs)?;
            let (dups, mut exprs) = hoist_atom_dups(exprs);
            let f = exprs.remove(0);
            Ok(Expr::dup_all(dups, Expr::App(Box::new(f), exprs)))
        }
        Expr::Call(id, args) => {
            if let Some(mask) = cx.mask(id) {
                return infer_borrowing_call(cx, delta, gamma, id, args, mask);
            }
            let args = infer_sequence(cx, delta, &gamma, args)?;
            let (dups, args) = hoist_atom_dups(args);
            Ok(Expr::dup_all(dups, Expr::Call(id, args)))
        }
        Expr::Prim(op, args) => {
            let args = infer_sequence(cx, delta, &gamma, args)?;
            let (dups, args) = hoist_atom_dups(args);
            Ok(Expr::dup_all(dups, Expr::Prim(op, args)))
        }
        // [scon]; a reuse token is consumed by the allocation itself.
        Expr::Con {
            ctor,
            args,
            reuse,
            skip,
        } => {
            let mut gamma = gamma;
            if let Some(t) = &reuse {
                if !gamma.remove(t) {
                    return Err(InsertError(format!(
                        "reuse token {t:?} not owned at constructor"
                    )));
                }
            }
            let args = infer_sequence(cx, delta, &gamma, args)?;
            let (dups, args) = hoist_atom_dups(args);
            Ok(Expr::dup_all(
                dups,
                Expr::Con {
                    ctor,
                    args,
                    reuse,
                    skip,
                },
            ))
        }

        // [slam] / [slam-drop]
        Expr::Lam(lam) => {
            let ys: VarSet = lambda_free_vars(&lam).iter().cloned().collect();
            // Invariant (2) gives Γ ⊆ ys; the rest must be borrowed and
            // gets dup'd to take ownership for the closure (Δ₁ = ys − Γ).
            if !gamma.difference(&ys).is_empty() {
                return Err(InsertError(format!(
                    "lambda owns {gamma:?} beyond its free variables {ys:?}"
                )));
            }
            let dup_first = ys.difference(&gamma);
            for d in dup_first.iter() {
                if !delta.contains(d) {
                    return Err(InsertError(format!(
                        "lambda capture {d:?} neither owned nor borrowed"
                    )));
                }
            }
            let body_fv = free_vars(&lam.body);
            let mut body_owned = VarSet::new();
            let mut dead = Vec::new();
            for v in ys.iter().chain(lam.params.iter()) {
                if body_fv.contains(v) {
                    body_owned.insert(v.clone());
                } else {
                    dead.push(v.clone());
                }
            }
            let body = infer(cx, &VarSet::new(), body_owned, *lam.body)?;
            let body = Expr::drop_all(dead, body);
            let out = Expr::Lam(Lambda {
                params: lam.params,
                captures: ys.clone().into_vec(),
                body: Box::new(body),
            });
            Ok(Expr::dup_all(dup_first.into_vec(), out))
        }

        // [sbind] / [sbind-drop]
        Expr::Let { var, rhs, body } => {
            let body_fv = free_vars(&body);
            let gamma2 = gamma.intersect(&body_fv); // Γ ∩ (fv(e₂) − x): x ∉ Γ
            let gamma1 = gamma.difference(&gamma2);
            let delta1 = delta.union(&gamma2);
            let rhs = infer(cx, &delta1, gamma1, *rhs)?;
            let body = if body_fv.contains(&var) {
                let mut owned = gamma2;
                owned.insert(var.clone());
                infer(cx, delta, owned, *body)?
            } else {
                Expr::drop_(var.clone(), infer(cx, delta, gamma2, *body)?)
            };
            Ok(Expr::let_(var, rhs, body))
        }
        Expr::Seq(a, b) => {
            // Like sbind with an anonymous unit binding (never dropped:
            // unit is a value type).
            let b_fv = free_vars(&b);
            let gamma2 = gamma.intersect(&b_fv);
            let gamma1 = gamma.difference(&gamma2);
            let delta1 = delta.union(&gamma2);
            let a = infer(cx, &delta1, gamma1, *a)?;
            let b = infer(cx, delta, gamma2, *b)?;
            Ok(Expr::seq(a, b))
        }

        // [smatch] in the compiled form of Fig. 1b.
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            if !gamma.contains(&scrutinee) {
                if !delta.contains(&scrutinee) {
                    return Err(InsertError(format!(
                        "scrutinee {scrutinee:?} neither owned nor borrowed"
                    )));
                }
                // Borrowed scrutinee. Without reuse tokens, the arms can
                // simply borrow it too: no dup, no arm drop — this is
                // what makes a borrowed `is-red(t)` entirely rc-free.
                if arms.iter().all(|a| a.reuse_token.is_none()) {
                    let mut out_arms = Vec::with_capacity(arms.len());
                    for arm in arms {
                        out_arms.push(infer_arm(
                            cx,
                            delta,
                            &gamma,
                            &scrutinee,
                            arm,
                            ScrutineeMode::Borrowed,
                        )?);
                    }
                    let default = match default {
                        Some(d) => Some(Box::new(infer_default(
                            cx,
                            delta,
                            &gamma,
                            &scrutinee,
                            *d,
                            ScrutineeMode::Borrowed,
                        )?)),
                        None => None,
                    };
                    return Ok(Expr::Match {
                        scrutinee,
                        arms: out_arms,
                        default,
                    });
                }
                // Reuse tokens require consumption: take ownership first
                // (svar-dup).
                let mut gamma = gamma;
                gamma.insert(scrutinee.clone());
                let delta = delta.difference(&std::iter::once(scrutinee.clone()).collect());
                let inner = infer(
                    cx,
                    &delta,
                    gamma,
                    Expr::Match {
                        scrutinee: scrutinee.clone(),
                        arms,
                        default,
                    },
                )?;
                return Ok(Expr::dup(scrutinee, inner));
            }
            let gamma_rest = {
                let mut g = gamma.clone();
                g.remove(&scrutinee);
                g
            };
            let mut out_arms = Vec::with_capacity(arms.len());
            for arm in arms {
                out_arms.push(infer_arm(
                    cx,
                    delta,
                    &gamma_rest,
                    &scrutinee,
                    arm,
                    ScrutineeMode::Owned,
                )?);
            }
            let default = match default {
                Some(d) => Some(Box::new(infer_default(
                    cx,
                    delta,
                    &gamma_rest,
                    &scrutinee,
                    *d,
                    ScrutineeMode::Owned,
                )?)),
                None => None,
            };
            Ok(Expr::Match {
                scrutinee,
                arms: out_arms,
                default,
            })
        }
    }
}

/// Whether the match owns its scrutinee (and must consume it per arm)
/// or merely borrows it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ScrutineeMode {
    Owned,
    Borrowed,
}

/// Hoists `dup x; x` argument atoms (produced by [svar-dup]) out of
/// argument positions, so that application nodes stay in ANF. Sound
/// because the remaining arguments are effect-free atoms: the `dup`s
/// commute with them and happen in the same order, just earlier.
fn hoist_atom_dups(exprs: Vec<Expr>) -> (Vec<Var>, Vec<Expr>) {
    let mut dups = Vec::new();
    let out = exprs
        .into_iter()
        .map(|e| match e {
            Expr::Dup(x, inner) if inner.is_atom() => {
                dups.push(x);
                *inner
            }
            other => other,
        })
        .collect();
    (dups, out)
}

/// Splits Γ over a sequence of expressions evaluated left to right and
/// derives each. Variable `γ ∈ Γ` is owned by the **last** expression
/// whose free variables contain it; earlier expressions borrow it
/// ([sapp]'s `Γ₂ = Γ ∩ fv(e₂)` generalized).
fn infer_sequence(
    cx: &mut InsertCx<'_>,
    delta: &VarSet,
    gamma: &VarSet,
    exprs: Vec<Expr>,
) -> Result<Vec<Expr>, InsertError> {
    let fvs: Vec<VarSet> = exprs.iter().map(free_vars).collect();
    let mut remaining = gamma.clone();
    let mut owned: Vec<VarSet> = vec![VarSet::new(); exprs.len()];
    for i in (0..exprs.len()).rev() {
        let part = remaining.intersect(&fvs[i]);
        remaining = remaining.difference(&part);
        owned[i] = part;
    }
    if !remaining.is_empty() {
        return Err(InsertError(format!(
            "owned variables {remaining:?} unused in application"
        )));
    }
    let mut out = Vec::with_capacity(exprs.len());
    for (i, e) in exprs.into_iter().enumerate() {
        // Everything owned by later components is surely alive while this
        // component evaluates, so it may be borrowed here.
        let mut d = delta.clone();
        for later in owned.iter().skip(i + 1) {
            d = d.union(later);
        }
        out.push(infer(cx, &d, owned[i].clone(), e)?);
    }
    Ok(out)
}

/// A direct call with a borrow mask: arguments in borrowed positions
/// are not consumed. A variable whose *last* use is such a position is
/// released immediately after the call returns — the closest a caller
/// can get to garbage-free under borrowing (§6).
fn infer_borrowing_call(
    cx: &mut InsertCx<'_>,
    delta: &VarSet,
    gamma: VarSet,
    id: crate::ir::program::FunId,
    args: Vec<Expr>,
    mask: Vec<bool>,
) -> Result<Expr, InsertError> {
    let is_borrowed = |i: usize| mask.get(i).copied().unwrap_or(false);
    // Split Γ over *owned* positions only (right-to-left, as usual).
    let fvs: Vec<VarSet> = args
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if is_borrowed(i) {
                VarSet::new()
            } else {
                free_vars(a)
            }
        })
        .collect();
    let mut remaining = gamma.clone();
    let mut owned: Vec<VarSet> = vec![VarSet::new(); args.len()];
    for i in (0..args.len()).rev() {
        let part = remaining.intersect(&fvs[i]);
        remaining = remaining.difference(&part);
        owned[i] = part;
    }
    // Leftovers must occur in a borrowed position — they are released
    // right after the call.
    let mut release_after = Vec::new();
    for x in remaining.iter() {
        let used = args
            .iter()
            .enumerate()
            .any(|(i, a)| is_borrowed(i) && free_vars(a).contains(x));
        if !used {
            return Err(InsertError(format!(
                "owned variable {x:?} unused in borrowing call"
            )));
        }
        release_after.push(x.clone());
    }
    let mut out_args = Vec::with_capacity(args.len());
    for (i, a) in args.into_iter().enumerate() {
        if is_borrowed(i) {
            // Borrowed positions take atoms verbatim: no dup, no
            // consumption. Aliveness: the variable is borrowed here, in
            // a later owned split, or in the release set — all alive
            // through the call.
            if !a.is_atom() {
                return Err(InsertError(
                    "non-atomic argument in borrowed position (not in ANF)".into(),
                ));
            }
            if let Expr::Var(v) = &a {
                let alive =
                    delta.contains(v) || gamma.contains(v) || owned.iter().any(|o| o.contains(v));
                if !alive {
                    return Err(InsertError(format!(
                        "borrowed argument {v:?} is not alive at the call"
                    )));
                }
            }
            out_args.push(a);
        } else {
            let mut d = delta.clone();
            for later in owned.iter().skip(i + 1) {
                d = d.union(later);
            }
            for r in &release_after {
                d.insert(r.clone());
            }
            out_args.push(infer(cx, &d, owned[i].clone(), a)?);
        }
    }
    let (dups, out_args) = hoist_atom_dups(out_args);
    let call = Expr::dup_all(dups, Expr::Call(id, out_args));
    if release_after.is_empty() {
        Ok(call)
    } else {
        // val r = f(…); drop x…; r
        let r = cx.gen.fresh("_r");
        Ok(Expr::let_(
            r.clone(),
            call,
            Expr::drop_all(release_after, Expr::Var(r)),
        ))
    }
}

/// Derives one match arm (Fig. 1b form; see module docs).
fn infer_arm(
    cx: &mut InsertCx<'_>,
    delta: &VarSet,
    gamma_rest: &VarSet,
    scrutinee: &Var,
    arm: Arm,
    mode: ScrutineeMode,
) -> Result<Arm, InsertError> {
    let body_fv = free_vars(&arm.body);
    let binders: Vec<Var> = arm.binders.iter().flatten().cloned().collect();
    let scrut_live = body_fv.contains(scrutinee);
    if arm.reuse_token.is_some() && (scrut_live || mode == ScrutineeMode::Borrowed) {
        return Err(InsertError(format!(
            "reuse token on arm that cannot consume scrutinee {scrutinee:?}"
        )));
    }

    if mode == ScrutineeMode::Borrowed {
        // The cell is pinned for the whole derivation, so its fields can
        // be borrowed too: no entry dups, no scrutinee drop. Uses that
        // consume a binder dup at the use site (svar-dup).
        let owned = gamma_rest.intersect(&body_fv);
        let mut arm_delta = delta.clone();
        for b in &binders {
            arm_delta.insert(b.clone());
        }
        let dead: Vec<Var> = gamma_rest.difference(&body_fv).into_vec();
        let body = infer(cx, &arm_delta, owned, arm.body)?;
        let body = Expr::drop_all(dead, body);
        return Ok(Arm {
            ctor: arm.ctor,
            binders: arm.binders,
            reuse_token: None,
            body,
        });
    }

    let used_binders: Vec<Var> = binders
        .iter()
        .filter(|b| body_fv.contains(b))
        .cloned()
        .collect();
    // Owned environment for the body.
    let mut owned = gamma_rest.intersect(&body_fv);
    for b in &used_binders {
        owned.insert(b.clone());
    }
    if scrut_live {
        owned.insert(scrutinee.clone());
    }
    if let Some(t) = &arm.reuse_token {
        owned.insert(t.clone());
    }

    let dead: Vec<Var> = gamma_rest.difference(&body_fv).into_vec();
    let mut body = infer(cx, delta, owned, arm.body)?;
    // Emission order (innermost-out): dead drops, scrutinee consumption,
    // binder dups — so the generated code reads: dups; drop scrutinee;
    // drop dead; body.
    body = Expr::drop_all(dead, body);
    if !scrut_live {
        body = match &arm.reuse_token {
            Some(t) => Expr::DropReuse {
                var: scrutinee.clone(),
                token: t.clone(),
                body: Box::new(body),
            },
            None => Expr::drop_(scrutinee.clone(), body),
        };
    }
    body = Expr::dup_all(used_binders, body);
    Ok(Arm {
        ctor: arm.ctor,
        binders: arm.binders,
        reuse_token: None, // consumed: the DropReuse instruction carries it
        body,
    })
}

/// Derives the default arm of a match (no binders, no reuse).
fn infer_default(
    cx: &mut InsertCx<'_>,
    delta: &VarSet,
    gamma_rest: &VarSet,
    scrutinee: &Var,
    body: Expr,
    mode: ScrutineeMode,
) -> Result<Expr, InsertError> {
    let body_fv = free_vars(&body);
    let scrut_live = body_fv.contains(scrutinee);
    let mut owned = gamma_rest.intersect(&body_fv);
    if scrut_live && mode == ScrutineeMode::Owned {
        owned.insert(scrutinee.clone());
    }
    let dead: Vec<Var> = gamma_rest.difference(&body_fv).into_vec();
    let mut out = infer(cx, delta, owned, body)?;
    out = Expr::drop_all(dead, out);
    if !scrut_live && mode == ScrutineeMode::Owned {
        out = Expr::drop_(scrutinee.clone(), out);
    }
    Ok(out)
}

fn expect_empty(gamma: &VarSet, what: &str) -> Result<(), InsertError> {
    if gamma.is_empty() {
        Ok(())
    } else {
        Err(InsertError(format!(
            "owned variables {gamma:?} unused at {what}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::erase::erase;
    use crate::ir::expr::PrimOp;
    use crate::ir::pretty::expr_to_string;
    use crate::ir::program::TypeTable;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    fn owned(vars: &[&Var]) -> VarSet {
        vars.iter().map(|v| (*v).clone()).collect()
    }

    /// Runs `infer` with no borrow masks (the default convention).
    fn infer0(delta: &VarSet, gamma: VarSet, e: Expr) -> Result<Expr, InsertError> {
        let mut gen = VarGen::starting_at(10_000);
        let mut cx = InsertCx::new(&[], &mut gen);
        infer(&mut cx, delta, gamma, e)
    }

    #[test]
    fn k_combinator_drops_unused() {
        // λx y. x  ⇒  body of the lambda drops y
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Expr::Lam(Lambda {
            params: vec![x.clone(), y.clone()],
            captures: vec![],
            body: Box::new(Expr::Var(x.clone())),
        });
        let out = infer0(&VarSet::new(), VarSet::new(), lam).unwrap();
        match out {
            Expr::Lam(l) => assert_eq!(*l.body, Expr::drop_(y, Expr::Var(x))),
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_use_dups_at_leaf() {
        // x + x with x owned: the dup for the first (borrowing) use is
        // hoisted in front of the application to keep it in ANF.
        let x = v(0, "x");
        let e = Expr::Prim(
            PrimOp::Add,
            vec![Expr::Var(x.clone()), Expr::Var(x.clone())],
        );
        let out = infer0(&VarSet::new(), owned(&[&x]), e).unwrap();
        assert_eq!(
            out,
            Expr::dup(
                x.clone(),
                Expr::Prim(
                    PrimOp::Add,
                    vec![Expr::Var(x.clone()), Expr::Var(x.clone())]
                )
            )
        );
    }

    #[test]
    fn borrowed_variable_gets_dup() {
        let x = v(0, "x");
        let delta = owned(&[&x]);
        let out = infer0(&delta, VarSet::new(), Expr::Var(x.clone())).unwrap();
        assert_eq!(out, Expr::dup(x.clone(), Expr::Var(x)));
    }

    #[test]
    fn unused_let_binding_dropped_immediately() {
        // val y = x; 42  ⇒  val y = x; drop y; 42
        let x = v(0, "x");
        let y = v(1, "y");
        let e = Expr::let_(y.clone(), Expr::Var(x.clone()), Expr::int(42));
        let out = infer0(&VarSet::new(), owned(&[&x]), e).unwrap();
        assert_eq!(
            out,
            Expr::let_(y.clone(), Expr::Var(x), Expr::drop_(y, Expr::int(42)))
        );
    }

    #[test]
    fn map_cons_arm_matches_figure_1b() {
        // The running example of the paper (Fig. 1b): in the Cons arm the
        // generated code is dup x; dup xx; drop xs; Cons(dup(f)(x), map(xx,f)).
        let mut types = TypeTable::new();
        let list = types.add_data("list");
        let nil = types.add_ctor_arity(list, "Nil", 0);
        let cons = types.add_ctor_arity(list, "Cons", 2);
        let map = crate::ir::program::FunId(0);

        let xs = v(0, "xs");
        let f = v(1, "f");
        let x = v(2, "x");
        let xx = v(3, "xx");
        let y = v(4, "y");
        let ys = v(5, "ys");
        // Cons arm body (ANF): val y = f(x); val ys = map(xx, f); Cons(y, ys)
        let cons_body = Expr::let_(
            y.clone(),
            Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::Var(x.clone())]),
            Expr::let_(
                ys.clone(),
                Expr::Call(map, vec![Expr::Var(xx.clone()), Expr::Var(f.clone())]),
                Expr::Con {
                    ctor: cons,
                    args: vec![Expr::Var(y.clone()), Expr::Var(ys.clone())],
                    reuse: None,
                    skip: vec![],
                },
            ),
        );
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                Arm {
                    ctor: cons,
                    binders: vec![Some(x.clone()), Some(xx.clone())],
                    reuse_token: None,
                    body: cons_body,
                },
                Arm {
                    ctor: nil,
                    binders: vec![],
                    reuse_token: None,
                    body: Expr::Con {
                        ctor: nil,
                        args: vec![],
                        reuse: None,
                        skip: vec![],
                    },
                },
            ],
            default: None,
        };
        let out = infer0(&VarSet::new(), owned(&[&xs, &f]), body.clone()).unwrap();
        let printed = expr_to_string(&out, &types);
        // Cons arm: dup x; dup xx; drop xs — then f is dup'd at its first
        // use because it is borrowed there (used again by the map call).
        let cons_arm = printed
            .split("Cons(x, xx)")
            .nth(1)
            .expect("cons arm printed");
        let dup_x = cons_arm.find("dup x").expect("dup x");
        let dup_xx = cons_arm.find("dup xx").expect("dup xx");
        let drop_xs = cons_arm.find("drop xs").expect("drop xs");
        let dup_f = cons_arm.find("dup f").expect("dup f");
        assert!(
            dup_x < dup_xx && dup_xx < drop_xs && drop_xs < dup_f,
            "{printed}"
        );
        // Nil arm drops both the scrutinee and the dead f.
        let nil_arm = cons_arm.split("Nil ->").nth(1).expect("nil arm");
        assert!(nil_arm.contains("drop xs"), "{printed}");
        assert!(nil_arm.contains("drop f"), "{printed}");
        // Lemma 1: erasing recovers the input.
        assert_eq!(erase(out), body);
    }

    #[test]
    fn rejects_rc_instructions_in_input() {
        let x = v(0, "x");
        let e = Expr::dup(x.clone(), Expr::Var(x.clone()));
        assert!(infer0(&VarSet::new(), owned(&[&x]), e).is_err());
    }

    #[test]
    fn lambda_captures_consume_ownership() {
        // With x owned, λy. x + y consumes x into the closure: no dup.
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Expr::Lam(Lambda {
            params: vec![y.clone()],
            captures: vec![x.clone()],
            body: Box::new(Expr::Prim(
                PrimOp::Add,
                vec![Expr::Var(x.clone()), Expr::Var(y.clone())],
            )),
        });
        let out = infer0(&VarSet::new(), owned(&[&x]), lam.clone()).unwrap();
        assert!(matches!(out, Expr::Lam(_)), "no dup expected: {out:?}");
        // With x merely borrowed, the closure must dup it first.
        let out = infer0(&owned(&[&x]), VarSet::new(), lam).unwrap();
        assert!(matches!(out, Expr::Dup(ref d, _) if *d == x), "{out:?}");
    }

    #[test]
    fn borrowed_match_emits_no_scrutinee_rc_ops() {
        // match t (borrowed) { C(a) -> 1; N -> 0 } — no dup t, no drop t.
        let mut types = TypeTable::new();
        let d = types.add_data("t");
        let n0 = types.add_ctor_arity(d, "N", 0);
        let c1 = types.add_ctor_arity(d, "C", 1);
        let t = v(0, "t");
        let a = v(1, "a");
        let e = Expr::Match {
            scrutinee: t.clone(),
            arms: vec![
                Arm {
                    ctor: c1,
                    binders: vec![Some(a.clone())],
                    reuse_token: None,
                    body: Expr::int(1),
                },
                Arm {
                    ctor: n0,
                    binders: vec![],
                    reuse_token: None,
                    body: Expr::int(0),
                },
            ],
            default: None,
        };
        let out = infer0(&owned(&[&t]), VarSet::new(), e).unwrap();
        let s = expr_to_string(&out, &types);
        assert!(!s.contains("dup"), "{s}");
        assert!(!s.contains("drop"), "{s}");
    }

    #[test]
    fn borrowing_call_releases_last_use_after_call() {
        // fun g(borrowed q) …; with x owned and dead after: the caller
        // emits  val r = g(x); drop x; r.
        let x = v(1, "x");
        let g = crate::ir::program::FunId(0);
        let borrows = vec![vec![true]];
        let mut gen = VarGen::starting_at(100);
        let mut cx = InsertCx::new(&borrows, &mut gen);
        let e = Expr::Call(g, vec![Expr::Var(x.clone())]);
        let out = infer(&mut cx, &VarSet::new(), owned(&[&x]), e).unwrap();
        match out {
            Expr::Let { rhs, body, .. } => {
                assert!(matches!(*rhs, Expr::Call(..)));
                assert!(matches!(*body, Expr::Drop(ref d, _) if *d == x), "{body:?}");
            }
            other => panic!("expected release-after-call wrapper, got {other:?}"),
        }
    }

    #[test]
    fn borrowing_call_with_later_use_adds_nothing() {
        // x used again after the borrowed call: no dup for the call, no
        // release — the later use consumes.
        let x = v(1, "x");
        let r = v(2, "r");
        let g = crate::ir::program::FunId(0);
        let borrows = vec![vec![true]];
        let mut gen = VarGen::starting_at(100);
        let mut cx = InsertCx::new(&borrows, &mut gen);
        let e = Expr::let_(
            r.clone(),
            Expr::Call(g, vec![Expr::Var(x.clone())]),
            Expr::Var(x.clone()),
        );
        let out = infer(&mut cx, &VarSet::new(), owned(&[&x]), e).unwrap();
        let types = TypeTable::new();
        let s = expr_to_string(&out, &types);
        assert!(!s.contains("dup x"), "{s}");
        assert!(s.contains("drop r"), "unused result dropped: {s}");
    }

    #[test]
    fn owned_positions_in_borrowing_call_still_split() {
        // g(borrowed a, owned b): b consumed by the call, a borrowed and
        // dead after → release-after wrapper for a only.
        let a = v(1, "a");
        let b = v(2, "b");
        let g = crate::ir::program::FunId(0);
        let borrows = vec![vec![true, false]];
        let mut gen = VarGen::starting_at(100);
        let mut cx = InsertCx::new(&borrows, &mut gen);
        let e = Expr::Call(g, vec![Expr::Var(a.clone()), Expr::Var(b.clone())]);
        let out = infer(&mut cx, &VarSet::new(), owned(&[&a, &b]), e).unwrap();
        let types = TypeTable::new();
        let s = expr_to_string(&out, &types);
        assert!(s.contains("drop a"), "{s}");
        assert!(!s.contains("drop b"), "{s}");
        assert!(!s.contains("dup"), "{s}");
    }
}
