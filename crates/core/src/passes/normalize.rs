//! A-normalization and capture annotation.
//!
//! The Perceus rules (Fig. 8) and the abstract machine both assume a
//! program in *administrative normal form*: every argument position (of
//! applications, direct calls, primitives and constructors) holds an
//! atom — a variable, literal or global — and every lambda carries its
//! exact free-variable set as its capture list. This pass establishes
//! that form, and additionally:
//!
//! * names every match-arm field with a fresh binder when the source used
//!   a wildcard, so that drop specialization (Fig. 1c) can transfer or
//!   drop each child explicitly; and
//! * propagates variable-to-variable `val` bindings (copy propagation),
//!   which keeps the ownership environments of the Perceus rules free of
//!   aliases.

use crate::ir::expr::{Arm, Expr, Lambda};
use crate::ir::fv::lambda_free_vars;
use crate::ir::program::Program;
use crate::ir::var::{Var, VarGen};
use std::collections::HashMap;

/// Normalizes every function of the program in place.
pub fn normalize_program(p: &mut Program) {
    let mut gen = std::mem::take(&mut p.var_gen);
    for f in &mut p.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = Normalizer { gen: &mut gen }.expr(body, &mut HashMap::new());
    }
    p.var_gen = gen;
}

/// Normalizes a single expression (used by unit tests).
pub fn normalize_expr(e: Expr, gen: &mut VarGen) -> Expr {
    Normalizer { gen }.expr(e, &mut HashMap::new())
}

struct Normalizer<'a> {
    gen: &'a mut VarGen,
}

type Subst = HashMap<Var, Var>;

impl<'a> Normalizer<'a> {
    /// Normalizes `e` under the copy-propagation substitution `sub`.
    fn expr(&mut self, e: Expr, sub: &mut Subst) -> Expr {
        match e {
            Expr::Var(v) => Expr::Var(resolve(&v, sub)),
            Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) | Expr::NullToken => e,
            Expr::TokenOf(v) => Expr::TokenOf(resolve(&v, sub)),
            Expr::App(f, args) => {
                let mut binds = Vec::new();
                let f = self.atomize(*f, sub, &mut binds);
                let args = args
                    .into_iter()
                    .map(|a| self.atomize(a, sub, &mut binds))
                    .collect();
                wrap(binds, Expr::App(Box::new(f), args))
            }
            Expr::Call(id, args) => {
                let mut binds = Vec::new();
                let args = args
                    .into_iter()
                    .map(|a| self.atomize(a, sub, &mut binds))
                    .collect();
                wrap(binds, Expr::Call(id, args))
            }
            Expr::Prim(op, args) => {
                let mut binds = Vec::new();
                let args = args
                    .into_iter()
                    .map(|a| self.atomize(a, sub, &mut binds))
                    .collect();
                wrap(binds, Expr::Prim(op, args))
            }
            Expr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => {
                let mut binds = Vec::new();
                let args = args
                    .into_iter()
                    .map(|a| self.atomize(a, sub, &mut binds))
                    .collect();
                let reuse = reuse.map(|t| resolve(&t, sub));
                wrap(
                    binds,
                    Expr::Con {
                        ctor,
                        args,
                        reuse,
                        skip,
                    },
                )
            }
            Expr::Lam(lam) => Expr::Lam(self.lambda(lam, sub)),
            Expr::Let { var, rhs, body } => {
                let rhs = self.expr(*rhs, sub);
                if let Expr::Var(alias) = &rhs {
                    // Copy propagation: val x = y; e  ⇒  e[x := y]
                    sub.insert(var, alias.clone());
                    let body = self.expr(*body, sub);
                    return body;
                }
                let body = self.expr(*body, sub);
                Expr::let_(var, rhs, body)
            }
            Expr::Seq(a, b) => {
                let a = self.expr(*a, sub);
                let b = self.expr(*b, sub);
                // Drop trivially pure statements.
                if a.is_atom() {
                    b
                } else {
                    Expr::seq(a, b)
                }
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                let scrutinee = resolve(&scrutinee, sub);
                let arms = arms.into_iter().map(|arm| self.arm(arm, sub)).collect();
                let default = default.map(|d| Box::new(self.expr(*d, sub)));
                Expr::Match {
                    scrutinee,
                    arms,
                    default,
                }
            }
            Expr::Dup(v, rest) => Expr::dup(resolve(&v, sub), self.expr(*rest, sub)),
            Expr::Drop(v, rest) => Expr::drop_(resolve(&v, sub), self.expr(*rest, sub)),
            Expr::Free(v, rest) => Expr::Free(resolve(&v, sub), Box::new(self.expr(*rest, sub))),
            Expr::DecRef(v, rest) => {
                Expr::DecRef(resolve(&v, sub), Box::new(self.expr(*rest, sub)))
            }
            Expr::DropToken(v, rest) => {
                Expr::DropToken(resolve(&v, sub), Box::new(self.expr(*rest, sub)))
            }
            Expr::DropReuse { var, token, body } => Expr::DropReuse {
                var: resolve(&var, sub),
                token,
                body: Box::new(self.expr(*body, sub)),
            },
            Expr::IsUnique {
                var,
                binders,
                unique,
                shared,
            } => Expr::IsUnique {
                var: resolve(&var, sub),
                binders: binders.iter().map(|b| resolve(b, sub)).collect(),
                unique: Box::new(self.expr(*unique, sub)),
                shared: Box::new(self.expr(*shared, sub)),
            },
        }
    }

    fn arm(&mut self, arm: Arm, sub: &mut Subst) -> Arm {
        // Name every wildcard field so later passes can address children.
        let binders = arm
            .binders
            .into_iter()
            .map(|b| Some(b.unwrap_or_else(|| self.gen.fresh("_w"))))
            .collect();
        Arm {
            ctor: arm.ctor,
            binders,
            reuse_token: arm.reuse_token,
            body: self.expr(arm.body, sub),
        }
    }

    fn lambda(&mut self, lam: Lambda, sub: &mut Subst) -> Lambda {
        let body = self.expr(*lam.body, sub);
        let mut out = Lambda {
            params: lam.params,
            captures: Vec::new(),
            body: Box::new(body),
        };
        out.captures = lambda_free_vars(&out).into_vec();
        out
    }

    /// Normalizes `e` to an atom, hoisting a binding when necessary.
    fn atomize(&mut self, e: Expr, sub: &mut Subst, binds: &mut Vec<(Var, Expr)>) -> Expr {
        let e = self.expr(e, sub);
        if e.is_atom() {
            e
        } else {
            let tmp = self.gen.fresh("_t");
            binds.push((tmp.clone(), e));
            Expr::Var(tmp)
        }
    }
}

fn resolve(v: &Var, sub: &Subst) -> Var {
    let mut cur = v;
    while let Some(next) = sub.get(cur) {
        cur = next;
    }
    cur.clone()
}

fn wrap(binds: Vec<(Var, Expr)>, body: Expr) -> Expr {
    binds
        .into_iter()
        .rev()
        .fold(body, |acc, (v, rhs)| Expr::let_(v, rhs, acc))
}

/// Returns true when `e` is in A-normal form (argument positions are
/// atoms). Used by debug assertions and tests.
pub fn is_anf(e: &Expr) -> bool {
    let mut ok = true;
    e.visit(&mut |n| match n {
        Expr::App(f, args) if (!f.is_atom() || args.iter().any(|a| !a.is_atom())) => {
            ok = false;
        }
        Expr::Call(_, args) | Expr::Prim(_, args) | Expr::Con { args, .. }
            if args.iter().any(|a| !a.is_atom()) =>
        {
            ok = false;
        }
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::PrimOp;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn hoists_nested_arguments() {
        // (1 + 2) * 3  ⇒  val t = 1 + 2; t * 3
        let mut gen = VarGen::starting_at(100);
        let e = Expr::Prim(
            PrimOp::Mul,
            vec![
                Expr::Prim(PrimOp::Add, vec![Expr::int(1), Expr::int(2)]),
                Expr::int(3),
            ],
        );
        let n = normalize_expr(e, &mut gen);
        assert!(is_anf(&n));
        match &n {
            Expr::Let { rhs, body, .. } => {
                assert!(matches!(**rhs, Expr::Prim(PrimOp::Add, _)));
                assert!(matches!(**body, Expr::Prim(PrimOp::Mul, _)));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn copy_propagates_variable_lets() {
        let x = v(0, "x");
        let y = v(1, "y");
        // val y = x; y + y   ⇒   x + x
        let e = Expr::let_(
            y.clone(),
            Expr::Var(x.clone()),
            Expr::Prim(
                PrimOp::Add,
                vec![Expr::Var(y.clone()), Expr::Var(y.clone())],
            ),
        );
        let mut gen = VarGen::starting_at(100);
        let n = normalize_expr(e, &mut gen);
        assert_eq!(
            n,
            Expr::Prim(PrimOp::Add, vec![Expr::Var(x.clone()), Expr::Var(x)])
        );
    }

    #[test]
    fn names_wildcard_binders() {
        use crate::ir::expr::Arm;
        use crate::ir::program::CtorId;
        let s = v(0, "s");
        let e = Expr::Match {
            scrutinee: s.clone(),
            arms: vec![Arm {
                ctor: CtorId(7),
                binders: vec![None, Some(v(1, "t"))],
                reuse_token: None,
                body: Expr::unit(),
            }],
            default: None,
        };
        let mut gen = VarGen::starting_at(100);
        let n = normalize_expr(e, &mut gen);
        match n {
            Expr::Match { arms, .. } => {
                assert!(arms[0].binders.iter().all(Option::is_some));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn annotates_lambda_captures() {
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Expr::Lam(Lambda {
            params: vec![y.clone()],
            captures: vec![],
            body: Box::new(Expr::Prim(
                PrimOp::Add,
                vec![Expr::Var(x.clone()), Expr::Var(y.clone())],
            )),
        });
        let mut gen = VarGen::starting_at(100);
        let n = normalize_expr(lam, &mut gen);
        match n {
            Expr::Lam(l) => assert_eq!(l.captures, vec![x]),
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn is_anf_detects_violations() {
        let e = Expr::Call(
            crate::ir::program::FunId(0),
            vec![Expr::Prim(PrimOp::Add, vec![Expr::int(1), Expr::int(2)])],
        );
        assert!(!is_anf(&e));
    }
}
