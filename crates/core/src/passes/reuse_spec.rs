//! Reuse specialization (§2.5 of the paper).
//!
//! When a constructor allocation reuses the memory of a matched cell and
//! some argument is exactly the binder of the field at the same position,
//! the in-place field write can be skipped — the memory already holds
//! that very value. For Okasaki-style rebalancing this removes most
//! field assignments on the fast path (the paper's red-black tree
//! example: only the changed child is re-assigned).
//!
//! The pass runs right after insertion, while `drop-reuse` instructions
//! still record which cell a token came from. Only the field *writes*
//! are affected; ownership transfer is unchanged (a skipped write means
//! the argument's ownership replaces the cell's own reference to the
//! same value — net zero, which is why fusion then cancels the
//! corresponding `dup`).

use crate::ir::expr::{Arm, Expr};
use crate::ir::program::Program;
use crate::ir::var::Var;
use std::collections::HashMap;

/// Statistics returned by the pass (used by tests and the ablation
/// harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseSpecStats {
    /// Constructors that got a (non-trivial) skip mask.
    pub specialized_cons: usize,
    /// Total field writes marked skippable.
    pub skipped_fields: usize,
}

/// Source info for a token: the matched cell's field binders.
#[derive(Clone)]
struct TokenInfo {
    binders: Vec<Option<Var>>,
}

/// Runs reuse specialization over every function.
pub fn reuse_spec_program(p: &mut Program) -> ReuseSpecStats {
    let mut stats = ReuseSpecStats::default();
    for f in &mut p.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = rewrite(body, &mut HashMap::new(), &mut HashMap::new(), &mut stats);
    }
    stats
}

type ArmCtx = HashMap<Var, Vec<Option<Var>>>;
type TokCtx = HashMap<Var, TokenInfo>;

fn rewrite(e: Expr, arms: &mut ArmCtx, toks: &mut TokCtx, stats: &mut ReuseSpecStats) -> Expr {
    match e {
        Expr::Con {
            ctor,
            args,
            reuse: Some(t),
            skip,
        } if skip.is_empty() => {
            let mut skip = vec![false; args.len()];
            if let Some(info) = toks.get(&t) {
                if info.binders.len() == args.len() {
                    for (i, a) in args.iter().enumerate() {
                        if let (Expr::Var(av), Some(b)) = (a, &info.binders[i]) {
                            if av == b {
                                skip[i] = true;
                            }
                        }
                    }
                }
            }
            let n = skip.iter().filter(|s| **s).count();
            if n == 0 {
                // Nothing stays in place: specialization buys nothing
                // (the paper's map example) — keep the plain form.
                skip.clear();
            } else {
                stats.specialized_cons += 1;
                stats.skipped_fields += n;
            }
            Expr::Con {
                ctor,
                args,
                reuse: Some(t),
                skip,
            }
        }
        Expr::Con { .. } => e,
        Expr::DropReuse { var, token, body } => {
            if let Some(binders) = arms.get(&var) {
                toks.insert(
                    token.clone(),
                    TokenInfo {
                        binders: binders.clone(),
                    },
                );
            }
            Expr::DropReuse {
                var,
                token,
                body: Box::new(rewrite(*body, arms, toks, stats)),
            }
        }
        Expr::Match {
            scrutinee,
            arms: match_arms,
            default,
        } => {
            let match_arms = match_arms
                .into_iter()
                .map(|arm| {
                    let saved = arms.insert(scrutinee.clone(), arm.binders.clone());
                    let body = rewrite(arm.body, arms, toks, stats);
                    match saved {
                        Some(s) => {
                            arms.insert(scrutinee.clone(), s);
                        }
                        None => {
                            arms.remove(&scrutinee);
                        }
                    }
                    Arm { body, ..arm }
                })
                .collect();
            let default = default.map(|d| Box::new(rewrite(*d, arms, toks, stats)));
            Expr::Match {
                scrutinee,
                arms: match_arms,
                default,
            }
        }
        Expr::Lam(mut lam) => {
            let body = std::mem::replace(&mut *lam.body, Expr::unit());
            let mut inner_arms = HashMap::new();
            let mut inner_toks = HashMap::new();
            *lam.body = rewrite(body, &mut inner_arms, &mut inner_toks, stats);
            Expr::Lam(lam)
        }
        Expr::Let { var, rhs, body } => Expr::let_(
            var,
            rewrite(*rhs, arms, toks, stats),
            rewrite(*body, arms, toks, stats),
        ),
        Expr::Seq(a, b) => Expr::seq(
            rewrite(*a, arms, toks, stats),
            rewrite(*b, arms, toks, stats),
        ),
        Expr::Dup(v, rest) => Expr::dup(v, rewrite(*rest, arms, toks, stats)),
        Expr::Drop(v, rest) => Expr::drop_(v, rewrite(*rest, arms, toks, stats)),
        Expr::Free(v, rest) => Expr::Free(v, Box::new(rewrite(*rest, arms, toks, stats))),
        Expr::DecRef(v, rest) => Expr::DecRef(v, Box::new(rewrite(*rest, arms, toks, stats))),
        Expr::DropToken(v, rest) => Expr::DropToken(v, Box::new(rewrite(*rest, arms, toks, stats))),
        Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } => Expr::IsUnique {
            var,
            binders,
            unique: Box::new(rewrite(*unique, arms, toks, stats)),
            shared: Box::new(rewrite(*shared, arms, toks, stats)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::ProgramBuilder;
    use crate::ir::expr::Arm;

    /// match t { Node(c, l, k, v2, r) -> val y = …;
    ///           Node@ru(c, y, k, v2, r) }  — 4 of 5 fields unchanged.
    #[test]
    fn marks_unchanged_fields() {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("tree", &[("Leaf", 0), ("Node", 5)]);
        let node = ctors[1];
        let t = pb.fresh("t");
        let c = pb.fresh("c");
        let l = pb.fresh("l");
        let k = pb.fresh("k");
        let v2 = pb.fresh("v2");
        let r = pb.fresh("r");
        let ru = pb.fresh("ru");
        let y = pb.fresh("y");
        let alloc = Expr::Con {
            ctor: node,
            args: vec![
                Expr::Var(c.clone()),
                Expr::Var(y.clone()),
                Expr::Var(k.clone()),
                Expr::Var(v2.clone()),
                Expr::Var(r.clone()),
            ],
            reuse: Some(ru.clone()),
            skip: vec![],
        };
        let inner = Expr::DropReuse {
            var: t.clone(),
            token: ru.clone(),
            body: Box::new(Expr::let_(y.clone(), Expr::Var(l.clone()), alloc)),
        };
        let body = Expr::Match {
            scrutinee: t.clone(),
            arms: vec![Arm {
                ctor: node,
                binders: vec![
                    Some(c.clone()),
                    Some(l.clone()),
                    Some(k.clone()),
                    Some(v2.clone()),
                    Some(r.clone()),
                ],
                reuse_token: None,
                body: inner,
            }],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![t], body);
        let mut p = pb.finish();
        let stats = reuse_spec_program(&mut p);
        assert_eq!(stats.specialized_cons, 1);
        // c, k, v2, r stay in place; the rebound child (y) does not.
        assert_eq!(stats.skipped_fields, 4);
        let s = crate::ir::pretty::program_to_string(&p);
        assert!(s.contains("Node@ru(=c, y, =k, =v2, =r)"), "{s}");
    }

    /// All fields change (the map example): no specialization.
    #[test]
    fn skips_when_all_fields_change() {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let ru = pb.fresh("ru");
        let y = pb.fresh("y");
        let ys = pb.fresh("ys");
        let alloc = Expr::Con {
            ctor: cons,
            args: vec![Expr::Var(y.clone()), Expr::Var(ys.clone())],
            reuse: Some(ru.clone()),
            skip: vec![],
        };
        let inner = Expr::DropReuse {
            var: xs.clone(),
            token: ru.clone(),
            body: Box::new(Expr::let_(
                y.clone(),
                Expr::Var(x.clone()),
                Expr::let_(ys.clone(), Expr::Var(xx.clone()), alloc),
            )),
        };
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![Arm {
                ctor: cons,
                binders: vec![Some(x.clone()), Some(xx.clone())],
                reuse_token: None,
                body: inner,
            }],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs], body);
        let mut p = pb.finish();
        let stats = reuse_spec_program(&mut p);
        assert_eq!(stats, ReuseSpecStats::default());
    }
}
