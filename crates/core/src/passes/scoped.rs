//! Scope-tied reference counting — the baseline of §2.2 of the paper.
//!
//! This is the insertion discipline of C++ `shared_ptr`, Rust `Rc<T>`,
//! Nim, and (typically) Swift: every binding *retains* its value for its
//! whole lexical scope, every use that passes the value on performs a
//! `dup`, and a `drop` is emitted at the end of the scope. Compared to
//! Perceus this
//!
//! * executes many more reference-count operations (every use pays a
//!   `dup`, every scope exit a `drop`), and
//! * holds memory longer: in the paper's `foo` example the list `xs`
//!   stays live across `map` and `print`, doubling peak memory — which
//!   is exactly what the scoped rows of the Fig. 9 memory plot show.
//!
//! The abstract machine is agnostic: it executes whatever instructions
//! the chosen insertion emitted, so scoped and Perceus programs run on
//! identical infrastructure and the difference in the benchmarks is the
//! insertion discipline alone.
//!
//! Because scope-exit drops sit *after* the recursive call in tail
//! position, this insertion also defeats tail-call optimization — the
//! classic reason scoped-RC languages need growable stacks for
//! functional loops.

use crate::ir::expr::{Arm, Expr};
use crate::ir::program::Program;
use crate::ir::var::{Var, VarGen};

/// Runs scoped insertion over every function of the program.
///
/// Expects the user fragment in ANF (like Perceus insertion).
pub fn scoped_program(p: &mut Program) {
    let mut gen = std::mem::take(&mut p.var_gen);
    for f in &mut p.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        // Function scope: parameters are dropped when the body finishes.
        let body = rewrite(body, &mut gen);
        f.body = exit_scope(body, f.params.clone(), &mut gen);
    }
    p.var_gen = gen;
}

/// Wraps `body` so that `vars` are dropped after it produces its value:
/// `val r = body; drop v…; r`.
fn exit_scope(body: Expr, vars: Vec<Var>, gen: &mut VarGen) -> Expr {
    if vars.is_empty() {
        return body;
    }
    let r = gen.fresh("_ret");
    Expr::let_(r.clone(), body, Expr::drop_all(vars, Expr::Var(r)))
}

fn rewrite(e: Expr, gen: &mut VarGen) -> Expr {
    match e {
        // A consuming use: retain first, the consumer releases.
        Expr::Var(x) => Expr::dup(x.clone(), Expr::Var(x)),
        Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) => e,
        Expr::App(f, args) => {
            let f = rewrite_atom(*f);
            let (dups, args) = rewrite_atoms(args);
            wrap_dups(dups, apply_atom_dup(f, |f| Expr::App(Box::new(f), args)))
        }
        Expr::Call(id, args) => {
            let (dups, args) = rewrite_atoms(args);
            wrap_dups(dups, Expr::Call(id, args))
        }
        Expr::Prim(op, args) => {
            let (dups, args) = rewrite_atoms(args);
            wrap_dups(dups, Expr::Prim(op, args))
        }
        Expr::Con {
            ctor,
            args,
            reuse,
            skip,
        } => {
            let (dups, args) = rewrite_atoms(args);
            wrap_dups(
                dups,
                Expr::Con {
                    ctor,
                    args,
                    reuse,
                    skip,
                },
            )
        }
        Expr::Lam(mut lam) => {
            // The closure takes ownership of its captures: retain each.
            let captures = lam.captures.clone();
            let body = std::mem::replace(&mut *lam.body, Expr::unit());
            let body = rewrite(body, gen);
            // On call, the machine retains the captures for the body
            // (rule appᵣ), so the body scope owns params *and* captures.
            let mut scope_vars = lam.params.clone();
            scope_vars.extend(lam.captures.iter().cloned());
            *lam.body = exit_scope(body, scope_vars, gen);
            Expr::dup_all(captures, Expr::Lam(lam))
        }
        Expr::Let { var, rhs, body } => {
            let rhs = rewrite(*rhs, gen);
            let body = rewrite(*body, gen);
            // The binding owns its value until the end of the let body.
            let body = exit_scope(body, vec![var.clone()], gen);
            Expr::let_(var, rhs, body)
        }
        Expr::Seq(a, b) => Expr::seq(rewrite(*a, gen), rewrite(*b, gen)),
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            // The match borrows the scrutinee (it is owned by whichever
            // scope bound it). Arm binders are retained for the arm.
            let arms = arms
                .into_iter()
                .map(|arm| {
                    let binders: Vec<Var> = arm.binders.iter().flatten().cloned().collect();
                    let body = rewrite(arm.body, gen);
                    let body = exit_scope(body, binders.clone(), gen);
                    Arm {
                        body: Expr::dup_all(binders, body),
                        ..arm
                    }
                })
                .collect();
            let default = default.map(|d| Box::new(rewrite(*d, gen)));
            Expr::Match {
                scrutinee,
                arms,
                default,
            }
        }
        Expr::Dup(..)
        | Expr::Drop(..)
        | Expr::DropReuse { .. }
        | Expr::Free(..)
        | Expr::DecRef(..)
        | Expr::DropToken(..)
        | Expr::IsUnique { .. }
        | Expr::TokenOf(_)
        | Expr::NullToken => {
            unreachable!("scoped insertion expects the user fragment")
        }
    }
}

/// In ANF, argument positions are atoms; a variable argument is a use and
/// pays a `dup` (returned separately so they prefix the whole call).
fn rewrite_atoms(args: Vec<Expr>) -> (Vec<Var>, Vec<Expr>) {
    let mut dups = Vec::new();
    let args = args
        .into_iter()
        .inspect(|a| {
            if let Expr::Var(v) = a {
                dups.push(v.clone());
            }
        })
        .collect();
    (dups, args)
}

fn rewrite_atom(f: Expr) -> Expr {
    f // atoms are returned as-is; the dup is added by the caller
}

fn apply_atom_dup(f: Expr, k: impl FnOnce(Expr) -> Expr) -> Expr {
    if let Expr::Var(v) = &f {
        let v = v.clone();
        Expr::dup(v, k(f))
    } else {
        k(f)
    }
}

fn wrap_dups(dups: Vec<Var>, e: Expr) -> Expr {
    Expr::dup_all(dups, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::ProgramBuilder;
    use crate::ir::expr::PrimOp;
    use crate::ir::pretty::program_to_string;
    use crate::ir::wf::assert_well_formed;

    #[test]
    fn params_dropped_at_function_exit() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        pb.fun("f", vec![x.clone()], Expr::Var(x.clone()));
        let mut p = pb.finish();
        scoped_program(&mut p);
        assert_well_formed(&p);
        let s = program_to_string(&p);
        // use pays a dup; scope exit drops the parameter.
        assert!(s.contains("dup x"), "{s}");
        assert!(s.contains("drop x"), "{s}");
    }

    #[test]
    fn let_bindings_dropped_at_scope_end() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let y = pb.fresh("y");
        pb.fun(
            "f",
            vec![x.clone()],
            Expr::let_(
                y.clone(),
                Expr::Var(x.clone()),
                Expr::Prim(PrimOp::Add, vec![Expr::int(1), Expr::int(2)]),
            ),
        );
        let mut p = pb.finish();
        scoped_program(&mut p);
        assert_well_formed(&p);
        let s = program_to_string(&p);
        assert!(
            s.contains("drop y"),
            "unused binding still scope-dropped: {s}"
        );
    }

    #[test]
    fn match_binders_retained_for_arm() {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let h = pb.fresh("h");
        let t = pb.fresh("t");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![crate::ir::builder::arm(
                cons,
                vec![h.clone(), t.clone()],
                Expr::Var(h.clone()),
            )],
            default: Some(Box::new(Expr::int(0))),
        };
        pb.fun("f", vec![xs], body);
        let mut p = pb.finish();
        scoped_program(&mut p);
        assert_well_formed(&p);
        let s = program_to_string(&p);
        assert!(s.contains("dup h"), "{s}");
        assert!(s.contains("drop h"), "{s}");
        assert!(s.contains("dup t"), "{s}");
        assert!(s.contains("drop t"), "{s}");
    }
}
