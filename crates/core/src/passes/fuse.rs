//! Dup push-down and dup/drop fusion (§2.3/§2.4, Fig. 1d and Fig. 1g).
//!
//! After drop specialization, a match arm typically looks like
//!
//! ```text
//! dup x; dup xx
//! if is-unique(xs) { drop x; drop xx; free xs } else { decref xs }
//! …
//! ```
//!
//! Pushing the binder `dup`s into both branches lets them cancel against
//! the child `drop`s in the unique branch, yielding the paper's fast
//! path with *no* reference-count operations at all:
//!
//! ```text
//! if is-unique(xs) { free xs } else { dup x; dup xx; decref xs }
//! …
//! ```
//!
//! Soundness of the reorderings relies on two facts: `dup`s of distinct
//! variables commute freely, and a `dup` of a *binder of the tested
//! cell's arm* may move across other instructions because the cell keeps
//! its children alive until it is consumed inside the conditional
//! (inductive data is acyclic, §2.7.4, so a binder can never alias an
//! unrelated dropped variable into deallocation). Only binder `dup`s are
//! pushed; everything else stays put.

use crate::ir::expr::{Arm, Expr};
use crate::ir::program::Program;
use crate::ir::var::Var;

/// One instruction of a dup/drop prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RcOp {
    Dup(Var),
    Drop(Var),
}

/// Runs fusion over every function of the program.
pub fn fuse_program(p: &mut Program) {
    for f in &mut p.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = fuse(body);
    }
}

/// Fuses one expression (exposed for tests and the Fig. 1 example).
pub fn fuse(e: Expr) -> Expr {
    let (mut ops, tail) = peel(e);
    cancel(&mut ops);
    match tail {
        // Statement-position is-unique (drop specialization output).
        Expr::Seq(first, rest) if matches!(*first, Expr::IsUnique { .. }) => {
            let cond = push_into(*first, &mut ops);
            rebuild(ops, Expr::seq(cond, fuse(*rest)))
        }
        // Token-producing is-unique (drop-reuse specialization output).
        Expr::Let { var, rhs, body } if matches!(*rhs, Expr::IsUnique { .. }) => {
            let cond = push_into(*rhs, &mut ops);
            rebuild(ops, Expr::let_(var, cond, fuse(*body)))
        }
        other => rebuild(ops, descend(other)),
    }
}

/// Pushes the binder `dup`s of `ops` into both branches of `cond`
/// (which must be an `IsUnique`), then fuses the branches.
fn push_into(cond: Expr, ops: &mut Vec<RcOp>) -> Expr {
    let Expr::IsUnique {
        var,
        binders,
        unique,
        shared,
    } = cond
    else {
        unreachable!("push_into requires is-unique")
    };
    let mut pushed = Vec::new();
    ops.retain(|op| match op {
        RcOp::Dup(y) if binders.contains(y) && *y != var => {
            pushed.push(y.clone());
            false
        }
        _ => true,
    });
    let prepend = |e: Expr| Expr::dup_all(pushed.iter().cloned(), e);
    Expr::IsUnique {
        var,
        binders,
        unique: Box::new(fuse(prepend(*unique))),
        shared: Box::new(fuse(prepend(*shared))),
    }
}

/// Splits a maximal leading run of `dup`/`drop` instructions.
fn peel(mut e: Expr) -> (Vec<RcOp>, Expr) {
    let mut ops = Vec::new();
    loop {
        match e {
            Expr::Dup(v, rest) => {
                ops.push(RcOp::Dup(v));
                e = *rest;
            }
            Expr::Drop(v, rest) => {
                ops.push(RcOp::Drop(v));
                e = *rest;
            }
            other => return (ops, other),
        }
    }
}

/// Cancels `dup x … drop x` pairs separated only by `dup`s, to fixpoint.
fn cancel(ops: &mut Vec<RcOp>) {
    loop {
        let mut cancelled = false;
        'scan: for j in 0..ops.len() {
            if let RcOp::Drop(x) = &ops[j] {
                // Find a preceding dup of x with only dups in between.
                for i in (0..j).rev() {
                    match &ops[i] {
                        RcOp::Dup(y) if y == x => {
                            ops.remove(j);
                            ops.remove(i);
                            cancelled = true;
                            break 'scan;
                        }
                        RcOp::Dup(_) => continue,
                        RcOp::Drop(_) => break,
                    }
                }
            }
        }
        if !cancelled {
            return;
        }
    }
}

fn rebuild(ops: Vec<RcOp>, tail: Expr) -> Expr {
    ops.into_iter().rev().fold(tail, |acc, op| match op {
        RcOp::Dup(v) => Expr::dup(v, acc),
        RcOp::Drop(v) => Expr::drop_(v, acc),
    })
}

/// Structural recursion for everything that is not a dup/drop prefix.
fn descend(e: Expr) -> Expr {
    match e {
        Expr::Let { var, rhs, body } => Expr::let_(var, fuse(*rhs), fuse(*body)),
        Expr::Seq(a, b) => Expr::seq(fuse(*a), fuse(*b)),
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => Expr::Match {
            scrutinee,
            arms: arms
                .into_iter()
                .map(|arm| Arm {
                    body: fuse(arm.body),
                    ..arm
                })
                .collect(),
            default: default.map(|d| Box::new(fuse(*d))),
        },
        Expr::Lam(mut lam) => {
            let body = std::mem::replace(&mut *lam.body, Expr::unit());
            *lam.body = fuse(body);
            Expr::Lam(lam)
        }
        Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } => Expr::IsUnique {
            var,
            binders,
            unique: Box::new(fuse(*unique)),
            shared: Box::new(fuse(*shared)),
        },
        Expr::DropReuse { var, token, body } => Expr::DropReuse {
            var,
            token,
            body: Box::new(fuse(*body)),
        },
        Expr::Free(v, rest) => Expr::Free(v, Box::new(fuse(*rest))),
        Expr::DecRef(v, rest) => Expr::DecRef(v, Box::new(fuse(*rest))),
        Expr::DropToken(v, rest) => Expr::DropToken(v, Box::new(fuse(*rest))),
        Expr::Dup(..) | Expr::Drop(..) => unreachable!("peeled by caller"),
        // ANF leaves: atoms inside, nothing to do.
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn cancels_adjacent_pairs() {
        let x = v(0, "x");
        let e = Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::int(1)));
        assert_eq!(fuse(e), Expr::int(1));
    }

    #[test]
    fn cancels_across_dups_only() {
        let x = v(0, "x");
        let y = v(1, "y");
        // dup x; dup y; drop x; 1  ⇒  dup y; 1
        let e = Expr::dup(
            x.clone(),
            Expr::dup(y.clone(), Expr::drop_(x.clone(), Expr::int(1))),
        );
        assert_eq!(fuse(e), Expr::dup(y, Expr::int(1)));
    }

    #[test]
    fn does_not_cancel_across_other_drops() {
        let x = v(0, "x");
        let z = v(1, "z");
        // dup x; drop z; drop x — the drop of z may free, so x's pair
        // must not cancel (conservative aliasing rule).
        let e = Expr::dup(
            x.clone(),
            Expr::drop_(z.clone(), Expr::drop_(x.clone(), Expr::int(1))),
        );
        let out = fuse(e.clone());
        assert_eq!(out, e);
    }

    #[test]
    fn figure_1c_to_1d() {
        // dup x; dup xx; if is-unique(xs) { drop x; drop xx; free xs }
        //                else { decref xs }; rest
        // ⇒ if is-unique(xs) { free xs } else { dup x; dup xx; decref xs }; rest
        let xs = v(0, "xs");
        let x = v(1, "x");
        let xx = v(2, "xx");
        let unique = Expr::drop_(
            x.clone(),
            Expr::drop_(xx.clone(), Expr::Free(xs.clone(), Box::new(Expr::unit()))),
        );
        let shared = Expr::DecRef(xs.clone(), Box::new(Expr::unit()));
        let e = Expr::dup(
            x.clone(),
            Expr::dup(
                xx.clone(),
                Expr::seq(
                    Expr::IsUnique {
                        var: xs.clone(),
                        binders: vec![x.clone(), xx.clone()],
                        unique: Box::new(unique),
                        shared: Box::new(shared),
                    },
                    Expr::int(7),
                ),
            ),
        );
        let out = fuse(e);
        match out {
            Expr::Seq(first, rest) => {
                assert_eq!(*rest, Expr::int(7));
                match *first {
                    Expr::IsUnique { unique, shared, .. } => {
                        assert_eq!(
                            *unique,
                            Expr::Free(xs.clone(), Box::new(Expr::unit())),
                            "fast path must be rc-free"
                        );
                        assert_eq!(
                            *shared,
                            Expr::dup(
                                x.clone(),
                                Expr::dup(
                                    xx.clone(),
                                    Expr::DecRef(xs.clone(), Box::new(Expr::unit()))
                                )
                            )
                        );
                    }
                    other => panic!("expected is-unique, got {other:?}"),
                }
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn figure_1f_to_1g() {
        // dup x; dup xx; val ru = if is-unique(xs) { drop x; drop xx; &xs }
        //                         else { decref xs; NULL }; body
        let xs = v(0, "xs");
        let x = v(1, "x");
        let xx = v(2, "xx");
        let ru = v(3, "ru");
        let rhs = Expr::IsUnique {
            var: xs.clone(),
            binders: vec![x.clone(), xx.clone()],
            unique: Box::new(Expr::drop_(
                x.clone(),
                Expr::drop_(xx.clone(), Expr::TokenOf(xs.clone())),
            )),
            shared: Box::new(Expr::DecRef(xs.clone(), Box::new(Expr::NullToken))),
        };
        let e = Expr::dup(
            x.clone(),
            Expr::dup(
                xx.clone(),
                Expr::let_(ru.clone(), rhs, Expr::Var(ru.clone())),
            ),
        );
        let out = fuse(e);
        match out {
            Expr::Let { rhs, .. } => match *rhs {
                Expr::IsUnique { unique, shared, .. } => {
                    assert_eq!(*unique, Expr::TokenOf(xs.clone()));
                    assert_eq!(
                        *shared,
                        Expr::dup(
                            x,
                            Expr::dup(xx, Expr::DecRef(xs, Box::new(Expr::NullToken)))
                        )
                    );
                }
                other => panic!("expected is-unique rhs, got {other:?}"),
            },
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn non_binder_dups_stay_outside() {
        let xs = v(0, "xs");
        let x = v(1, "x");
        let f = v(2, "f");
        let e = Expr::dup(
            f.clone(),
            Expr::dup(
                x.clone(),
                Expr::seq(
                    Expr::IsUnique {
                        var: xs.clone(),
                        binders: vec![x.clone()],
                        unique: Box::new(Expr::drop_(
                            x.clone(),
                            Expr::Free(xs.clone(), Box::new(Expr::unit())),
                        )),
                        shared: Box::new(Expr::DecRef(xs.clone(), Box::new(Expr::unit()))),
                    },
                    Expr::unit(),
                ),
            ),
        );
        let out = fuse(e);
        // dup f is not a binder of xs's arm: it must remain in front.
        assert!(matches!(&out, Expr::Dup(d, _) if *d == f), "{out:?}");
    }
}
