//! Reuse analysis (§2.4 of the paper, following Ullrich & de Moura's
//! reset/reuse scheme).
//!
//! The pass runs on the user fragment *before* reference-count insertion.
//! For every match arm that deconstructs a heap cell which is dead in the
//! arm body (the scrutinee does not occur free), it tries to pair the
//! cell with a constructor allocation of the same size on every
//! control-flow path through the body. When at least one path can reuse,
//! the arm is annotated with a reuse token (later turned into a
//! `drop-reuse` by insertion), the paired allocations become `Con@token`,
//! and paths that allocate nothing of that size release the token with a
//! `drop-token` instruction.
//!
//! Tokens never flow into lambda bodies (the closure may outlive or never
//! reach the allocation) and are consumed exactly once per path, which
//! the resource checker verifies after insertion.

use crate::ir::expr::{Arm, Expr};
use crate::ir::fv::free_vars;
use crate::ir::program::{CtorId, Program, TypeTable};
use crate::ir::var::{Var, VarGen};
use std::collections::HashSet;

/// Tuning knobs for reuse analysis.
#[derive(Debug, Clone)]
pub struct ReuseConfig {
    /// Only pair cells of at least this many fields (arity-0 cells are
    /// immediates and can never be reused).
    pub min_arity: usize,
}

impl Default for ReuseConfig {
    fn default() -> Self {
        ReuseConfig { min_arity: 1 }
    }
}

/// Runs reuse analysis over the whole program. Parameters marked
/// borrowed (`p.borrows`, §6) — and anything destructured out of them —
/// can never be consumed, so their matches are skipped.
pub fn reuse_program(p: &mut Program, config: &ReuseConfig) {
    let mut gen = std::mem::take(&mut p.var_gen);
    let types = p.types.clone();
    let borrows = p.borrows.clone();
    for (fi, f) in p.funs.iter_mut().enumerate() {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        let mut tainted: HashSet<Var> = HashSet::new();
        if let Some(mask) = borrows.get(fi) {
            for (pi, par) in f.params.iter().enumerate() {
                if mask.get(pi).copied().unwrap_or(false) {
                    tainted.insert(par.clone());
                }
            }
        }
        let mut cx = Cx {
            types: &types,
            gen: &mut gen,
            config,
            tainted,
        };
        f.body = cx.expr(body, &mut Vec::new());
    }
    p.var_gen = gen;
}

/// A reuse token that is available on the current path.
#[derive(Debug, Clone)]
struct Avail {
    token: Var,
    arity: usize,
    /// Constructor of the matched cell — used to prefer same-shape
    /// pairings, which is what makes reuse *specialization* (§2.5) fire.
    ctor: CtorId,
    used: bool,
}

struct Cx<'a> {
    types: &'a TypeTable,
    gen: &'a mut VarGen,
    config: &'a ReuseConfig,
    /// Variables that live in borrowed cells: never reuse candidates.
    tainted: HashSet<Var>,
}

impl<'a> Cx<'a> {
    /// Rewrites `e`, consuming available tokens along each path. Any
    /// token in `avail` marked used stays used; tokens left unused by the
    /// caller's path are released by the caller.
    fn expr(&mut self, e: Expr, avail: &mut Vec<Avail>) -> Expr {
        match e {
            // Allocation sites: try to pair with an available token.
            Expr::Con {
                ctor,
                args,
                reuse: None,
                skip,
            } if self.types.ctor(ctor).arity >= self.config.min_arity.max(1) => {
                let args = args
                    .into_iter()
                    .map(|a| self.expr(a, avail))
                    .collect::<Vec<_>>();
                let arity = self.types.ctor(ctor).arity;
                let reuse = self.take_token(arity, ctor, avail);
                Expr::Con {
                    ctor,
                    args,
                    reuse,
                    skip,
                }
            }
            Expr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => Expr::Con {
                ctor,
                args: args.into_iter().map(|a| self.expr(a, avail)).collect(),
                reuse,
                skip,
            },
            Expr::Let { var, rhs, body } => {
                let rhs = self.expr(*rhs, avail);
                let body = self.expr(*body, avail);
                Expr::let_(var, rhs, body)
            }
            Expr::Seq(a, b) => {
                let a = self.expr(*a, avail);
                let b = self.expr(*b, avail);
                Expr::seq(a, b)
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => self.match_(scrutinee, arms, default, avail),
            Expr::Lam(mut lam) => {
                // Tokens do not flow into closures: analyze the body with
                // a fresh (empty) availability.
                let body = std::mem::replace(&mut *lam.body, Expr::unit());
                *lam.body = self.expr(body, &mut Vec::new());
                Expr::Lam(lam)
            }
            Expr::App(f, args) => {
                let f = self.expr(*f, avail);
                let args = args.into_iter().map(|a| self.expr(a, avail)).collect();
                Expr::App(Box::new(f), args)
            }
            Expr::Call(id, args) => {
                Expr::Call(id, args.into_iter().map(|a| self.expr(a, avail)).collect())
            }
            Expr::Prim(op, args) => {
                Expr::Prim(op, args.into_iter().map(|a| self.expr(a, avail)).collect())
            }
            // Leaves and RC instructions (absent in the user fragment).
            other => other,
        }
    }

    /// Takes the best available token of the given arity: prefer the most
    /// recently matched cell with the same constructor (enables reuse
    /// specialization), otherwise the most recent size match.
    fn take_token(&self, arity: usize, ctor: CtorId, avail: &mut [Avail]) -> Option<Var> {
        let pick = avail
            .iter()
            .rposition(|t| !t.used && t.arity == arity && t.ctor == ctor)
            .or_else(|| avail.iter().rposition(|t| !t.used && t.arity == arity))?;
        avail[pick].used = true;
        Some(avail[pick].token.clone())
    }

    #[allow(clippy::ptr_arg)] // arms push/pop their own tokens on the Vec
    fn match_(
        &mut self,
        scrutinee: Var,
        arms: Vec<Arm>,
        default: Option<Box<Expr>>,
        avail: &mut Vec<Avail>,
    ) -> Expr {
        let mut out_arms = Vec::with_capacity(arms.len());
        // Each arm is a separate path: it sees the tokens available at
        // the match, and must settle its own additions.
        let mut any_used = vec![false; avail.len()];
        for arm in arms {
            let mut local = avail.clone();
            let arm = self.arm(scrutinee.clone(), arm, &mut local);
            for (i, t) in local.iter().take(any_used.len()).enumerate() {
                any_used[i] |= t.used;
            }
            out_arms.push((arm, local));
        }
        let default = default.map(|d| {
            let mut local = avail.clone();
            let d = self.expr(*d, &mut local);
            for (i, t) in local.iter().enumerate() {
                any_used[i] |= t.used;
            }
            (d, local)
        });
        // A token used on *any* path is consumed by the match as a whole:
        // mark it used for the caller, and release it explicitly on the
        // paths that did not use it.
        for (i, used) in any_used.iter().enumerate() {
            if *used {
                avail[i].used = true;
            }
        }
        let finalize = |(body, local): (Expr, Vec<Avail>)| {
            let mut body = body;
            for (i, t) in local.iter().take(any_used.len()).enumerate() {
                if any_used[i] && !t.used {
                    body = Expr::DropToken(t.token.clone(), Box::new(body));
                }
            }
            body
        };
        let out_arms = out_arms
            .into_iter()
            .map(|(mut arm, local)| {
                arm.body = finalize((arm.body, local));
                arm
            })
            .collect();
        let default = default.map(|d| Box::new(finalize(d)));
        Expr::Match {
            scrutinee,
            arms: out_arms,
            default,
        }
    }

    fn arm(&mut self, scrutinee: Var, arm: Arm, avail: &mut Vec<Avail>) -> Arm {
        let arity = self.types.ctor(arm.ctor).arity;
        // Binders of a tainted (borrowed) cell are tainted too.
        if self.tainted.contains(&scrutinee) {
            for b in arm.binders.iter().flatten() {
                self.tainted.insert(b.clone());
            }
        }
        let can_reuse = arm.reuse_token.is_none()
            && arity >= self.config.min_arity.max(1)
            && !self.tainted.contains(&scrutinee)
            && !free_vars(&arm.body).contains(&scrutinee)
            && has_alloc_of_arity(&arm.body, arity, self.types);
        if !can_reuse {
            let body = self.expr(arm.body, avail);
            return Arm { body, ..arm };
        }
        let token = self.gen.fresh("ru");
        avail.push(Avail {
            token: token.clone(),
            arity,
            ctor: arm.ctor,
            used: false,
        });
        let mut body = self.expr(arm.body, avail);
        let mine = avail.pop().expect("own token still on stack");
        debug_assert_eq!(mine.token, token);
        if !mine.used {
            // No path ended up using it after all (e.g. the candidate
            // allocations all took other tokens): release at arm entry.
            body = Expr::DropToken(token.clone(), Box::new(body));
        }
        Arm {
            ctor: arm.ctor,
            binders: arm.binders,
            reuse_token: Some(token),
            body,
        }
    }
}

/// Conservative pre-check: does the body contain a constructor allocation
/// of exactly this arity outside any lambda?
fn has_alloc_of_arity(e: &Expr, arity: usize, types: &TypeTable) -> bool {
    match e {
        Expr::Con { ctor, args, .. } => {
            types.ctor(*ctor).arity == arity
                || args.iter().any(|a| has_alloc_of_arity(a, arity, types))
        }
        Expr::Lam(_) => false,
        Expr::Let { rhs, body, .. } => {
            has_alloc_of_arity(rhs, arity, types) || has_alloc_of_arity(body, arity, types)
        }
        Expr::Seq(a, b) => {
            has_alloc_of_arity(a, arity, types) || has_alloc_of_arity(b, arity, types)
        }
        Expr::Match { arms, default, .. } => {
            arms.iter()
                .any(|a| has_alloc_of_arity(&a.body, arity, types))
                || default
                    .as_ref()
                    .is_some_and(|d| has_alloc_of_arity(d, arity, types))
        }
        Expr::App(f, args) => {
            has_alloc_of_arity(f, arity, types)
                || args.iter().any(|a| has_alloc_of_arity(a, arity, types))
        }
        Expr::Call(_, args) | Expr::Prim(_, args) => {
            args.iter().any(|a| has_alloc_of_arity(a, arity, types))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};

    /// Builds `fun f(xs, v) { match xs { Cons(x, xx) -> Cons(v, xx); Nil -> Nil } }`.
    fn sample() -> (Program, CtorId, CtorId) {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let v = pb.fresh("v");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(
                    cons,
                    vec![x.clone(), xx.clone()],
                    con(cons, vec![Expr::Var(v.clone()), Expr::Var(xx.clone())]),
                ),
                arm0(nil, con(nil, vec![])),
            ],
            default: None,
        };
        pb.fun("f", vec![xs, v], body);
        (pb.finish(), nil, cons)
    }

    #[test]
    fn pairs_matched_cell_with_allocation() {
        let (mut p, _nil, _cons) = sample();
        reuse_program(&mut p, &ReuseConfig::default());
        let body = &p.funs[0].body;
        match body {
            Expr::Match { arms, .. } => {
                let token = arms[0].reuse_token.clone().expect("token on Cons arm");
                match &arms[0].body {
                    Expr::Con { reuse, .. } => assert_eq!(reuse.as_ref(), Some(&token)),
                    other => panic!("expected annotated con, got {other:?}"),
                }
                assert!(arms[1].reuse_token.is_none(), "Nil arm gets no token");
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn no_token_when_scrutinee_is_live() {
        // fun f(xs) { match xs { Cons(x, xx) -> Cons(x, xs); ... } }
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(
                cons,
                vec![x.clone(), xx],
                con(cons, vec![Expr::Var(x), Expr::Var(xs.clone())]),
            )],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs], body);
        let mut p = pb.finish();
        reuse_program(&mut p, &ReuseConfig::default());
        match &p.funs[0].body {
            Expr::Match { arms, .. } => assert!(arms[0].reuse_token.is_none()),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn drops_token_on_paths_without_allocation() {
        // match xs { Cons(x, xx) -> match c { True -> Cons(x, xx); False -> Nil } }
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let c = pb.fresh("c");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let inner = crate::ir::builder::ite(
            c.clone(),
            con(cons, vec![Expr::Var(x.clone()), Expr::Var(xx.clone())]),
            con(nil, vec![]),
        );
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(cons, vec![x, xx], inner)],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs, c], body);
        let mut p = pb.finish();
        reuse_program(&mut p, &ReuseConfig::default());
        let s = crate::ir::pretty::program_to_string(&p);
        assert!(s.contains("drop-token"), "False path must release: {s}");
        assert!(s.contains("Cons@"), "True path must reuse: {s}");
    }

    #[test]
    fn no_allocation_means_no_token() {
        // match xs { Cons(x, xx) -> x } — nothing to reuse.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(cons, vec![x.clone(), xx], Expr::Var(x.clone()))],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs], body);
        let mut p = pb.finish();
        reuse_program(&mut p, &ReuseConfig::default());
        match &p.funs[0].body {
            Expr::Match { arms, .. } => assert!(arms[0].reuse_token.is_none()),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn prefers_same_constructor_token() {
        // Two nested matched cells of equal arity but different ctors;
        // the allocation should take the same-ctor token.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("t", &[("A", 2), ("B", 2)]);
        let (a, b) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let ys = pb.fresh("ys");
        let p1 = pb.fresh("p1");
        let p2 = pb.fresh("p2");
        let q1 = pb.fresh("q1");
        let q2 = pb.fresh("q2");
        // match xs { A(p1, p2) -> match ys { B(q1, q2) -> B(p1, q1) } }
        let inner = Expr::Match {
            scrutinee: ys.clone(),
            arms: vec![arm(
                b,
                vec![q1.clone(), q2],
                con(b, vec![Expr::Var(p1.clone()), Expr::Var(q1.clone())]),
            )],
            default: Some(Box::new(Expr::unit())),
        };
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(a, vec![p1, p2], inner)],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs, ys], body);
        let mut p = pb.finish();
        reuse_program(&mut p, &ReuseConfig::default());
        // The B allocation must be paired with ys's token (the B cell).
        let s = crate::ir::pretty::program_to_string(&p);
        let outer_token_line = s.lines().find(|l| l.contains("A(p1, p2) @")).unwrap();
        let inner_token_line = s.lines().find(|l| l.contains("B(q1, q2) @")).unwrap();
        let inner_tok = inner_token_line
            .split('@')
            .nth(1)
            .unwrap()
            .trim_end_matches(" ->");
        let alloc_line = s.lines().find(|l| l.contains("B@")).unwrap();
        assert!(
            alloc_line.contains(&format!("B@{inner_tok}")),
            "allocation should use same-ctor token: {s} (outer {outer_token_line})"
        );
    }
}
