//! Borrow inference — the paper's §6 future-work item ("we would like
//! to integrate selective borrowing"), implemented in the style of
//! Ullrich & de Moura's Lean scheme.
//!
//! A function parameter is *borrowed* when the caller keeps ownership
//! for the duration of the call and the callee only inspects the value.
//! A borrowed parameter is never consumed by the callee: no `drop` on
//! exit, no `dup`-before-`drop` churn when the callee only matches on
//! it. The classic example is `is-red(t)` or a length function — with
//! owned parameters every call pays a retain/release pair; borrowed,
//! they pay nothing.
//!
//! The price, as the paper notes, is that borrowed programs are no
//! longer *garbage-free*: the caller holds its reference across the
//! whole call even if the callee's last use is early. The pipeline
//! therefore leaves borrowing **off** by default
//! ([`PassConfig::perceus`](crate::passes::PassConfig::perceus)) and
//! offers it as an opt-in.
//!
//! ## Inference
//!
//! Greatest fixpoint: every parameter starts as a borrow candidate and
//! is demoted to owned when the body contains an *owning* occurrence —
//! any occurrence other than (a) a match scrutinee or (b) an argument
//! in a position that is (currently) borrowed. Constructor arguments,
//! closure captures, primitive arguments, returned values and
//! indirect-call arguments all demote. Entry-point parameters stay
//! owned (the host passes owned values).

use crate::ir::expr::Expr;
use crate::ir::program::Program;
use crate::ir::var::Var;
use std::collections::HashSet;

/// Per-function borrow masks: `masks[f][i]` is true when parameter `i`
/// of function `f` is borrowed.
pub type BorrowMasks = Vec<Vec<bool>>;

/// Runs borrow inference and stores the masks in `p.borrows`.
/// Returns the number of parameters inferred borrowed.
pub fn borrow_program(p: &mut Program) -> usize {
    let masks = infer_borrows(p);
    let n = masks.iter().flatten().filter(|b| **b).count();
    p.borrows = masks;
    n
}

/// Computes the greatest-fixpoint borrow masks without modifying the
/// program.
pub fn infer_borrows(p: &Program) -> BorrowMasks {
    let mut masks: BorrowMasks = p.funs.iter().map(|f| vec![true; f.params.len()]).collect();
    // The entry point is called by the host with owned arguments.
    if let Some(entry) = p.entry {
        for b in &mut masks[entry.0 as usize] {
            *b = false;
        }
    }
    loop {
        let mut changed = false;
        for (fi, f) in p.funs.iter().enumerate() {
            // Parameters with any owning occurrence under the current
            // masks get demoted.
            let mut owning: HashSet<Var> = HashSet::new();
            collect_owning(&f.body, &masks, &mut owning);
            for (pi, param) in f.params.iter().enumerate() {
                if masks[fi][pi] && owning.contains(param) {
                    masks[fi][pi] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return masks;
        }
    }
}

/// Collects variables with an owning occurrence in `e`.
fn collect_owning(e: &Expr, masks: &BorrowMasks, out: &mut HashSet<Var>) {
    match e {
        // A bare variable in value position is returned/bound: owning.
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) | Expr::NullToken => {}
        Expr::TokenOf(v) => {
            out.insert(v.clone());
        }
        Expr::Call(f, args) => {
            let mask = masks.get(f.0 as usize);
            for (i, a) in args.iter().enumerate() {
                let borrowed_pos = mask.and_then(|m| m.get(i)).copied().unwrap_or(false);
                match a {
                    Expr::Var(_) if borrowed_pos => {} // borrow-use: fine
                    _ => collect_owning(a, masks, out),
                }
            }
        }
        Expr::App(f, args) => {
            collect_owning(f, masks, out);
            for a in args {
                collect_owning(a, masks, out);
            }
        }
        Expr::Prim(_, args) => {
            // Conservative: primitives consume their reference
            // arguments (`!r` drops the ref). Integer-typed uses are
            // demoted too, which is free — value types carry no counts.
            for a in args {
                collect_owning(a, masks, out);
            }
        }
        Expr::Lam(lam) => {
            // Captures are consumed by the closure; anything free in
            // the body is owning.
            for fv in crate::ir::fv::lambda_free_vars(lam).iter() {
                out.insert(fv.clone());
            }
            // Body occurrences of *other* variables are the lambda's
            // own business (params are local).
        }
        Expr::Con { args, reuse, .. } => {
            if let Some(t) = reuse {
                out.insert(t.clone());
            }
            for a in args {
                collect_owning(a, masks, out);
            }
        }
        Expr::Let { rhs, body, .. } => {
            collect_owning(rhs, masks, out);
            collect_owning(body, masks, out);
        }
        Expr::Seq(a, b) => {
            collect_owning(a, masks, out);
            collect_owning(b, masks, out);
        }
        Expr::Match {
            scrutinee, // inspecting is exactly what borrowing allows …
            arms,
            default,
        } => {
            // … unless reuse analysis wants to consume the cell: a
            // reuse-annotated arm turns the match into an owning use
            // (reuse beats borrowing, as in Lean).
            if arms.iter().any(|a| a.reuse_token.is_some()) {
                out.insert(scrutinee.clone());
            }
            for arm in arms {
                collect_owning(&arm.body, masks, out);
            }
            if let Some(d) = default {
                collect_owning(d, masks, out);
            }
        }
        Expr::Dup(_, rest)
        | Expr::Drop(_, rest)
        | Expr::Free(_, rest)
        | Expr::DecRef(_, rest)
        | Expr::DropToken(_, rest) => collect_owning(rest, masks, out),
        Expr::DropReuse { var, body, .. } => {
            out.insert(var.clone());
            collect_owning(body, masks, out);
        }
        Expr::IsUnique {
            var,
            unique,
            shared,
            ..
        } => {
            out.insert(var.clone());
            collect_owning(unique, masks, out);
            collect_owning(shared, masks, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ite, ProgramBuilder};
    use crate::ir::expr::PrimOp;

    /// fun len(xs, acc) { match xs { Cons(_, t) -> len(t, acc + 1); Nil -> acc } }
    /// fun main(n) { … } — xs can be borrowed? No: `t` is passed at xs's
    /// own (borrowed) position, so yes — and acc is an int (owned, but
    /// that costs nothing).
    #[test]
    fn length_parameter_is_borrowed() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let acc = pb.fresh("acc");
        let h = pb.fresh("h");
        let t = pb.fresh("t");
        let len = pb.declare("len", vec![xs.clone(), acc.clone()]);
        pb.set_body(
            len,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm(
                        cons,
                        vec![h.clone(), t.clone()],
                        Expr::Call(
                            len,
                            vec![
                                Expr::Var(t.clone()),
                                Expr::Prim(PrimOp::Add, vec![Expr::Var(acc.clone()), Expr::int(1)]),
                            ],
                        ),
                    ),
                    arm0(nil, Expr::Var(acc.clone())),
                ],
                default: None,
            },
        );
        let n = pb.fresh("n");
        let ys = pb.fresh("ys");
        let main = pb.declare("main", vec![n.clone()]);
        pb.set_body(
            main,
            Expr::let_(
                ys.clone(),
                con(cons, vec![Expr::Var(n.clone()), con(nil, vec![])]),
                Expr::Call(len, vec![Expr::Var(ys.clone()), Expr::int(0)]),
            ),
        );
        pb.entry(main);
        let p = pb.finish();
        let masks = infer_borrows(&p);
        assert!(masks[len.0 as usize][0], "xs only inspected: borrowed");
        // acc is returned in the Nil arm: owning.
        assert!(!masks[len.0 as usize][1], "acc returned: owned");
        assert!(
            masks[main.0 as usize].iter().all(|b| !b),
            "entry params stay owned"
        );
    }

    /// A parameter stored into a constructor must be owned.
    #[test]
    fn stored_parameter_is_owned() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = cs[1];
        let x = pb.fresh("x");
        let xs = pb.fresh("xs");
        let f = pb.fun(
            "push",
            vec![x.clone(), xs.clone()],
            con(cons, vec![Expr::Var(x.clone()), Expr::Var(xs.clone())]),
        );
        let p = pb.finish();
        let masks = infer_borrows(&p);
        assert!(!masks[f.0 as usize][0]);
        assert!(!masks[f.0 as usize][1]);
    }

    /// Demotion propagates through the call graph: if `g` stores its
    /// parameter, then `f` passing its own parameter to `g` is demoted
    /// too (fixpoint, not a single pass).
    #[test]
    fn demotion_is_transitive() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = cs[1];
        let y = pb.fresh("y");
        let g = pb.fun(
            "g",
            vec![y.clone()],
            con(cons, vec![Expr::int(0), Expr::Var(y.clone())]),
        );
        let x = pb.fresh("x");
        let f = pb.fun(
            "f",
            vec![x.clone()],
            Expr::Call(g, vec![Expr::Var(x.clone())]),
        );
        let p = pb.finish();
        let masks = infer_borrows(&p);
        assert!(!masks[g.0 as usize][0]);
        assert!(!masks[f.0 as usize][0], "transitively owned");
    }

    /// A parameter captured by a closure must be owned.
    #[test]
    fn captured_parameter_is_owned() {
        use crate::ir::expr::Lambda;
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let q = pb.fresh("q");
        let f = pb.fun(
            "mk",
            vec![x.clone()],
            Expr::Lam(Lambda {
                params: vec![q.clone()],
                captures: vec![x.clone()],
                body: Box::new(Expr::Var(x.clone())),
            }),
        );
        let p = pb.finish();
        let masks = infer_borrows(&p);
        assert!(!masks[f.0 as usize][0]);
    }

    /// Pure inspection via nested matches stays borrowed.
    #[test]
    fn multi_level_inspection_is_borrowed() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let h = pb.fresh("h");
        let t = pb.fresh("t");
        let c = pb.fresh("c");
        // fun head-or(xs) = match xs { Cons(h, t) -> if h < 3 then 1 else 0; Nil -> 0 }
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(
                    cons,
                    vec![h.clone(), t.clone()],
                    Expr::let_(
                        c.clone(),
                        Expr::Prim(PrimOp::Lt, vec![Expr::Var(h.clone()), Expr::int(3)]),
                        ite(c.clone(), Expr::int(1), Expr::int(0)),
                    ),
                ),
                arm0(nil, Expr::int(0)),
            ],
            default: None,
        };
        let f = pb.fun("head-or", vec![xs.clone()], body);
        let p = pb.finish();
        let masks = infer_borrows(&p);
        assert!(masks[f.0 as usize][0]);
    }
}
