//! Drop specialization and drop-reuse specialization (§2.3/§2.4,
//! Fig. 1c and Fig. 1f of the paper).
//!
//! Inside a match arm the constructor of the scrutinee is statically
//! known, so its `drop` can be inlined and specialized:
//!
//! ```text
//! drop x; e                       if is-unique(x) { drop b₁ … drop bₙ; free x }
//!            ──────────────▶      else            { decref x }
//!                                 e
//! ```
//!
//! and a `drop-reuse` becomes the token-producing conditional of Fig. 1f:
//!
//! ```text
//! val ru = drop-reuse x; e   ⇒   val ru = if is-unique(x) { drop bᵢ…; &x }
//!                                         else            { decref x; NULL }
//!                                e
//! ```
//!
//! Following the paper, a plain `drop` is only specialized when at least
//! one child is used afterwards — otherwise the generic `drop` is both
//! smaller and just as fast (e.g. the `Nil` branch of `map`).
//!
//! In the unique branch, the cell's ownership of its children transfers
//! to the arm binders (recorded in [`Expr::IsUnique::binders`]); the
//! resource checker relies on this to validate the output.

use crate::ir::expr::{Arm, Expr};
use crate::ir::fv::free_vars;
use crate::ir::program::Program;
use crate::ir::var::Var;
use std::collections::HashMap;

/// Which specializations to perform.
#[derive(Debug, Clone, Copy)]
pub struct DropSpecConfig {
    /// Specialize plain `drop` of matched cells (Fig. 1c).
    pub specialize_drop: bool,
    /// Specialize `drop-reuse` into the token conditional (Fig. 1f).
    pub specialize_drop_reuse: bool,
}

impl Default for DropSpecConfig {
    fn default() -> Self {
        DropSpecConfig {
            specialize_drop: true,
            specialize_drop_reuse: true,
        }
    }
}

/// Information about the innermost match arm that bound a variable.
#[derive(Clone)]
struct ArmInfo {
    binders: Vec<Var>,
    /// All fields must be named for the cell to be dismantled statically.
    complete: bool,
}

/// Runs the pass over every function.
pub fn drop_spec_program(p: &mut Program, config: &DropSpecConfig) {
    for f in &mut p.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = rewrite(body, &mut HashMap::new(), config);
    }
}

fn rewrite(e: Expr, ctx: &mut HashMap<Var, ArmInfo>, config: &DropSpecConfig) -> Expr {
    match e {
        Expr::Drop(x, rest) => {
            let rest_fv_has_child = ctx.get(&x).map(|info| {
                let fv = free_vars(&rest);
                info.binders.iter().any(|b| fv.contains(b))
            });
            match ctx.get(&x) {
                Some(info)
                    if config.specialize_drop
                        && info.complete
                        && !info.binders.is_empty()
                        && rest_fv_has_child == Some(true) =>
                {
                    let bs = info.binders.clone();
                    let unique =
                        Expr::drop_all(bs.clone(), Expr::Free(x.clone(), Box::new(Expr::unit())));
                    let shared = Expr::DecRef(x.clone(), Box::new(Expr::unit()));
                    let test = Expr::IsUnique {
                        var: x,
                        binders: bs,
                        unique: Box::new(unique),
                        shared: Box::new(shared),
                    };
                    Expr::seq(test, rewrite(*rest, ctx, config))
                }
                _ => Expr::drop_(x, rewrite(*rest, ctx, config)),
            }
        }
        Expr::DropReuse { var, token, body } => match ctx.get(&var) {
            Some(info) if config.specialize_drop_reuse && info.complete => {
                let bs = info.binders.clone();
                let unique = Expr::drop_all(bs.clone(), Expr::TokenOf(var.clone()));
                let shared = Expr::DecRef(var.clone(), Box::new(Expr::NullToken));
                let rhs = Expr::IsUnique {
                    var,
                    binders: bs,
                    unique: Box::new(unique),
                    shared: Box::new(shared),
                };
                Expr::let_(token, rhs, rewrite(*body, ctx, config))
            }
            _ => Expr::DropReuse {
                var,
                token,
                body: Box::new(rewrite(*body, ctx, config)),
            },
        },
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            let arms = arms
                .into_iter()
                .map(|arm| {
                    let binders: Vec<Var> = arm.binders.iter().flatten().cloned().collect();
                    let complete = binders.len() == arm.binders.len();
                    let saved = ctx.insert(scrutinee.clone(), ArmInfo { binders, complete });
                    let body = rewrite(arm.body, ctx, config);
                    match saved {
                        Some(s) => {
                            ctx.insert(scrutinee.clone(), s);
                        }
                        None => {
                            ctx.remove(&scrutinee);
                        }
                    }
                    Arm { body, ..arm }
                })
                .collect();
            let default = default.map(|d| Box::new(rewrite(*d, ctx, config)));
            Expr::Match {
                scrutinee,
                arms,
                default,
            }
        }
        Expr::Lam(mut lam) => {
            // Binders of enclosing arms may not be captured by the
            // closure; dismantling is not available inside it.
            let body = std::mem::replace(&mut *lam.body, Expr::unit());
            let mut inner = HashMap::new();
            *lam.body = rewrite(body, &mut inner, config);
            Expr::Lam(lam)
        }
        Expr::Let { var, rhs, body } => {
            Expr::let_(var, rewrite(*rhs, ctx, config), rewrite(*body, ctx, config))
        }
        Expr::Seq(a, b) => Expr::seq(rewrite(*a, ctx, config), rewrite(*b, ctx, config)),
        Expr::Dup(v, rest) => Expr::dup(v, rewrite(*rest, ctx, config)),
        Expr::Free(v, rest) => Expr::Free(v, Box::new(rewrite(*rest, ctx, config))),
        Expr::DecRef(v, rest) => Expr::DecRef(v, Box::new(rewrite(*rest, ctx, config))),
        Expr::DropToken(v, rest) => Expr::DropToken(v, Box::new(rewrite(*rest, ctx, config))),
        Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } => Expr::IsUnique {
            var,
            binders,
            unique: Box::new(rewrite(*unique, ctx, config)),
            shared: Box::new(rewrite(*shared, ctx, config)),
        },
        Expr::App(f, args) => Expr::App(Box::new(rewrite(*f, ctx, config)), args),
        // ANF: argument positions are atoms; nothing to rewrite inside.
        Expr::Call(..)
        | Expr::Prim(..)
        | Expr::Con { .. }
        | Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, con, ProgramBuilder};
    use crate::ir::pretty::program_to_string;

    /// match xs { Cons(x, xx) -> dup x; dup xx; drop xs; Cons(x, xx) }
    fn sample(reuse: bool) -> Program {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let ru = pb.fresh("ru");
        let alloc = if reuse {
            Expr::Con {
                ctor: cons,
                args: vec![Expr::Var(x.clone()), Expr::Var(xx.clone())],
                reuse: Some(ru.clone()),
                skip: vec![],
            }
        } else {
            con(cons, vec![Expr::Var(x.clone()), Expr::Var(xx.clone())])
        };
        let inner = if reuse {
            Expr::DropReuse {
                var: xs.clone(),
                token: ru.clone(),
                body: Box::new(alloc),
            }
        } else {
            Expr::drop_(xs.clone(), alloc)
        };
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(
                cons,
                vec![x.clone(), xx.clone()],
                Expr::dup(x.clone(), Expr::dup(xx.clone(), inner)),
            )],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs], body);
        pb.finish()
    }

    #[test]
    fn specializes_drop_of_matched_cell() {
        let mut p = sample(false);
        drop_spec_program(&mut p, &DropSpecConfig::default());
        let s = program_to_string(&p);
        assert!(s.contains("if is-unique(xs)"), "{s}");
        assert!(s.contains("free xs"), "{s}");
        assert!(s.contains("decref xs"), "{s}");
        // Children dropped in the unique branch (Fig. 1c).
        let unique = s.split("if is-unique").nth(1).unwrap();
        assert!(unique.contains("drop x"), "{s}");
        assert!(unique.contains("drop xx"), "{s}");
    }

    #[test]
    fn specializes_drop_reuse_into_token_conditional() {
        let mut p = sample(true);
        drop_spec_program(&mut p, &DropSpecConfig::default());
        let s = program_to_string(&p);
        assert!(s.contains("val ru = {"), "{s}");
        assert!(s.contains("&xs"), "{s}");
        assert!(s.contains("NULL"), "{s}");
        assert!(s.contains("decref xs"), "{s}");
    }

    #[test]
    fn leaves_unrelated_drops_alone() {
        // drop of a variable that was never matched stays generic.
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        pb.fun("f", vec![x.clone()], Expr::drop_(x.clone(), Expr::int(0)));
        let mut p = pb.finish();
        drop_spec_program(&mut p, &DropSpecConfig::default());
        assert_eq!(p.funs[0].body, Expr::drop_(x, Expr::int(0)));
    }

    #[test]
    fn does_not_specialize_when_children_unused() {
        // match xs { Cons(x, xx) -> drop xs; 42 } — no child used after.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = ctors[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![arm(
                cons,
                vec![x, xx],
                Expr::drop_(xs.clone(), Expr::int(42)),
            )],
            default: Some(Box::new(Expr::unit())),
        };
        pb.fun("f", vec![xs], body);
        let mut p = pb.finish();
        drop_spec_program(&mut p, &DropSpecConfig::default());
        let s = program_to_string(&p);
        assert!(!s.contains("is-unique"), "{s}");
    }

    #[test]
    fn config_can_disable() {
        let mut p = sample(false);
        drop_spec_program(
            &mut p,
            &DropSpecConfig {
                specialize_drop: false,
                specialize_drop_reuse: false,
            },
        );
        let s = program_to_string(&p);
        assert!(!s.contains("is-unique"), "{s}");
    }
}
