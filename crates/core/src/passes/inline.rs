//! A small-function inliner.
//!
//! §2.5 of the paper notes that the compiler inlines `bal-left` into
//! `ins`, at which point *every* matched `Node` has a corresponding
//! `Node` allocation and reuse analysis eliminates all allocations on
//! the fast path. This pass provides exactly that: direct calls to
//! small, non-recursive top-level functions are replaced by their
//! (alpha-renamed) bodies, before reuse analysis runs.

use crate::ir::expr::{Arm, Expr, Lambda};
use crate::ir::program::{FunId, Program};
use crate::ir::var::{Var, VarGen};
use std::collections::{HashMap, HashSet};

/// Tuning knobs for the inliner.
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Maximum body size (IR nodes) of an inlinable function.
    pub max_size: usize,
    /// How many rounds to run (each round may expose new direct calls).
    pub rounds: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_size: 256,
            rounds: 2,
        }
    }
}

/// Runs the inliner; returns the number of call sites inlined.
pub fn inline_program(p: &mut Program, config: &InlineConfig) -> usize {
    let mut total = 0;
    for _ in 0..config.rounds {
        let recursive = recursive_funs(p);
        // Snapshot candidate bodies for this round.
        let candidates: HashMap<FunId, (Vec<Var>, Expr)> = p
            .funs()
            .filter(|(id, f)| !recursive.contains(id) && f.body.size() <= config.max_size)
            .map(|(id, f)| (id, (f.params.clone(), f.body.clone())))
            .collect();
        if candidates.is_empty() {
            return total;
        }
        let mut gen = std::mem::take(&mut p.var_gen);
        let mut round = 0;
        for (id, f) in p.funs.iter_mut().enumerate() {
            let body = std::mem::replace(&mut f.body, Expr::unit());
            f.body = inline_expr(body, FunId(id as u32), &candidates, &mut gen, &mut round);
        }
        p.var_gen = gen;
        total += round;
        if round == 0 {
            break;
        }
    }
    total
}

/// Functions that participate in a call-graph cycle (conservatively, any
/// function from which itself is reachable through direct calls).
fn recursive_funs(p: &Program) -> HashSet<FunId> {
    // Build direct-call edges; a Global reference also counts (it may be
    // applied indirectly, and inlining through it is impossible anyway —
    // we only need cycles among *direct* calls plus self-references).
    let n = p.funs.len();
    let mut edges: Vec<HashSet<FunId>> = vec![HashSet::new(); n];
    for (id, f) in p.funs() {
        f.body.visit(&mut |e| {
            if let Expr::Call(callee, _) | Expr::Global(callee) = e {
                edges[id.0 as usize].insert(*callee);
            }
        });
    }
    let mut recursive = HashSet::new();
    for start in 0..n {
        // DFS from each successor of `start`, looking for `start`.
        let target = FunId(start as u32);
        let mut stack: Vec<FunId> = edges[start].iter().copied().collect();
        let mut seen: HashSet<FunId> = stack.iter().copied().collect();
        let mut found = edges[start].contains(&target);
        while let Some(cur) = stack.pop() {
            if cur == target {
                found = true;
                break;
            }
            for next in &edges[cur.0 as usize] {
                if seen.insert(*next) {
                    stack.push(*next);
                }
            }
        }
        if found {
            recursive.insert(target);
        }
    }
    recursive
}

fn inline_expr(
    e: Expr,
    current: FunId,
    candidates: &HashMap<FunId, (Vec<Var>, Expr)>,
    gen: &mut VarGen,
    count: &mut usize,
) -> Expr {
    let recur = |e: Expr, gen: &mut VarGen, count: &mut usize| {
        inline_expr(e, current, candidates, gen, count)
    };
    match e {
        Expr::Call(callee, args) if callee != current && candidates.contains_key(&callee) => {
            let args: Vec<Expr> = args.into_iter().map(|a| recur(a, gen, count)).collect();
            let (params, body) = &candidates[&callee];
            *count += 1;
            // Fresh copy of the body, with parameters bound to arguments.
            let mut map = HashMap::new();
            let fresh_params: Vec<Var> = params
                .iter()
                .map(|p| {
                    let fp = gen.fresh(p.hint());
                    map.insert(p.clone(), fp.clone());
                    fp
                })
                .collect();
            let body = alpha_rename(body.clone(), &mut map, gen);
            fresh_params
                .into_iter()
                .zip(args)
                .rev()
                .fold(body, |acc, (p, a)| Expr::let_(p, a, acc))
        }
        Expr::Call(callee, args) => Expr::Call(
            callee,
            args.into_iter().map(|a| recur(a, gen, count)).collect(),
        ),
        Expr::App(f, args) => Expr::App(
            Box::new(recur(*f, gen, count)),
            args.into_iter().map(|a| recur(a, gen, count)).collect(),
        ),
        Expr::Prim(op, args) => {
            Expr::Prim(op, args.into_iter().map(|a| recur(a, gen, count)).collect())
        }
        Expr::Con {
            ctor,
            args,
            reuse,
            skip,
        } => Expr::Con {
            ctor,
            args: args.into_iter().map(|a| recur(a, gen, count)).collect(),
            reuse,
            skip,
        },
        Expr::Let { var, rhs, body } => {
            Expr::let_(var, recur(*rhs, gen, count), recur(*body, gen, count))
        }
        Expr::Seq(a, b) => Expr::seq(recur(*a, gen, count), recur(*b, gen, count)),
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => Expr::Match {
            scrutinee,
            arms: arms
                .into_iter()
                .map(|arm| Arm {
                    body: recur(arm.body, gen, count),
                    ..arm
                })
                .collect(),
            default: default.map(|d| Box::new(recur(*d, gen, count))),
        },
        Expr::Lam(mut lam) => {
            let body = std::mem::replace(&mut *lam.body, Expr::unit());
            *lam.body = recur(body, gen, count);
            Expr::Lam(lam)
        }
        other => other,
    }
}

/// Renames every bound variable of `e` to a fresh one, applying `map` to
/// occurrences. Used when splicing a function body into a new context so
/// variable ids stay globally unique.
pub fn alpha_rename(e: Expr, map: &mut HashMap<Var, Var>, gen: &mut VarGen) -> Expr {
    let ren = |v: &Var, map: &HashMap<Var, Var>| map.get(v).cloned().unwrap_or_else(|| v.clone());
    match e {
        Expr::Var(v) => Expr::Var(ren(&v, map)),
        Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) | Expr::NullToken => e,
        Expr::TokenOf(v) => Expr::TokenOf(ren(&v, map)),
        Expr::App(f, args) => Expr::App(
            Box::new(alpha_rename(*f, map, gen)),
            args.into_iter()
                .map(|a| alpha_rename(a, map, gen))
                .collect(),
        ),
        Expr::Call(id, args) => Expr::Call(
            id,
            args.into_iter()
                .map(|a| alpha_rename(a, map, gen))
                .collect(),
        ),
        Expr::Prim(op, args) => Expr::Prim(
            op,
            args.into_iter()
                .map(|a| alpha_rename(a, map, gen))
                .collect(),
        ),
        Expr::Con {
            ctor,
            args,
            reuse,
            skip,
        } => Expr::Con {
            ctor,
            args: args
                .into_iter()
                .map(|a| alpha_rename(a, map, gen))
                .collect(),
            reuse: reuse.map(|t| ren(&t, map)),
            skip,
        },
        Expr::Lam(lam) => {
            let params: Vec<Var> = lam
                .params
                .iter()
                .map(|p| {
                    let fp = gen.fresh(p.hint());
                    map.insert(p.clone(), fp.clone());
                    fp
                })
                .collect();
            let captures = lam.captures.iter().map(|c| ren(c, map)).collect();
            let body = alpha_rename(*lam.body, map, gen);
            Expr::Lam(Lambda {
                params,
                captures,
                body: Box::new(body),
            })
        }
        Expr::Let { var, rhs, body } => {
            let rhs = alpha_rename(*rhs, map, gen);
            let fv = gen.fresh(var.hint());
            map.insert(var, fv.clone());
            Expr::let_(fv, rhs, alpha_rename(*body, map, gen))
        }
        Expr::Seq(a, b) => Expr::seq(alpha_rename(*a, map, gen), alpha_rename(*b, map, gen)),
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => Expr::Match {
            scrutinee: ren(&scrutinee, map),
            arms: arms
                .into_iter()
                .map(|arm| {
                    let binders: Vec<Option<Var>> = arm
                        .binders
                        .into_iter()
                        .map(|b| {
                            b.map(|b| {
                                let fb = gen.fresh(b.hint());
                                map.insert(b, fb.clone());
                                fb
                            })
                        })
                        .collect();
                    let reuse_token = arm.reuse_token.map(|t| {
                        let ft = gen.fresh(t.hint());
                        map.insert(t, ft.clone());
                        ft
                    });
                    Arm {
                        ctor: arm.ctor,
                        binders,
                        reuse_token,
                        body: alpha_rename(arm.body, map, gen),
                    }
                })
                .collect(),
            default: default.map(|d| Box::new(alpha_rename(*d, map, gen))),
        },
        Expr::Dup(v, rest) => Expr::dup(ren(&v, map), alpha_rename(*rest, map, gen)),
        Expr::Drop(v, rest) => Expr::drop_(ren(&v, map), alpha_rename(*rest, map, gen)),
        Expr::Free(v, rest) => Expr::Free(ren(&v, map), Box::new(alpha_rename(*rest, map, gen))),
        Expr::DecRef(v, rest) => {
            Expr::DecRef(ren(&v, map), Box::new(alpha_rename(*rest, map, gen)))
        }
        Expr::DropToken(v, rest) => {
            Expr::DropToken(ren(&v, map), Box::new(alpha_rename(*rest, map, gen)))
        }
        Expr::DropReuse { var, token, body } => {
            let var = ren(&var, map);
            let ft = gen.fresh(token.hint());
            map.insert(token, ft.clone());
            Expr::DropReuse {
                var,
                token: ft,
                body: Box::new(alpha_rename(*body, map, gen)),
            }
        }
        Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } => Expr::IsUnique {
            var: ren(&var, map),
            binders: binders.iter().map(|b| ren(b, map)).collect(),
            unique: Box::new(alpha_rename(*unique, map, gen)),
            shared: Box::new(alpha_rename(*shared, map, gen)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::ProgramBuilder;
    use crate::ir::expr::PrimOp;
    use crate::ir::wf::assert_well_formed;

    #[test]
    fn inlines_small_helper() {
        // fun inc(x) { x + 1 }   fun main(n) { inc(n) }
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let inc = pb.fun(
            "inc",
            vec![x.clone()],
            Expr::Prim(PrimOp::Add, vec![Expr::Var(x.clone()), Expr::int(1)]),
        );
        let n = pb.fresh("n");
        let main = pb.fun("main", vec![n.clone()], Expr::Call(inc, vec![Expr::Var(n)]));
        pb.entry(main);
        let mut p = pb.finish();
        let count = inline_program(&mut p, &InlineConfig::default());
        assert_eq!(count, 1);
        assert_well_formed(&p);
        let s = crate::ir::pretty::program_to_string(&p);
        let main_part = s.split("fun main").nth(1).unwrap();
        assert!(!main_part.contains("@fun0("), "call not inlined: {s}");
        assert!(main_part.contains('+'), "{s}");
    }

    #[test]
    fn leaves_recursive_functions() {
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let f = pb.declare("loopy", vec![n.clone()]);
        pb.set_body(f, Expr::Call(f, vec![Expr::Var(n.clone())]));
        let m = pb.fresh("m");
        pb.fun("main", vec![m.clone()], Expr::Call(f, vec![Expr::Var(m)]));
        let mut p = pb.finish();
        assert_eq!(inline_program(&mut p, &InlineConfig::default()), 0);
    }

    #[test]
    fn respects_size_limit() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        // A chain of additions well over the limit.
        let mut body = Expr::Var(x.clone());
        for _ in 0..100 {
            body = Expr::Prim(PrimOp::Add, vec![body, Expr::int(1)]);
        }
        let big = pb.fun("big", vec![x.clone()], body);
        let n = pb.fresh("n");
        pb.fun("main", vec![n.clone()], Expr::Call(big, vec![Expr::Var(n)]));
        let mut p = pb.finish();
        let cfg = InlineConfig {
            max_size: 16,
            rounds: 1,
        };
        assert_eq!(inline_program(&mut p, &cfg), 0);
    }

    #[test]
    fn mutual_recursion_detected() {
        let mut pb = ProgramBuilder::new();
        let a = pb.fresh("a");
        let f = pb.declare("even", vec![a.clone()]);
        let b = pb.fresh("b");
        let g = pb.declare("odd", vec![b.clone()]);
        pb.set_body(f, Expr::Call(g, vec![Expr::Var(a)]));
        pb.set_body(g, Expr::Call(f, vec![Expr::Var(b)]));
        let mut p = pb.finish();
        assert_eq!(inline_program(&mut p, &InlineConfig::default()), 0);
    }
}
