//! Free-variable computation for core expressions.

use super::expr::{Expr, Lambda};
use super::var::{Var, VarSet};

/// Returns the free variables of `e` as an ordered set.
pub fn free_vars(e: &Expr) -> VarSet {
    let mut out = VarSet::new();
    collect(e, &mut Vec::new(), &mut out);
    out
}

/// Returns the free variables of a lambda: `fv(body) − params`.
pub fn lambda_free_vars(lam: &Lambda) -> VarSet {
    let mut out = VarSet::new();
    let mut bound: Vec<Var> = lam.params.clone();
    collect(&lam.body, &mut bound, &mut out);
    out
}

fn collect(e: &Expr, bound: &mut Vec<Var>, out: &mut VarSet) {
    let use_var = |v: &Var, bound: &Vec<Var>, out: &mut VarSet| {
        if !bound.contains(v) {
            out.insert(v.clone());
        }
    };
    match e {
        Expr::Var(v) | Expr::TokenOf(v) => use_var(v, bound, out),
        Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) | Expr::NullToken => {}
        Expr::App(f, args) => {
            collect(f, bound, out);
            for a in args {
                collect(a, bound, out);
            }
        }
        Expr::Call(_, args) | Expr::Prim(_, args) => {
            for a in args {
                collect(a, bound, out);
            }
        }
        Expr::Lam(lam) => {
            let n = bound.len();
            bound.extend(lam.params.iter().cloned());
            collect(&lam.body, bound, out);
            bound.truncate(n);
        }
        Expr::Con { args, reuse, .. } => {
            if let Some(t) = reuse {
                use_var(t, bound, out);
            }
            for a in args {
                collect(a, bound, out);
            }
        }
        Expr::Let { var, rhs, body } => {
            collect(rhs, bound, out);
            bound.push(var.clone());
            collect(body, bound, out);
            bound.pop();
        }
        Expr::Seq(a, b) => {
            collect(a, bound, out);
            collect(b, bound, out);
        }
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            use_var(scrutinee, bound, out);
            for arm in arms {
                let n = bound.len();
                bound.extend(arm.binders.iter().flatten().cloned());
                if let Some(t) = &arm.reuse_token {
                    bound.push(t.clone());
                }
                collect(&arm.body, bound, out);
                bound.truncate(n);
            }
            if let Some(d) = default {
                collect(d, bound, out);
            }
        }
        Expr::Dup(v, e)
        | Expr::Drop(v, e)
        | Expr::Free(v, e)
        | Expr::DecRef(v, e)
        | Expr::DropToken(v, e) => {
            use_var(v, bound, out);
            collect(e, bound, out);
        }
        Expr::DropReuse { var, token, body } => {
            use_var(var, bound, out);
            bound.push(token.clone());
            collect(body, bound, out);
            bound.pop();
        }
        Expr::IsUnique {
            var,
            unique,
            shared,
            ..
        } => {
            use_var(var, bound, out);
            collect(unique, bound, out);
            collect(shared, bound, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::Lambda;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn let_binds() {
        let x = v(0, "x");
        let y = v(1, "y");
        let e = Expr::let_(x.clone(), Expr::Var(y.clone()), Expr::Var(x.clone()));
        let fv = free_vars(&e);
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
    }

    #[test]
    fn lambda_params_bound() {
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Lambda {
            params: vec![x.clone()],
            captures: vec![],
            body: Box::new(Expr::App(
                Box::new(Expr::Var(y.clone())),
                vec![Expr::Var(x.clone())],
            )),
        };
        let fv = lambda_free_vars(&lam);
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&y));
    }

    #[test]
    fn match_binders_and_token_bound() {
        use crate::ir::expr::Arm;
        use crate::ir::program::CtorId;
        let s = v(0, "s");
        let h = v(1, "h");
        let t = v(2, "t");
        let ru = v(3, "ru");
        let e = Expr::Match {
            scrutinee: s.clone(),
            arms: vec![Arm {
                ctor: CtorId(0),
                binders: vec![Some(h.clone()), Some(t.clone())],
                reuse_token: Some(ru.clone()),
                body: Expr::Con {
                    ctor: CtorId(0),
                    args: vec![Expr::Var(h.clone()), Expr::Var(t.clone())],
                    reuse: Some(ru.clone()),
                    skip: vec![],
                },
            }],
            default: None,
        };
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&s));
    }

    #[test]
    fn rc_instructions_use_their_var() {
        let x = v(0, "x");
        let fv = free_vars(&Expr::dup(x.clone(), Expr::unit()));
        assert!(fv.contains(&x));
        let fv = free_vars(&Expr::TokenOf(x.clone()));
        assert!(fv.contains(&x));
    }

    #[test]
    fn drop_reuse_binds_token() {
        let x = v(0, "x");
        let t = v(1, "ru");
        let e = Expr::DropReuse {
            var: x.clone(),
            token: t.clone(),
            body: Box::new(Expr::Var(t.clone())),
        };
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&x));
    }
}
