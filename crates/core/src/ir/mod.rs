//! The λ¹ core intermediate representation (Fig. 4 of the paper) plus
//! the pass-introduced reference-counting instruction forms (Fig. 1).

pub mod builder;
pub mod erase;
pub mod expr;
pub mod fv;
pub mod pretty;
pub mod program;
pub mod var;
pub mod wf;

pub use erase::{erase, erase_program};
pub use expr::{Arm, Expr, Lambda, Lit, PrimOp};
pub use fv::{free_vars, lambda_free_vars};
pub use program::{CtorId, CtorInfo, DataId, DataInfo, FunDef, FunId, Program, TypeTable};
pub use var::{Var, VarGen, VarSet};
