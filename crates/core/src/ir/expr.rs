//! The expression language of the λ¹ core calculus (Fig. 4 of the paper),
//! extended with the instruction forms produced by the Perceus passes
//! (Fig. 1): `dup`, `drop`, `drop-reuse`, `is-unique`, `free`, `decref`,
//! reuse tokens and constructor-with-reuse.
//!
//! The surface front end produces only the *user fragment* (everything
//! except the reference-counting forms); the passes in
//! [`crate::passes`] introduce the rest. [`Expr::is_user_fragment`]
//! documents the split.

use super::program::{CtorId, FunId};
use super::var::Var;
use std::fmt;

/// Literal values. Literals are *value types* in the sense of §2.7.1 of
/// the paper: they are not heap allocated and take no part in reference
/// counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lit {
    /// Machine integer (Koka's `int` specialized to 63-bit-ish range).
    Int(i64),
    /// The unit value `()`.
    Unit,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(i) => write!(f, "{i}"),
            Lit::Unit => write!(f, "()"),
        }
    }
}

/// Primitive operations on value types, plus the effectful primitives of
/// §2.7 (mutable references, thread sharing, console output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on zero, like Koka's `exn` effect made
    /// explicit).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negation.
    Neg,
    /// Comparisons; produce the built-in `bool` data type.
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Minimum / maximum of two integers.
    Min,
    Max,
    /// `ref(v)` — allocate a first-class mutable reference cell (§2.7.3).
    RefNew,
    /// `!r` — read a mutable reference (dups the content, per §2.7.3).
    RefGet,
    /// `r := v` — write a mutable reference (drops the old content).
    RefSet,
    /// `tshare(v)` — mark a value and its children as thread-shared so
    /// that subsequent RC operations use the atomic path (§2.7.2).
    TShare,
    /// `println(v)` — print an integer (or unit) to the run's output sink.
    Println,
}

impl PrimOp {
    /// Number of arguments the primitive expects.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg | PrimOp::RefNew | PrimOp::RefGet | PrimOp::TShare | PrimOp::Println => 1,
            PrimOp::Add
            | PrimOp::Sub
            | PrimOp::Mul
            | PrimOp::Div
            | PrimOp::Rem
            | PrimOp::Lt
            | PrimOp::Le
            | PrimOp::Gt
            | PrimOp::Ge
            | PrimOp::Eq
            | PrimOp::Ne
            | PrimOp::Min
            | PrimOp::Max
            | PrimOp::RefSet => 2,
        }
    }

    /// The surface-level name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Rem => "%",
            PrimOp::Neg => "neg",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Eq => "==",
            PrimOp::Ne => "!=",
            PrimOp::Min => "min",
            PrimOp::Max => "max",
            PrimOp::RefNew => "ref",
            PrimOp::RefGet => "deref",
            PrimOp::RefSet => ":=",
            PrimOp::TShare => "tshare",
            PrimOp::Println => "println",
        }
    }

    /// A stable identifier-safe name, one per variant (`add`, `ref_get`,
    /// …). Code generators use this to name per-primitive helper
    /// functions, so the emitter and its runtime shim agree on spelling
    /// by construction.
    pub fn ident(self) -> &'static str {
        match self {
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Div => "div",
            PrimOp::Rem => "rem",
            PrimOp::Neg => "neg",
            PrimOp::Lt => "lt",
            PrimOp::Le => "le",
            PrimOp::Gt => "gt",
            PrimOp::Ge => "ge",
            PrimOp::Eq => "eq",
            PrimOp::Ne => "ne",
            PrimOp::Min => "min",
            PrimOp::Max => "max",
            PrimOp::RefNew => "ref_new",
            PrimOp::RefGet => "ref_get",
            PrimOp::RefSet => "ref_set",
            PrimOp::TShare => "tshare",
            PrimOp::Println => "println",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lambda abstraction.
///
/// Following the paper's `λʸˢ x. e` form, the captured free variables are
/// recorded explicitly: allocating the closure *consumes* one ownership
/// of each capture (rule *lam* / `(lamᵣ)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameters (the paper is unary; we allow the obvious n-ary
    /// generalization that Koka and Lean both use).
    pub params: Vec<Var>,
    /// The captured environment `ys` — exactly the free variables of the
    /// lambda, in ascending id order.
    pub captures: Vec<Var>,
    /// The body.
    pub body: Box<Expr>,
}

/// One arm of a flat `match`.
///
/// After lowering, every scrutinee is a variable and every pattern is a
/// single constructor with variable binders (the nested patterns of the
/// surface language are compiled away by the match compiler in
/// `perceus-lang`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// The constructor this arm matches.
    pub ctor: CtorId,
    /// One binder per field; `None` is a wildcard the arm never names.
    pub binders: Vec<Option<Var>>,
    /// When reuse analysis (§2.4) paired this arm with a constructor
    /// allocation of the same size, the token variable bound by
    /// `drop-reuse` at the start of the arm.
    pub reuse_token: Option<Var>,
    /// The arm body.
    pub body: Expr,
}

/// Expressions of the core language.
///
/// The *user fragment* — what the front end produces — consists of
/// `Var`, `Lit`, `Global`, `App`, `Call`, `Prim`, `Lam`, `Con` (with
/// `reuse: None`), `Let`, `Match` (with `reuse_token: None`), `Seq` and
/// `Abort`. All remaining forms are reference-counting instructions that
/// only the passes introduce; they are rendered with a distinct syntax by
/// the pretty printer, mirroring the paper's gray-background convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable occurrence. Under the owned calling convention this
    /// *consumes* one ownership of the variable.
    Var(Var),
    /// A literal (value type — never reference counted).
    Lit(Lit),
    /// A reference to a top-level function used as a first-class value.
    /// Globals live for the whole program and are not reference counted.
    Global(FunId),
    /// Indirect application `e(e₁, …, eₙ)` of a closure or global value.
    App(Box<Expr>, Vec<Expr>),
    /// Direct call of a known top-level function (no closure allocation).
    Call(FunId, Vec<Expr>),
    /// Primitive application.
    Prim(PrimOp, Vec<Expr>),
    /// Lambda abstraction (allocates a closure).
    Lam(Lambda),
    /// Constructor application, possibly with a reuse token (`Con@ru` of
    /// §2.4) and, after reuse specialization (§2.5), a `skip` mask
    /// recording which field writes can be elided when the token is
    /// valid because the field already holds exactly that value.
    Con {
        ctor: CtorId,
        args: Vec<Expr>,
        /// Reuse token variable, if reuse analysis attached one.
        reuse: Option<Var>,
        /// `skip[i]` ⇒ when reusing in place, field `i` already contains
        /// `args[i]` and the write is skipped. Empty means "write all".
        skip: Vec<bool>,
    },
    /// `val x = e₁; e₂`.
    Let {
        var: Var,
        rhs: Box<Expr>,
        body: Box<Expr>,
    },
    /// Sequencing `e₁; e₂` (evaluate `e₁` for effect, discard the unit
    /// result). Used for statement-position RC instructions.
    Seq(Box<Expr>, Box<Expr>),
    /// Flat match on a variable. `default` catches any constructor not
    /// listed in `arms` (produced by the match compiler).
    Match {
        scrutinee: Var,
        arms: Vec<Arm>,
        default: Option<Box<Expr>>,
    },
    /// Runtime failure with a message (non-exhaustive match, division by
    /// zero made explicit, …).
    Abort(String),

    // ---- reference-counting instructions (pass-introduced) ----
    /// `dup x; e` — increment the reference count of `x`.
    Dup(Var, Box<Expr>),
    /// `drop x; e` — decrement; free recursively on zero.
    Drop(Var, Box<Expr>),
    /// `val token = drop-reuse x; e` — like `drop`, but when `x` is
    /// unique its memory is returned as a reuse token (§2.4).
    DropReuse {
        var: Var,
        token: Var,
        body: Box<Expr>,
    },
    /// `free x; e` — free the cell of `x` *only* (its children's
    /// ownership has been transferred to the surrounding arm's binders).
    /// Only valid in the unique branch of an [`Expr::IsUnique`].
    Free(Var, Box<Expr>),
    /// `decref x; e` — decrement without the zero check. Only valid in
    /// the shared branch of an [`Expr::IsUnique`] (count is ≥ 2).
    DecRef(Var, Box<Expr>),
    /// `drop-token t; e` — release an unused reuse token (frees the held
    /// memory if the token is valid).
    DropToken(Var, Box<Expr>),
    /// `if is-unique(x) then e₁ else e₂` — the runtime uniqueness test
    /// that drop/drop-reuse specialization expands into (Fig. 1c/1f).
    /// `binders` are the match binders of `x`'s arm whose ownership is
    /// transferred into the unique branch.
    IsUnique {
        var: Var,
        binders: Vec<Var>,
        unique: Box<Expr>,
        shared: Box<Expr>,
    },
    /// `&x` — claim the memory of `x` as a valid reuse token. Only valid
    /// in the unique branch of an [`Expr::IsUnique`] on `x`.
    TokenOf(Var),
    /// The null reuse token (allocate fresh).
    NullToken,
}

impl Expr {
    /// The unit literal.
    pub fn unit() -> Expr {
        Expr::Lit(Lit::Unit)
    }

    /// An integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Lit::Int(i))
    }

    /// `val var = rhs; body`.
    pub fn let_(var: Var, rhs: Expr, body: Expr) -> Expr {
        Expr::Let {
            var,
            rhs: Box::new(rhs),
            body: Box::new(body),
        }
    }

    /// `e1; e2`.
    pub fn seq(e1: Expr, e2: Expr) -> Expr {
        Expr::Seq(Box::new(e1), Box::new(e2))
    }

    /// `dup x; e`.
    pub fn dup(x: Var, e: Expr) -> Expr {
        Expr::Dup(x, Box::new(e))
    }

    /// `drop x; e`.
    pub fn drop_(x: Var, e: Expr) -> Expr {
        Expr::Drop(x, Box::new(e))
    }

    /// Wraps `e` in `dup` instructions for each variable (in order).
    pub fn dup_all<I: IntoIterator<Item = Var>>(vars: I, e: Expr) -> Expr
    where
        I::IntoIter: DoubleEndedIterator,
    {
        vars.into_iter().rev().fold(e, |acc, v| Expr::dup(v, acc))
    }

    /// Wraps `e` in `drop` instructions for each variable (in order).
    pub fn drop_all<I: IntoIterator<Item = Var>>(vars: I, e: Expr) -> Expr
    where
        I::IntoIter: DoubleEndedIterator,
    {
        vars.into_iter().rev().fold(e, |acc, v| Expr::drop_(v, acc))
    }

    /// True when the expression is an *atom*: a trivial value whose
    /// evaluation allocates nothing and cannot diverge. ANF normalization
    /// ([`crate::passes::normalize`]) arranges for all argument positions
    /// to hold atoms.
    pub fn is_atom(&self) -> bool {
        matches!(self, Expr::Var(_) | Expr::Lit(_) | Expr::Global(_))
    }

    /// True when the expression belongs to the user fragment (contains no
    /// pass-introduced reference-counting instruction anywhere).
    pub fn is_user_fragment(&self) -> bool {
        let mut user = true;
        self.visit(&mut |e| match e {
            Expr::Dup(..)
            | Expr::Drop(..)
            | Expr::DropReuse { .. }
            | Expr::Free(..)
            | Expr::DecRef(..)
            | Expr::DropToken(..)
            | Expr::IsUnique { .. }
            | Expr::TokenOf(_)
            | Expr::NullToken => user = false,
            Expr::Con { reuse, .. } if reuse.is_some() => user = false,
            Expr::Match { arms, .. } if arms.iter().any(|a| a.reuse_token.is_some()) => {
                user = false
            }
            _ => {}
        });
        user
    }

    /// Calls `f` on this expression and every sub-expression, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Var(_)
            | Expr::Lit(_)
            | Expr::Global(_)
            | Expr::Abort(_)
            | Expr::TokenOf(_)
            | Expr::NullToken => {}
            Expr::App(fun, args) => {
                fun.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Call(_, args) | Expr::Prim(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Lam(lam) => lam.body.visit(f),
            Expr::Con { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Let { rhs, body, .. } => {
                rhs.visit(f);
                body.visit(f);
            }
            Expr::Seq(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Match { arms, default, .. } => {
                for arm in arms {
                    arm.body.visit(f);
                }
                if let Some(d) = default {
                    d.visit(f);
                }
            }
            Expr::Dup(_, e)
            | Expr::Drop(_, e)
            | Expr::Free(_, e)
            | Expr::DecRef(_, e)
            | Expr::DropToken(_, e) => e.visit(f),
            Expr::DropReuse { body, .. } => body.visit(f),
            Expr::IsUnique { unique, shared, .. } => {
                unique.visit(f);
                shared.visit(f);
            }
        }
    }

    /// Counts the nodes of the expression tree (used by the inliner's
    /// size heuristic and by tests).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn primop_arities() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Neg.arity(), 1);
        assert_eq!(PrimOp::Println.arity(), 1);
        assert_eq!(PrimOp::RefSet.arity(), 2);
    }

    #[test]
    fn user_fragment_detection() {
        let x = v(0, "x");
        let plain = Expr::let_(x.clone(), Expr::int(1), Expr::Var(x.clone()));
        assert!(plain.is_user_fragment());
        let with_rc = Expr::dup(x.clone(), plain.clone());
        assert!(!with_rc.is_user_fragment());
        let deep = Expr::let_(
            x.clone(),
            Expr::drop_(x.clone(), Expr::unit()),
            Expr::unit(),
        );
        assert!(!deep.is_user_fragment());
    }

    #[test]
    fn dup_all_preserves_order() {
        let a = v(0, "a");
        let b = v(1, "b");
        let e = Expr::dup_all([a.clone(), b.clone()], Expr::unit());
        match e {
            Expr::Dup(first, rest) => {
                assert_eq!(first, a);
                match *rest {
                    Expr::Dup(second, _) => assert_eq!(second, b),
                    other => panic!("expected inner dup, got {other:?}"),
                }
            }
            other => panic!("expected dup, got {other:?}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let x = v(0, "x");
        let e = Expr::let_(x.clone(), Expr::int(1), Expr::Var(x));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn atoms() {
        assert!(Expr::int(1).is_atom());
        assert!(Expr::Var(v(0, "x")).is_atom());
        assert!(!Expr::seq(Expr::unit(), Expr::unit()).is_atom());
    }
}
