//! Whole-program structure: data type declarations, top-level functions,
//! and the tables that describe constructors.

use super::expr::Expr;
use super::var::{Var, VarGen};
use std::fmt;
use std::sync::Arc;

/// Identifies a data type declaration in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub u32);

/// Identifies a constructor in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtorId(pub u32);

/// Identifies a top-level function in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunId(pub u32);

/// Description of one constructor.
#[derive(Debug, Clone)]
pub struct CtorInfo {
    /// Source name, e.g. `Cons`.
    pub name: Arc<str>,
    /// The data type this constructor belongs to.
    pub data: DataId,
    /// Tag within the data type (0-based declaration order).
    pub tag: u32,
    /// Number of fields. Arity-0 constructors are *singletons*: they are
    /// represented as immediate values at runtime and are never heap
    /// allocated nor reference counted (like Koka's `Nil`/`Leaf`/`True`).
    pub arity: usize,
    /// Field names for diagnostics (empty strings when unnamed).
    pub field_names: Vec<Arc<str>>,
    /// Source byte span of the declaration, when the constructor came
    /// from surface source (`None` for builder-made programs). The
    /// profiler and analysis layers use this to map constructor ids
    /// back to source locations.
    pub span: Option<(u32, u32)>,
}

/// Description of one data type.
#[derive(Debug, Clone)]
pub struct DataInfo {
    /// Source name, e.g. `list`.
    pub name: Arc<str>,
    /// Constructors in declaration order.
    pub ctors: Vec<CtorId>,
}

/// All data types and constructors of a program.
///
/// A fresh table always contains the built-in `bool` type with singleton
/// constructors `False` (tag 0) and `True` (tag 1), which the comparison
/// primitives produce and `if` consumes.
#[derive(Debug, Clone)]
pub struct TypeTable {
    datas: Vec<DataInfo>,
    ctors: Vec<CtorInfo>,
}

impl TypeTable {
    /// The built-in `bool` data type.
    pub const BOOL: DataId = DataId(0);
    /// The built-in `False` constructor (singleton).
    pub const FALSE: CtorId = CtorId(0);
    /// The built-in `True` constructor (singleton).
    pub const TRUE: CtorId = CtorId(1);

    /// Creates a table containing only the built-in `bool` type.
    pub fn new() -> Self {
        let mut t = TypeTable {
            datas: Vec::new(),
            ctors: Vec::new(),
        };
        let b = t.add_data("bool");
        let f = t.add_ctor(b, "False", Vec::new());
        let tr = t.add_ctor(b, "True", Vec::new());
        debug_assert_eq!(b, Self::BOOL);
        debug_assert_eq!(f, Self::FALSE);
        debug_assert_eq!(tr, Self::TRUE);
        t
    }

    /// Declares a new data type with no constructors yet.
    pub fn add_data(&mut self, name: impl Into<Arc<str>>) -> DataId {
        let id = DataId(self.datas.len() as u32);
        self.datas.push(DataInfo {
            name: name.into(),
            ctors: Vec::new(),
        });
        id
    }

    /// Adds a constructor to `data`. Field names may be empty strings.
    pub fn add_ctor(
        &mut self,
        data: DataId,
        name: impl Into<Arc<str>>,
        field_names: Vec<Arc<str>>,
    ) -> CtorId {
        let id = CtorId(self.ctors.len() as u32);
        let tag = self.datas[data.0 as usize].ctors.len() as u32;
        self.ctors.push(CtorInfo {
            name: name.into(),
            data,
            tag,
            arity: field_names.len(),
            field_names,
            span: None,
        });
        self.datas[data.0 as usize].ctors.push(id);
        id
    }

    /// Records the source byte span of a constructor declaration (the
    /// front end calls this right after [`TypeTable::add_ctor`]).
    pub fn set_ctor_span(&mut self, id: CtorId, span: (u32, u32)) {
        self.ctors[id.0 as usize].span = Some(span);
    }

    /// Convenience: adds a constructor with `arity` unnamed fields.
    pub fn add_ctor_arity(
        &mut self,
        data: DataId,
        name: impl Into<Arc<str>>,
        arity: usize,
    ) -> CtorId {
        self.add_ctor(data, name, vec![Arc::from(""); arity])
    }

    /// Looks up a constructor.
    pub fn ctor(&self, id: CtorId) -> &CtorInfo {
        &self.ctors[id.0 as usize]
    }

    /// Looks up a data type.
    pub fn data(&self, id: DataId) -> &DataInfo {
        &self.datas[id.0 as usize]
    }

    /// Number of constructors.
    pub fn ctor_count(&self) -> usize {
        self.ctors.len()
    }

    /// Number of data types.
    pub fn data_count(&self) -> usize {
        self.datas.len()
    }

    /// Iterates all constructors with their ids.
    pub fn ctors(&self) -> impl Iterator<Item = (CtorId, &CtorInfo)> + '_ {
        self.ctors
            .iter()
            .enumerate()
            .map(|(i, c)| (CtorId(i as u32), c))
    }

    /// Finds a constructor by name (linear scan; front-end use only).
    pub fn find_ctor(&self, name: &str) -> Option<CtorId> {
        self.ctors()
            .find(|(_, c)| &*c.name == name)
            .map(|(id, _)| id)
    }
}

impl Default for TypeTable {
    fn default() -> Self {
        TypeTable::new()
    }
}

/// A top-level function definition.
#[derive(Debug, Clone)]
pub struct FunDef {
    /// Source name.
    pub name: Arc<str>,
    /// Parameters, owned by the function body (owned calling convention:
    /// the callee is in charge of consuming each parameter, §2.2).
    pub params: Vec<Var>,
    /// The body expression.
    pub body: Expr,
}

/// A whole program: type table, top-level functions, and the entry point.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All data types and constructors.
    pub types: TypeTable,
    /// Top-level functions; `FunId(i)` indexes this vector.
    pub funs: Vec<FunDef>,
    /// The function evaluated by `run` (usually `main`).
    pub entry: Option<FunId>,
    /// Fresh-variable generator positioned past every id in the program.
    pub var_gen: VarGen,
    /// Per-function borrow masks (`borrows[f][i]` ⇒ parameter `i` of
    /// function `f` is *borrowed*, §6 / the Lean convention). Empty
    /// means every parameter is owned — the paper's default, which is
    /// what keeps programs garbage-free. Filled by the opt-in
    /// [`passes::borrow`](crate::passes::borrow) pass.
    pub borrows: Vec<Vec<bool>>,
    /// Source byte spans of the function definitions, indexed like
    /// `funs` (empty for builder-made programs, which have no source).
    /// Filled by the front end; passes never add or remove functions,
    /// so the table stays aligned with `FunId` through the pipeline and
    /// into the backend's `Compiled` form.
    pub fun_spans: Vec<(u32, u32)>,
}

impl Program {
    /// An empty program (only the built-in `bool` type).
    pub fn new() -> Self {
        Program {
            types: TypeTable::new(),
            funs: Vec::new(),
            entry: None,
            var_gen: VarGen::default(),
            borrows: Vec::new(),
            fun_spans: Vec::new(),
        }
    }

    /// Adds a function and returns its id.
    pub fn add_fun(&mut self, def: FunDef) -> FunId {
        let id = FunId(self.funs.len() as u32);
        self.funs.push(def);
        id
    }

    /// Looks up a function.
    pub fn fun(&self, id: FunId) -> &FunDef {
        &self.funs[id.0 as usize]
    }

    /// Finds a function by name (linear scan; front-end and test use).
    pub fn find_fun(&self, name: &str) -> Option<FunId> {
        self.funs
            .iter()
            .position(|f| &*f.name == name)
            .map(|i| FunId(i as u32))
    }

    /// The borrow mask for a function (`None` when every parameter is
    /// owned — the default convention).
    pub fn borrow_mask(&self, id: FunId) -> Option<&[bool]> {
        self.borrows
            .get(id.0 as usize)
            .map(|m| m.as_slice())
            .filter(|m| m.iter().any(|b| *b))
    }

    /// Iterates functions with their ids.
    pub fn funs(&self) -> impl Iterator<Item = (FunId, &FunDef)> + '_ {
        self.funs
            .iter()
            .enumerate()
            .map(|(i, f)| (FunId(i as u32), f))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        super::pretty::write_program(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_bool_is_present() {
        let t = TypeTable::new();
        assert_eq!(&*t.ctor(TypeTable::TRUE).name, "True");
        assert_eq!(&*t.ctor(TypeTable::FALSE).name, "False");
        assert_eq!(t.ctor(TypeTable::TRUE).arity, 0);
        assert_eq!(t.ctor(TypeTable::TRUE).data, TypeTable::BOOL);
        assert_eq!(t.ctor(TypeTable::TRUE).tag, 1);
    }

    #[test]
    fn add_data_and_ctors() {
        let mut t = TypeTable::new();
        let list = t.add_data("list");
        let nil = t.add_ctor_arity(list, "Nil", 0);
        let cons = t.add_ctor(list, "Cons", vec!["head".into(), "tail".into()]);
        assert_eq!(t.ctor(cons).arity, 2);
        assert_eq!(t.ctor(nil).arity, 0);
        assert_eq!(t.data(list).ctors, vec![nil, cons]);
        assert_eq!(t.find_ctor("Cons"), Some(cons));
        assert_eq!(t.find_ctor("Snoc"), None);
    }

    #[test]
    fn program_functions() {
        let mut p = Program::new();
        let f = p.add_fun(FunDef {
            name: "id".into(),
            params: vec![Var::new(0, "x")],
            body: Expr::Var(Var::new(0, "x")),
        });
        assert_eq!(p.find_fun("id"), Some(f));
        assert_eq!(&*p.fun(f).name, "id");
        assert_eq!(p.funs().count(), 1);
    }
}
