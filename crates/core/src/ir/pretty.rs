//! Pretty printer for core programs and expressions.
//!
//! Reference-counting instructions are printed in the paper's notation:
//! `dup x; e`, `drop x; e`, `val ru = drop-reuse x; e`,
//! `if is-unique(x) { … } else { … }` and `Cons@ru(…)`.

use super::expr::{Arm, Expr, Lambda};
use super::program::{FunDef, Program, TypeTable};
use std::fmt;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    write_program(&mut s, p).expect("writing to String cannot fail");
    s
}

/// Renders one expression using `types` for constructor names.
pub fn expr_to_string(e: &Expr, types: &TypeTable) -> String {
    let mut s = String::new();
    let mut pr = Printer::new(&mut s, types);
    pr.expr(e, 0).expect("writing to String cannot fail");
    s
}

/// Writes a whole program to `out` (used by `Display for Program`).
pub fn write_program(out: &mut dyn fmt::Write, p: &Program) -> fmt::Result {
    for (di, data) in (0..p.types.data_count()).map(|i| {
        let id = super::program::DataId(i as u32);
        (id, p.types.data(id))
    }) {
        if di == TypeTable::BOOL {
            continue; // built-in
        }
        write!(out, "type {} {{ ", data.name)?;
        for (i, c) in data.ctors.iter().enumerate() {
            if i > 0 {
                write!(out, "; ")?;
            }
            let info = p.types.ctor(*c);
            write!(out, "{}", info.name)?;
            if info.arity > 0 {
                write!(out, "/{}", info.arity)?;
            }
        }
        writeln!(out, " }}")?;
    }
    for (_, f) in p.funs() {
        write_fun(out, f, &p.types)?;
    }
    Ok(())
}

/// Writes one function definition.
pub fn write_fun(out: &mut dyn fmt::Write, f: &FunDef, types: &TypeTable) -> fmt::Result {
    write!(out, "fun {}(", f.name)?;
    for (i, par) in f.params.iter().enumerate() {
        if i > 0 {
            write!(out, ", ")?;
        }
        write!(out, "{par}")?;
    }
    writeln!(out, ") {{")?;
    let mut pr = Printer::new(out, types);
    pr.indented(|pr| pr.stmt_line(&f.body, 1))?;
    writeln!(out, "}}")
}

struct Printer<'a> {
    out: &'a mut dyn fmt::Write,
    types: &'a TypeTable,
}

impl<'a> Printer<'a> {
    fn new(out: &'a mut dyn fmt::Write, types: &'a TypeTable) -> Self {
        Printer { out, types }
    }

    fn indented(&mut self, f: impl FnOnce(&mut Self) -> fmt::Result) -> fmt::Result {
        f(self)
    }

    fn indent(&mut self, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            self.out.write_str("  ")?;
        }
        Ok(())
    }

    /// Prints `e` as an indented statement sequence ending in a newline.
    fn stmt_line(&mut self, e: &Expr, depth: usize) -> fmt::Result {
        match e {
            Expr::Let { var, rhs, body } => {
                self.indent(depth)?;
                write!(self.out, "val {var} = ")?;
                self.inline_or_block(rhs, depth)?;
                self.out.write_char('\n')?;
                self.stmt_line(body, depth)
            }
            Expr::Seq(a, b) => {
                self.indent(depth)?;
                self.inline_or_block(a, depth)?;
                self.out.write_char('\n')?;
                self.stmt_line(b, depth)
            }
            Expr::Dup(x, rest) => {
                self.indent(depth)?;
                writeln!(self.out, "dup {x}")?;
                self.stmt_line(rest, depth)
            }
            Expr::Drop(x, rest) => {
                self.indent(depth)?;
                writeln!(self.out, "drop {x}")?;
                self.stmt_line(rest, depth)
            }
            Expr::Free(x, rest) => {
                self.indent(depth)?;
                writeln!(self.out, "free {x}")?;
                self.stmt_line(rest, depth)
            }
            Expr::DecRef(x, rest) => {
                self.indent(depth)?;
                writeln!(self.out, "decref {x}")?;
                self.stmt_line(rest, depth)
            }
            Expr::DropToken(x, rest) => {
                self.indent(depth)?;
                writeln!(self.out, "drop-token {x}")?;
                self.stmt_line(rest, depth)
            }
            Expr::DropReuse { var, token, body } => {
                self.indent(depth)?;
                writeln!(self.out, "val {token} = drop-reuse {var}")?;
                self.stmt_line(body, depth)
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                self.indent(depth)?;
                writeln!(self.out, "match {scrutinee} {{")?;
                for arm in arms {
                    self.arm(arm, depth + 1)?;
                }
                if let Some(d) = default {
                    self.indent(depth + 1)?;
                    writeln!(self.out, "_ ->")?;
                    self.stmt_line(d, depth + 2)?;
                }
                self.indent(depth)?;
                writeln!(self.out, "}}")
            }
            Expr::IsUnique {
                var,
                unique,
                shared,
                ..
            } => {
                self.indent(depth)?;
                writeln!(self.out, "if is-unique({var}) {{")?;
                self.stmt_line(unique, depth + 1)?;
                self.indent(depth)?;
                writeln!(self.out, "}} else {{")?;
                self.stmt_line(shared, depth + 1)?;
                self.indent(depth)?;
                writeln!(self.out, "}}")
            }
            _ => {
                self.indent(depth)?;
                self.expr(e, depth)?;
                self.out.write_char('\n')
            }
        }
    }

    /// Prints an rhs: simple expressions inline, compound ones as blocks.
    fn inline_or_block(&mut self, e: &Expr, depth: usize) -> fmt::Result {
        match e {
            Expr::Match { .. }
            | Expr::IsUnique { .. }
            | Expr::Let { .. }
            | Expr::Seq(..)
            | Expr::Dup(..)
            | Expr::Drop(..)
            | Expr::DropReuse { .. }
            | Expr::Free(..)
            | Expr::DecRef(..)
            | Expr::DropToken(..) => {
                writeln!(self.out, "{{")?;
                self.stmt_line(e, depth + 1)?;
                self.indent(depth)?;
                self.out.write_char('}')
            }
            _ => self.expr(e, depth),
        }
    }

    fn arm(&mut self, arm: &Arm, depth: usize) -> fmt::Result {
        self.indent(depth)?;
        let info = self.types.ctor(arm.ctor);
        write!(self.out, "{}", info.name)?;
        if !arm.binders.is_empty() {
            self.out.write_char('(')?;
            for (i, b) in arm.binders.iter().enumerate() {
                if i > 0 {
                    self.out.write_str(", ")?;
                }
                match b {
                    Some(v) => write!(self.out, "{v}")?,
                    None => self.out.write_char('_')?,
                }
            }
            self.out.write_char(')')?;
        }
        if let Some(t) = &arm.reuse_token {
            write!(self.out, " @{t}")?;
        }
        writeln!(self.out, " ->")?;
        self.stmt_line(&arm.body, depth + 1)
    }

    fn expr(&mut self, e: &Expr, depth: usize) -> fmt::Result {
        match e {
            Expr::Var(v) => write!(self.out, "{v}"),
            Expr::Lit(l) => write!(self.out, "{l}"),
            Expr::Global(f) => write!(self.out, "@fun{}", f.0),
            Expr::App(f, args) => {
                self.expr(f, depth)?;
                self.args(args, depth)
            }
            Expr::Call(f, args) => {
                write!(self.out, "@fun{}", f.0)?;
                self.args(args, depth)
            }
            Expr::Prim(op, args) => {
                write!(self.out, "{}", op.name())?;
                self.args(args, depth)
            }
            Expr::Lam(Lambda {
                params, captures, ..
            }) => {
                self.out.write_str("fn")?;
                if !captures.is_empty() {
                    self.out.write_char('[')?;
                    for (i, c) in captures.iter().enumerate() {
                        if i > 0 {
                            self.out.write_str(", ")?;
                        }
                        write!(self.out, "{c}")?;
                    }
                    self.out.write_char(']')?;
                }
                self.out.write_char('(')?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.write_str(", ")?;
                    }
                    write!(self.out, "{p}")?;
                }
                self.out.write_str(") { … }")
            }
            Expr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => {
                let info = self.types.ctor(*ctor);
                write!(self.out, "{}", info.name)?;
                if let Some(t) = reuse {
                    write!(self.out, "@{t}")?;
                }
                if !args.is_empty() {
                    self.out.write_char('(')?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.write_str(", ")?;
                        }
                        if skip.get(i).copied().unwrap_or(false) {
                            self.out.write_char('=')?; // field kept in place
                        }
                        self.expr(a, depth)?;
                    }
                    self.out.write_char(')')?;
                }
                Ok(())
            }
            Expr::Abort(msg) => write!(self.out, "abort({msg:?})"),
            Expr::TokenOf(v) => write!(self.out, "&{v}"),
            Expr::NullToken => self.out.write_str("NULL"),
            // Compound forms in expression position: print as a block.
            other => {
                writeln!(self.out, "{{")?;
                self.stmt_line(other, depth + 1)?;
                self.indent(depth)?;
                self.out.write_char('}')
            }
        }
    }

    fn args(&mut self, args: &[Expr], depth: usize) -> fmt::Result {
        self.out.write_char('(')?;
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.write_str(", ")?;
            }
            self.expr(a, depth)?;
        }
        self.out.write_char(')')
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::var::Var;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn prints_rc_instructions() {
        let types = TypeTable::new();
        let x = v(0, "x");
        let e = Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::unit()));
        let s = expr_to_string(&e, &types);
        assert!(s.contains("dup x"), "{s}");
        assert!(s.contains("drop x"), "{s}");
    }

    #[test]
    fn prints_constructor_with_reuse() {
        let mut types = TypeTable::new();
        let list = types.add_data("list");
        let cons = types.add_ctor_arity(list, "Cons", 2);
        let ru = v(9, "ru");
        let e = Expr::Con {
            ctor: cons,
            args: vec![Expr::int(1), Expr::int(2)],
            reuse: Some(ru),
            skip: vec![false, true],
        };
        let s = expr_to_string(&e, &types);
        assert_eq!(s, "Cons@ru(1, =2)");
    }

    #[test]
    fn prints_is_unique_blocks() {
        let types = TypeTable::new();
        let x = v(0, "xs");
        let e = Expr::IsUnique {
            var: x.clone(),
            binders: vec![],
            unique: Box::new(Expr::Free(x.clone(), Box::new(Expr::unit()))),
            shared: Box::new(Expr::DecRef(x.clone(), Box::new(Expr::unit()))),
        };
        let s = expr_to_string(&e, &types);
        assert!(s.contains("if is-unique(xs)"), "{s}");
        assert!(s.contains("free xs"), "{s}");
        assert!(s.contains("decref xs"), "{s}");
    }

    #[test]
    fn prints_program() {
        use crate::ir::program::{FunDef, Program};
        let mut p = Program::new();
        let x = v(0, "x");
        p.add_fun(FunDef {
            name: "id".into(),
            params: vec![x.clone()],
            body: Expr::Var(x),
        });
        let s = program_to_string(&p);
        assert!(s.contains("fun id(x) {"), "{s}");
    }
}
