//! Well-formedness checking for core programs: scoping, arities, and
//! consistency of pass-introduced annotations. Run between passes in
//! debug builds and by the test suite to catch transformation bugs early.

use super::expr::{Expr, Lambda};
use super::fv::lambda_free_vars;
use super::program::{FunId, Program, TypeTable};
use super::var::Var;
use std::fmt;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfError {
    /// Function in which the violation occurred (`None` for table-level
    /// problems).
    pub fun: Option<FunId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fun {
            Some(id) => write!(f, "in function #{}: {}", id.0, self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for WfError {}

/// Checks the whole program; returns the first violation found.
pub fn check_program(p: &Program) -> Result<(), WfError> {
    if let Some(entry) = p.entry {
        if entry.0 as usize >= p.funs.len() {
            return Err(WfError {
                fun: None,
                message: format!("entry point #{} out of range", entry.0),
            });
        }
    }
    for (id, f) in p.funs() {
        let mut cx = Cx {
            p,
            fun: id,
            scope: Vec::new(),
        };
        for par in &f.params {
            if cx.scope.contains(par) {
                return Err(cx.err(format!("duplicate parameter {par:?}")));
            }
            cx.scope.push(par.clone());
        }
        cx.expr(&f.body)?;
    }
    Ok(())
}

struct Cx<'a> {
    p: &'a Program,
    fun: FunId,
    scope: Vec<Var>,
}

impl<'a> Cx<'a> {
    fn err(&self, message: String) -> WfError {
        WfError {
            fun: Some(self.fun),
            message,
        }
    }

    fn use_var(&self, v: &Var, what: &str) -> Result<(), WfError> {
        if self.scope.contains(v) {
            Ok(())
        } else {
            Err(self.err(format!("{what} {v:?} is not in scope")))
        }
    }

    fn bind(&mut self, v: &Var) -> Result<(), WfError> {
        // Shadowing by id is a pass bug: ids are globally unique.
        if self.scope.contains(v) {
            return Err(self.err(format!("rebinding of variable {v:?}")));
        }
        self.scope.push(v.clone());
        Ok(())
    }

    fn ctor_arity(&self, id: super::program::CtorId) -> Result<usize, WfError> {
        if id.0 as usize >= self.p.types.ctor_count() {
            return Err(self.err(format!("constructor #{} out of range", id.0)));
        }
        Ok(self.p.types.ctor(id).arity)
    }

    fn expr(&mut self, e: &Expr) -> Result<(), WfError> {
        match e {
            Expr::Var(v) => self.use_var(v, "variable"),
            Expr::Lit(_) | Expr::Abort(_) | Expr::NullToken => Ok(()),
            Expr::Global(f) | Expr::Call(f, _) if f.0 as usize >= self.p.funs.len() => {
                Err(self.err(format!("function #{} out of range", f.0)))
            }
            Expr::Global(_) => Ok(()),
            Expr::Call(f, args) => {
                let def = self.p.fun(*f);
                if def.params.len() != args.len() {
                    return Err(self.err(format!(
                        "call of {} with {} args, expected {}",
                        def.name,
                        args.len(),
                        def.params.len()
                    )));
                }
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            Expr::App(f, args) => {
                self.expr(f)?;
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            Expr::Prim(op, args) => {
                if op.arity() != args.len() {
                    return Err(self.err(format!(
                        "primitive {op} with {} args, expected {}",
                        args.len(),
                        op.arity()
                    )));
                }
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            Expr::Lam(lam) => self.lambda(lam),
            Expr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => {
                let arity = self.ctor_arity(*ctor)?;
                if args.len() != arity {
                    return Err(self.err(format!(
                        "constructor {} applied to {} args, expected {arity}",
                        self.p.types.ctor(*ctor).name,
                        args.len()
                    )));
                }
                if let Some(t) = reuse {
                    self.use_var(t, "reuse token")?;
                    if arity == 0 {
                        return Err(self.err("reuse token on a singleton constructor".to_string()));
                    }
                }
                if !skip.is_empty() {
                    if skip.len() != arity {
                        return Err(self.err("skip mask length mismatch".to_string()));
                    }
                    if reuse.is_none() {
                        return Err(self.err("skip mask without reuse token".to_string()));
                    }
                }
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            Expr::Let { var, rhs, body } => {
                self.expr(rhs)?;
                let n = self.scope.len();
                self.bind(var)?;
                self.expr(body)?;
                self.scope.truncate(n);
                Ok(())
            }
            Expr::Seq(a, b) => {
                self.expr(a)?;
                self.expr(b)
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                self.use_var(scrutinee, "scrutinee")?;
                for arm in arms {
                    let arity = self.ctor_arity(arm.ctor)?;
                    if arm.binders.len() != arity {
                        return Err(self.err(format!(
                            "pattern {} with {} binders, expected {arity}",
                            self.p.types.ctor(arm.ctor).name,
                            arm.binders.len()
                        )));
                    }
                    let n = self.scope.len();
                    for b in arm.binders.iter().flatten() {
                        self.bind(b)?;
                    }
                    if let Some(t) = &arm.reuse_token {
                        if arity == 0 {
                            return Err(self.err("reuse token on a singleton pattern".to_string()));
                        }
                        self.bind(t)?;
                    }
                    self.expr(&arm.body)?;
                    self.scope.truncate(n);
                }
                if let Some(d) = default {
                    self.expr(d)?;
                }
                Ok(())
            }
            Expr::Dup(v, rest)
            | Expr::Drop(v, rest)
            | Expr::Free(v, rest)
            | Expr::DecRef(v, rest)
            | Expr::DropToken(v, rest) => {
                self.use_var(v, "rc operand")?;
                self.expr(rest)
            }
            Expr::DropReuse { var, token, body } => {
                self.use_var(var, "drop-reuse operand")?;
                let n = self.scope.len();
                self.bind(token)?;
                self.expr(body)?;
                self.scope.truncate(n);
                Ok(())
            }
            Expr::IsUnique {
                var,
                binders,
                unique,
                shared,
            } => {
                self.use_var(var, "is-unique operand")?;
                for b in binders {
                    self.use_var(b, "is-unique binder")?;
                }
                self.expr(unique)?;
                self.expr(shared)
            }
            Expr::TokenOf(v) => self.use_var(v, "token-of operand"),
        }
    }

    fn lambda(&mut self, lam: &Lambda) -> Result<(), WfError> {
        // Captures must be exactly the free variables, each in scope.
        let fv = lambda_free_vars(lam);
        for c in &lam.captures {
            self.use_var(c, "capture")?;
        }
        let declared: super::var::VarSet = lam.captures.iter().cloned().collect();
        if declared != fv {
            return Err(self.err(format!(
                "lambda captures {declared:?} do not match free variables {fv:?}"
            )));
        }
        // The body is checked in its own scope: params + captures only.
        let saved = std::mem::take(&mut self.scope);
        for v in lam.captures.iter().chain(lam.params.iter()) {
            self.bind(v)?;
        }
        self.expr(&lam.body)?;
        self.scope = saved;
        Ok(())
    }
}

/// Convenience used by tests: panics with a readable message on error.
pub fn assert_well_formed(p: &Program) {
    if let Err(e) = check_program(p) {
        panic!("program not well-formed: {e}\n{p}");
    }
}

/// Returns true when the bool type is used consistently (both builtin
/// ctor ids resolve to the builtin data). Mostly a guard for hand-built
/// tables in tests.
pub fn bool_builtin_intact(types: &TypeTable) -> bool {
    types.ctor(TypeTable::TRUE).data == TypeTable::BOOL
        && types.ctor(TypeTable::FALSE).data == TypeTable::BOOL
        && types.ctor(TypeTable::TRUE).arity == 0
        && types.ctor(TypeTable::FALSE).arity == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::{Arm, Lit};
    use crate::ir::program::FunDef;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    fn prog_with_body(params: Vec<Var>, body: Expr) -> Program {
        let mut p = Program::new();
        p.add_fun(FunDef {
            name: "f".into(),
            params,
            body,
        });
        p
    }

    #[test]
    fn accepts_simple_program() {
        let x = v(0, "x");
        let p = prog_with_body(vec![x.clone()], Expr::Var(x));
        assert!(check_program(&p).is_ok());
    }

    #[test]
    fn rejects_unbound_variable() {
        let p = prog_with_body(vec![], Expr::Var(v(7, "ghost")));
        let err = check_program(&p).unwrap_err();
        assert!(err.message.contains("not in scope"), "{err}");
    }

    #[test]
    fn rejects_ctor_arity_mismatch() {
        let mut p = Program::new();
        let list = p.types.add_data("list");
        let cons = p.types.add_ctor_arity(list, "Cons", 2);
        p.add_fun(FunDef {
            name: "f".into(),
            params: vec![],
            body: Expr::Con {
                ctor: cons,
                args: vec![Expr::Lit(Lit::Int(1))],
                reuse: None,
                skip: vec![],
            },
        });
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn rejects_wrong_captures() {
        use crate::ir::expr::Lambda;
        let x = v(0, "x");
        let y = v(1, "y");
        let lam = Lambda {
            params: vec![y.clone()],
            captures: vec![], // wrong: x is free in the body
            body: Box::new(Expr::Var(x.clone())),
        };
        let p = prog_with_body(vec![x], Expr::Lam(lam));
        let err = check_program(&p).unwrap_err();
        assert!(err.message.contains("captures"), "{err}");
    }

    #[test]
    fn rejects_match_binder_arity() {
        let mut p = Program::new();
        let list = p.types.add_data("list");
        let _nil = p.types.add_ctor_arity(list, "Nil", 0);
        let cons = p.types.add_ctor_arity(list, "Cons", 2);
        let xs = v(0, "xs");
        p.add_fun(FunDef {
            name: "f".into(),
            params: vec![xs.clone()],
            body: Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![Arm {
                    ctor: cons,
                    binders: vec![Some(v(1, "h"))], // wrong arity
                    reuse_token: None,
                    body: Expr::unit(),
                }],
                default: Some(Box::new(Expr::unit())),
            },
        });
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn rejects_skip_without_reuse() {
        let mut p = Program::new();
        let list = p.types.add_data("pair");
        let mk = p.types.add_ctor_arity(list, "Pair", 2);
        p.add_fun(FunDef {
            name: "f".into(),
            params: vec![],
            body: Expr::Con {
                ctor: mk,
                args: vec![Expr::int(1), Expr::int(2)],
                reuse: None,
                skip: vec![true, false],
            },
        });
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn rejects_rebinding() {
        let x = v(0, "x");
        let body = Expr::let_(
            x.clone(),
            Expr::int(1),
            Expr::let_(x.clone(), Expr::int(2), Expr::Var(x.clone())),
        );
        let p = prog_with_body(vec![], body);
        let err = check_program(&p).unwrap_err();
        assert!(err.message.contains("rebinding"), "{err}");
    }
}
