//! Variables and small ordered variable sets.
//!
//! Variables are identified by a `u32` id that is unique within a
//! [`Program`](crate::ir::Program); the textual `hint` is carried only for
//! diagnostics and pretty printing and takes no part in equality or
//! hashing.

use std::fmt;
use std::sync::Arc;

/// A variable of the core language.
///
/// Equality and hashing are by [`id`](Var::id) only — two variables with
/// the same id are the same variable regardless of their display hint.
#[derive(Clone)]
pub struct Var {
    id: u32,
    hint: Arc<str>,
}

impl Var {
    /// Creates a variable with the given unique id and display hint.
    pub fn new(id: u32, hint: impl Into<Arc<str>>) -> Self {
        Var {
            id,
            hint: hint.into(),
        }
    }

    /// The unique id of this variable.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The display hint (the source-level name, when one exists).
    pub fn hint(&self) -> &str {
        &self.hint
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Var {}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Var {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.hint, self.id)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hint.is_empty() {
            write!(f, "_v{}", self.id)
        } else if self.hint.starts_with('_') {
            // Generated temporaries get their id so printouts stay
            // unambiguous.
            write!(f, "{}{}", self.hint, self.id)
        } else {
            write!(f, "{}", self.hint)
        }
    }
}

/// A fresh-variable generator.
///
/// Every pass that introduces variables threads a `VarGen` so that ids stay
/// unique across the whole program. The front end records the next free id
/// in [`Program::var_gen`](crate::ir::Program).
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator whose first id is `next`.
    pub fn starting_at(next: u32) -> Self {
        VarGen { next }
    }

    /// Returns a fresh variable with the given hint.
    pub fn fresh(&mut self, hint: &str) -> Var {
        let id = self.next;
        self.next += 1;
        Var::new(id, hint)
    }

    /// The next id that would be handed out.
    pub fn peek(&self) -> u32 {
        self.next
    }

    /// Makes sure the generator will never produce an id `<= id`.
    pub fn reserve(&mut self, id: u32) {
        if self.next <= id {
            self.next = id + 1;
        }
    }
}

/// An ordered set of variables.
///
/// Environments in the Perceus rules (Δ and Γ of Fig. 8) are small — a
/// handful of live variables — so the set is a sorted `Vec`, which is both
/// faster than hashing at this size and gives deterministic iteration
/// order (important for reproducible output code).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    items: Vec<Var>,
}

impl VarSet {
    /// The empty set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Returns true if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Membership test.
    pub fn contains(&self, v: &Var) -> bool {
        self.items.binary_search(v).is_ok()
    }

    /// Inserts `v`; returns true if it was newly added.
    pub fn insert(&mut self, v: Var) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v`; returns true if it was present.
    pub fn remove(&mut self, v: &Var) -> bool {
        match self.items.binary_search(v) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates the variables in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &Var> + '_ {
        self.items.iter()
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = self.clone();
        for v in other.iter() {
            out.insert(v.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersect(&self, other: &VarSet) -> VarSet {
        VarSet {
            items: self
                .items
                .iter()
                .filter(|v| other.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Set difference `self - other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet {
            items: self
                .items
                .iter()
                .filter(|v| !other.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Removes and returns all elements as a vector (ascending id order).
    pub fn into_vec(self) -> Vec<Var> {
        self.items
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = &'a Var;
    type IntoIter = std::slice::Iter<'a, Var>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Var {
        Var::new(id, format!("x{id}"))
    }

    #[test]
    fn var_equality_is_by_id() {
        assert_eq!(Var::new(1, "a"), Var::new(1, "b"));
        assert_ne!(Var::new(1, "a"), Var::new(2, "a"));
    }

    #[test]
    fn var_display_uses_hint() {
        assert_eq!(Var::new(3, "xs").to_string(), "xs");
        assert_eq!(Var::new(3, "").to_string(), "_v3");
    }

    #[test]
    fn vargen_produces_distinct_ids() {
        let mut g = VarGen::default();
        let a = g.fresh("a");
        let b = g.fresh("a");
        assert_ne!(a, b);
        assert_eq!(g.peek(), 2);
    }

    #[test]
    fn vargen_reserve_skips_ids() {
        let mut g = VarGen::default();
        g.reserve(10);
        assert_eq!(g.fresh("x").id(), 11);
        g.reserve(5); // no-op, already past
        assert_eq!(g.fresh("x").id(), 12);
    }

    #[test]
    fn varset_insert_remove_contains() {
        let mut s = VarSet::new();
        assert!(s.insert(v(2)));
        assert!(s.insert(v(1)));
        assert!(!s.insert(v(2)));
        assert!(s.contains(&v(1)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(&v(1)));
        assert!(!s.remove(&v(1)));
        assert!(!s.contains(&v(1)));
    }

    #[test]
    fn varset_is_ordered() {
        let s: VarSet = [v(3), v(1), v(2)].into_iter().collect();
        let ids: Vec<u32> = s.iter().map(Var::id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn varset_algebra() {
        let a: VarSet = [v(1), v(2), v(3)].into_iter().collect();
        let b: VarSet = [v(2), v(4)].into_iter().collect();
        let u: Vec<u32> = a.union(&b).iter().map(Var::id).collect();
        let i: Vec<u32> = a.intersect(&b).iter().map(Var::id).collect();
        let d: Vec<u32> = a.difference(&b).iter().map(Var::id).collect();
        assert_eq!(u, vec![1, 2, 3, 4]);
        assert_eq!(i, vec![2]);
        assert_eq!(d, vec![1, 3]);
    }
}
