//! Ergonomic construction of core programs, used by tests, examples and
//! the benchmark suite when a program is easier to build directly than
//! to write in the surface language.

use super::expr::{Arm, Expr};
use super::program::{CtorId, DataId, FunDef, FunId, Program};
use super::var::{Var, VarGen};

/// Builds a [`Program`] incrementally.
///
/// ```
/// use perceus_core::ir::builder::ProgramBuilder;
/// use perceus_core::ir::Expr;
///
/// let mut pb = ProgramBuilder::new();
/// let x = pb.fresh("x");
/// let id = pb.fun("id", vec![x.clone()], Expr::Var(x));
/// pb.entry(id);
/// let program = pb.finish();
/// assert_eq!(program.funs().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    gen: VarGen,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::new(),
            gen: VarGen::default(),
        }
    }

    /// Returns a fresh variable.
    pub fn fresh(&mut self, hint: &str) -> Var {
        self.gen.fresh(hint)
    }

    /// Declares a data type with `(name, arity)` constructors; returns the
    /// data id and the constructor ids in declaration order.
    pub fn data(&mut self, name: &str, ctors: &[(&str, usize)]) -> (DataId, Vec<CtorId>) {
        let d = self.program.types.add_data(name);
        let ids = ctors
            .iter()
            .map(|(n, a)| self.program.types.add_ctor_arity(d, *n, *a))
            .collect();
        (d, ids)
    }

    /// Adds a function.
    pub fn fun(&mut self, name: &str, params: Vec<Var>, body: Expr) -> FunId {
        self.program.add_fun(FunDef {
            name: name.into(),
            params,
            body,
        })
    }

    /// Reserves a function id before its body exists (for recursion
    /// between builder-made functions); fill it later with
    /// [`set_body`](Self::set_body).
    pub fn declare(&mut self, name: &str, params: Vec<Var>) -> FunId {
        self.program.add_fun(FunDef {
            name: name.into(),
            params,
            body: Expr::Abort(format!("body of {name} not set")),
        })
    }

    /// Sets the body of a previously declared function.
    pub fn set_body(&mut self, id: FunId, body: Expr) {
        self.program.funs[id.0 as usize].body = body;
    }

    /// Marks the entry point.
    pub fn entry(&mut self, id: FunId) {
        self.program.entry = Some(id);
    }

    /// Finishes the program, recording the fresh-variable high-water mark.
    pub fn finish(mut self) -> Program {
        self.program.var_gen = self.gen;
        self.program
    }

    /// Immutable view of the program under construction.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builds a plain constructor application (no reuse).
pub fn con(ctor: CtorId, args: Vec<Expr>) -> Expr {
    Expr::Con {
        ctor,
        args,
        reuse: None,
        skip: Vec::new(),
    }
}

/// Builds a match arm with all fields bound.
pub fn arm(ctor: CtorId, binders: Vec<Var>, body: Expr) -> Arm {
    Arm {
        ctor,
        binders: binders.into_iter().map(Some).collect(),
        reuse_token: None,
        body,
    }
}

/// Builds a match arm for a singleton (arity-0) constructor.
pub fn arm0(ctor: CtorId, body: Expr) -> Arm {
    Arm {
        ctor,
        binders: Vec::new(),
        reuse_token: None,
        body,
    }
}

/// `if cond then t else f` as a match on the built-in `bool`.
pub fn ite(cond_var: Var, then_e: Expr, else_e: Expr) -> Expr {
    use super::program::TypeTable;
    Expr::Match {
        scrutinee: cond_var,
        arms: vec![
            arm0(TypeTable::TRUE, then_e),
            arm0(TypeTable::FALSE, else_e),
        ],
        default: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::wf::assert_well_formed;

    #[test]
    fn builds_recursive_function() {
        // fun count(n) { if n <= 0 then 0 else count(n - 1) }
        use crate::ir::expr::PrimOp;
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let c = pb.fresh("c");
        let m = pb.fresh("m");
        let f = pb.declare("count", vec![n.clone()]);
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Le, vec![Expr::Var(n.clone()), Expr::int(0)]),
            ite(
                c.clone(),
                Expr::int(0),
                Expr::let_(
                    m.clone(),
                    Expr::Prim(PrimOp::Sub, vec![Expr::Var(n.clone()), Expr::int(1)]),
                    Expr::Call(f, vec![Expr::Var(m.clone())]),
                ),
            ),
        );
        pb.set_body(f, body);
        pb.entry(f);
        let p = pb.finish();
        assert_well_formed(&p);
        assert_eq!(p.entry, Some(f));
    }

    #[test]
    fn data_declaration() {
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        assert_eq!(ctors.len(), 2);
        let p = pb.finish();
        assert_eq!(p.types.ctor(ctors[1]).arity, 2);
    }
}
