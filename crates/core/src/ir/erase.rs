//! Erasure `⌈e⌉` of reference-counting instructions (Lemma 1 of the
//! paper: a Perceus translation only inserts `dup`/`drop`, so erasing
//! them recovers the original expression).
//!
//! Erasure is also used to feed the standard-semantics oracle
//! (`perceus-runtime`'s differential tests for Theorem 1): the erased
//! program evaluates under the plain semantics of Fig. 6.

use super::expr::{Arm, Expr, Lambda};
use super::program::{FunDef, Program};

/// Erases every reference-counting instruction from a program.
pub fn erase_program(p: &Program) -> Program {
    let mut out = p.clone();
    for f in &mut out.funs {
        let body = std::mem::replace(&mut f.body, Expr::unit());
        f.body = erase(body);
    }
    out
}

/// Erases every reference-counting instruction from a function.
pub fn erase_fun(f: &FunDef) -> FunDef {
    FunDef {
        name: f.name.clone(),
        params: f.params.clone(),
        body: erase(f.body.clone()),
    }
}

/// Erases `dup`, `drop`, `free`, `decref`, `drop-token`, `drop-reuse`,
/// `is-unique` (keeping the shared branch, which is the unspecialized
/// continuation) and reuse annotations from `e`.
pub fn erase(e: Expr) -> Expr {
    match e {
        Expr::Var(_) | Expr::Lit(_) | Expr::Global(_) | Expr::Abort(_) => e,
        Expr::TokenOf(_) | Expr::NullToken => Expr::unit(),
        Expr::App(f, args) => Expr::App(Box::new(erase(*f)), args.into_iter().map(erase).collect()),
        Expr::Call(f, args) => Expr::Call(f, args.into_iter().map(erase).collect()),
        Expr::Prim(op, args) => Expr::Prim(op, args.into_iter().map(erase).collect()),
        Expr::Lam(Lambda {
            params,
            captures,
            body,
        }) => Expr::Lam(Lambda {
            params,
            captures,
            body: Box::new(erase(*body)),
        }),
        Expr::Con { ctor, args, .. } => Expr::Con {
            ctor,
            args: args.into_iter().map(erase).collect(),
            reuse: None,
            skip: Vec::new(),
        },
        Expr::Let { var, rhs, body } => Expr::let_(var, erase(*rhs), erase(*body)),
        Expr::Seq(a, b) => {
            let a = erase(*a);
            let b = erase(*b);
            // RC statements erase to trivia; collapse pure left sides so
            // that erasing a specialized program gives clean output.
            if a.is_atom() || a == Expr::unit() {
                b
            } else {
                Expr::seq(a, b)
            }
        }
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => Expr::Match {
            scrutinee,
            arms: arms
                .into_iter()
                .map(|arm| Arm {
                    ctor: arm.ctor,
                    binders: arm.binders,
                    reuse_token: None,
                    body: erase(arm.body),
                })
                .collect(),
            default: default.map(|d| Box::new(erase(*d))),
        },
        Expr::Dup(_, rest)
        | Expr::Drop(_, rest)
        | Expr::Free(_, rest)
        | Expr::DecRef(_, rest)
        | Expr::DropToken(_, rest) => erase(*rest),
        Expr::DropReuse { body, .. } => erase(*body),
        // Both branches of an is-unique are the same continuation plus RC
        // noise; the shared branch is the unspecialized one (Fig. 1c/1f).
        Expr::IsUnique { shared, .. } => erase(*shared),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::var::Var;

    fn v(id: u32, hint: &str) -> Var {
        Var::new(id, hint)
    }

    #[test]
    fn erases_dup_drop() {
        let x = v(0, "x");
        let e = Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::Var(x.clone())));
        assert_eq!(erase(e), Expr::Var(x));
    }

    #[test]
    fn erases_reuse_annotations() {
        use crate::ir::program::CtorId;
        let ru = v(1, "ru");
        let e = Expr::DropReuse {
            var: v(0, "xs"),
            token: ru.clone(),
            body: Box::new(Expr::Con {
                ctor: CtorId(0),
                args: vec![],
                reuse: None,
                skip: vec![],
            }),
        };
        let erased = erase(e);
        assert_eq!(
            erased,
            Expr::Con {
                ctor: CtorId(0),
                args: vec![],
                reuse: None,
                skip: vec![]
            }
        );
    }

    #[test]
    fn is_unique_erases_to_shared_branch() {
        let x = v(0, "x");
        let e = Expr::IsUnique {
            var: x.clone(),
            binders: vec![],
            unique: Box::new(Expr::Free(x.clone(), Box::new(Expr::int(1)))),
            shared: Box::new(Expr::DecRef(x.clone(), Box::new(Expr::int(1)))),
        };
        assert_eq!(erase(e), Expr::int(1));
    }

    #[test]
    fn idempotent_on_user_fragment() {
        let x = v(0, "x");
        let e = Expr::let_(x.clone(), Expr::int(1), Expr::Var(x.clone()));
        assert_eq!(erase(e.clone()), e);
    }
}
