//! Cost certificates: the artifact of the potential analysis and the
//! independent checker that re-verifies them against the IR.
//!
//! A [`FunCert`] claims, for one function, an upper bound per RC
//! counter (in both [`CostMode`]s), per-constructor bounds on the cells
//! its result can hold, and how often it applies each of its
//! parameters. A [`CertSet`] holds one certificate per program
//! function.
//!
//! # Checker soundness
//!
//! [`check_fun_cert`] knows nothing about how a certificate was
//! guessed. It re-evaluates every control-flow path of the function
//! symbolically (taking the certificate set itself as the inductive
//! hypothesis at call sites) and asks the entailment engine of
//! [`super::linear`] to prove `claim − path_cost ≥ 0` under the path's
//! guard and match facts. If every path of every function discharges,
//! the claims hold for all terminating runs by induction on the call
//! tree: a run's outermost call unfolds into sub-calls whose claims are
//! either (a) already verified certificates of *other* functions or
//! (b) the claim under test applied to structurally smaller work —
//! exactly the premise of the per-path verification condition. The
//! entailment engine only ever *under*-approximates (it may fail to
//! prove a true inequality, never prove a false one), so a certificate
//! the checker accepts is sound; one it rejects may still be true but
//! is not certified.
//!
//! Certificates cover *normally completing* runs: abort paths are
//! excluded from both the claims and the runtime replay they are
//! validated against.
//!
//! # JSON schema
//!
//! `CertSet::to_json` emits (names resolved, stable key order):
//!
//! ```json
//! {"functions":[{"fun":0,"name":"map","params":["f","xs"],
//!   "recursive":true,
//!   "worst":{"alloc":{"const":0,"terms":[{"coeff":1,
//!     "atom":{"kind":"count","param":1,"ctor":"Cons"}}]}, …},
//!   "fbip":{…},
//!   "ret":{"Cons":{…}},
//!   "apps":[{…}, …]}]}
//! ```
//!
//! A bound is `null` for ω, else `{"const": b, "terms": [{coeff, atom}]}`
//! meaning `Σ coeff·atom + const`. An atom is either
//! `{"kind":"count","param":i,"ctor":name}` (constructor cells
//! reachable from parameter `i`) or `{"kind":"pos","const":k,
//! "coeffs":[{"param":i,"coeff":c}]}` (`max(Σ c·pᵢ + k, 0)` over raw
//! integer parameter values). This module only *emits* certificates;
//! there is deliberately no parser — consumers that want to re-check a
//! certificate re-infer and compare, which keeps the trusted base to
//! the evaluator + entailment engine.

use super::super::ir::program::{CtorId, FunId, Program};
use super::linear::{Atom, SymBound};
use super::potential::{eval_fun_paths, CostMode, COUNTERS, NCOUNTERS};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// The certified bounds of one function. All bounds are upper bounds
/// over atoms of the function's own parameters; [`SymBound::Omega`]
/// claims nothing.
#[derive(Debug, Clone)]
pub struct FunCert {
    /// The function this certifies.
    pub fun: FunId,
    /// Its name (for rendering and JSON).
    pub name: String,
    /// Whether the function is self-recursive (certificate is inductive).
    pub recursive: bool,
    /// Worst-case counter bounds, indexed like
    /// [`super::potential::COUNTERS`].
    pub worst: [SymBound; NCOUNTERS],
    /// FBIP-regime counter bounds (all uniqueness tests hit, all reuse
    /// tokens valid) — conditional, see [`CostMode::Fbip`].
    pub fbip: [SymBound; NCOUNTERS],
    /// Per-constructor bounds on the cells reachable from the result.
    pub ret: BTreeMap<CtorId, SymBound>,
    /// How often each parameter is applied as a closure (callers pay
    /// the per-application cost at instantiation).
    pub apps: Vec<SymBound>,
}

/// One certificate per function of a program, indexed by [`FunId`].
#[derive(Debug, Clone)]
pub struct CertSet {
    /// Certificates, position `i` ↔ `FunId(i)`.
    pub funs: Vec<FunCert>,
}

impl CertSet {
    /// The bottom certificate set: every claim is ω (trivially valid).
    /// `ret` is pre-keyed with every arity ≥ 1 constructor.
    pub fn bottom(p: &Program) -> CertSet {
        let counted: Vec<CtorId> = p
            .types
            .ctors()
            .filter(|(_, info)| info.arity >= 1)
            .map(|(id, _)| id)
            .collect();
        let funs = p
            .funs
            .iter()
            .enumerate()
            .map(|(i, f)| FunCert {
                fun: FunId(i as u32),
                name: f.name.to_string(),
                recursive: false,
                worst: std::array::from_fn(|_| SymBound::Omega),
                fbip: std::array::from_fn(|_| SymBound::Omega),
                ret: counted.iter().map(|&c| (c, SymBound::Omega)).collect(),
                apps: vec![SymBound::Omega; f.params.len()],
            })
            .collect();
        CertSet { funs }
    }

    /// The certificate of the function named `name`.
    pub fn fun_cert(&self, name: &str) -> Option<&FunCert> {
        self.funs.iter().find(|c| c.name == name)
    }
}

/// A rejected claim: which function, which claim, and why.
#[derive(Debug, Clone)]
pub struct CertError {
    /// The function whose certificate failed.
    pub fun: FunId,
    /// Its name.
    pub name: String,
    /// The cost model the claim belongs to.
    pub mode: CostMode,
    /// Which claim failed, e.g. `"alloc"`, `"ret[Cons]"`, `"apps[0]"`.
    pub slot: String,
    /// Human explanation.
    pub detail: String,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:?} claim `{}` not verified: {}",
            self.name, self.mode, self.slot, self.detail
        )
    }
}

impl std::error::Error for CertError {}

/// Re-verifies one function's certificate against the IR under one
/// cost mode, independently of how it was inferred. Under
/// [`CostMode::Worst`] the `ret` and `apps` claims are checked too
/// (the worst-mode path set is a superset of the FBIP one, so checking
/// them there covers both).
pub fn check_fun_cert(
    p: &Program,
    certs: &CertSet,
    fun: FunId,
    mode: CostMode,
) -> Result<(), CertError> {
    let cert = &certs.funs[fun.0 as usize];
    let claims = match mode {
        CostMode::Worst => &cert.worst,
        CostMode::Fbip => &cert.fbip,
    };
    let err = |slot: String, detail: String| CertError {
        fun,
        name: cert.name.clone(),
        mode,
        slot,
        detail,
    };
    let paths = eval_fun_paths(p, certs, fun, mode);
    for (pi, path) in paths.iter().enumerate() {
        let verify = |claim: &SymBound, actual: &SymBound, slot: &str| -> Result<(), CertError> {
            let SymBound::Finite(claim) = claim else {
                return Ok(()); // ω claims nothing
            };
            let SymBound::Finite(actual) = actual else {
                return Err(err(
                    slot.to_string(),
                    format!("path #{pi} has unbounded cost but the claim is finite"),
                ));
            };
            let Some(goal) = claim.sub(actual) else {
                return Err(err(slot.to_string(), "coefficient overflow".to_string()));
            };
            if !path.facts.entails_nonneg(&goal) {
                return Err(err(
                    slot.to_string(),
                    format!("path #{pi}: cannot prove {claim} − ({actual}) ≥ 0"),
                ));
            }
            Ok(())
        };
        for (i, name) in COUNTERS.iter().enumerate() {
            verify(&claims[i], &path.cost[i], name)?;
        }
        if mode == CostMode::Worst {
            for (ct, claim) in &cert.ret {
                let actual = match &path.ret {
                    Some(m) => m.get(ct).cloned().unwrap_or_else(SymBound::zero),
                    None => SymBound::Omega,
                };
                let slot = format!("ret[{}]", p.types.ctor(*ct).name);
                verify(claim, &actual, &slot)?;
            }
            for (i, claim) in cert.apps.iter().enumerate() {
                verify(claim, &path.apps[i], &format!("apps[{i}]"))?;
            }
        }
    }
    Ok(())
}

/// Checks every certificate of a set under both cost modes; returns
/// every rejection.
pub fn check_cert_set(p: &Program, certs: &CertSet) -> Vec<CertError> {
    let mut out = Vec::new();
    for i in 0..certs.funs.len() {
        for mode in [CostMode::Worst, CostMode::Fbip] {
            if let Err(e) = check_fun_cert(p, certs, FunId(i as u32), mode) {
                out.push(e);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn atom_json(p: &Program, a: &Atom) -> String {
    match a {
        Atom::Count { param, ctor } => format!(
            "{{\"kind\":\"count\",\"param\":{},\"ctor\":\"{}\"}}",
            param,
            json_escape(&p.types.ctor(*ctor).name)
        ),
        Atom::Pos(r) => {
            let coeffs: Vec<String> = r
                .coeffs
                .iter()
                .map(|(i, c)| format!("{{\"param\":{i},\"coeff\":{c}}}"))
                .collect();
            format!(
                "{{\"kind\":\"pos\",\"const\":{},\"coeffs\":[{}]}}",
                r.k,
                coeffs.join(",")
            )
        }
    }
}

fn bound_json(p: &Program, b: &SymBound) -> String {
    match b {
        SymBound::Omega => "null".to_string(),
        SymBound::Finite(e) => {
            let terms: Vec<String> = e
                .terms
                .iter()
                .map(|(a, c)| format!("{{\"coeff\":{},\"atom\":{}}}", c, atom_json(p, a)))
                .collect();
            format!("{{\"const\":{},\"terms\":[{}]}}", e.k, terms.join(","))
        }
    }
}

/// Renders one bound for humans, resolving parameter and constructor
/// names: `2·|xs.Cons| + 3`, `max(n − i, 0)`, `ω`.
pub fn bound_human(p: &Program, fun: FunId, b: &SymBound) -> String {
    let params = &p.funs[fun.0 as usize].params;
    let pname = |i: u32| -> String {
        params
            .get(i as usize)
            .map(|v| v.hint().to_string())
            .unwrap_or_else(|| format!("p{i}"))
    };
    match b {
        SymBound::Omega => "ω".to_string(),
        SymBound::Finite(e) => e.render(&|a: &Atom| match a {
            Atom::Count { param, ctor } => {
                format!("|{}.{}|", pname(*param), p.types.ctor(*ctor).name)
            }
            Atom::Pos(r) => format!("max({}, 0)", r.render(&|i| pname(i))),
        }),
    }
}

impl CertSet {
    /// The full certificate JSON document (schema in the module docs).
    pub fn to_json(&self, p: &Program) -> String {
        let mut out = String::from("{\"functions\":[");
        for (i, cert) in self.funs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let params: Vec<String> = p.funs[cert.fun.0 as usize]
                .params
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v.hint())))
                .collect();
            let _ = write!(
                out,
                "{{\"fun\":{},\"name\":\"{}\",\"params\":[{}],\"recursive\":{}",
                cert.fun.0,
                json_escape(&cert.name),
                params.join(","),
                cert.recursive
            );
            for (key, bounds) in [("worst", &cert.worst), ("fbip", &cert.fbip)] {
                let _ = write!(out, ",\"{key}\":{{");
                for (j, name) in COUNTERS.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", name, bound_json(p, &bounds[j]));
                }
                out.push('}');
            }
            out.push_str(",\"ret\":{");
            for (j, (ct, b)) in cert.ret.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{}",
                    json_escape(&p.types.ctor(*ct).name),
                    bound_json(p, b)
                );
            }
            out.push_str("},\"apps\":[");
            for (j, b) in cert.apps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&bound_json(p, b));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable certificate table.
    pub fn render_human(&self, p: &Program) -> String {
        let mut out = String::new();
        for cert in &self.funs {
            let rec = if cert.recursive { " (recursive)" } else { "" };
            let _ = writeln!(out, "  {}{}:", cert.name, rec);
            for (key, bounds) in [("worst", &cert.worst), ("fbip ", &cert.fbip)] {
                let cols: Vec<String> = COUNTERS
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| bounds[*j].as_const() != Some(0))
                    .map(|(j, name)| format!("{name} ≤ {}", bound_human(p, cert.fun, &bounds[j])))
                    .collect();
                let line = if cols.is_empty() {
                    "0 everywhere".to_string()
                } else {
                    cols.join(", ")
                };
                let _ = writeln!(out, "    {key}: {line}");
            }
            let rets: Vec<String> = cert
                .ret
                .iter()
                .filter(|(_, b)| b.as_const() != Some(0))
                .map(|(ct, b)| {
                    format!(
                        "{} ≤ {}",
                        p.types.ctor(*ct).name,
                        bound_human(p, cert.fun, b)
                    )
                })
                .collect();
            if !rets.is_empty() {
                let _ = writeln!(out, "    ret:   {}", rets.join(", "));
            }
            let apps: Vec<String> = cert
                .apps
                .iter()
                .enumerate()
                .filter(|(_, b)| b.as_const() != Some(0))
                .map(|(i, b)| {
                    let pn = p.funs[cert.fun.0 as usize]
                        .params
                        .get(i)
                        .map(|v| v.hint().to_string())
                        .unwrap_or_else(|| format!("p{i}"));
                    format!("{pn} applied ≤ {}", bound_human(p, cert.fun, b))
                })
                .collect();
            if !apps.is_empty() {
                let _ = writeln!(out, "    apps:  {}", apps.join(", "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::linear::LinExpr;
    use super::super::potential::{infer_certificates, C_ALLOC};
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};
    use crate::ir::expr::Expr;
    use crate::ir::program::TypeTable;

    fn copy_program() -> (Program, FunId, CtorId) {
        // fun copy(xs) = match xs { Nil -> Nil; Cons(x, xx) ->
        //   Cons(x, copy(xx)) }
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let f = pb.declare("copy", vec![xs.clone()]);
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm0(nil, con(nil, vec![])),
                    arm(
                        cons,
                        vec![x.clone(), xx.clone()],
                        con(cons, vec![Expr::Var(x), Expr::Call(f, vec![Expr::Var(xx)])]),
                    ),
                ],
                default: None,
            },
        );
        (pb.finish(), f, cons)
    }

    #[test]
    fn inferred_certificates_pass_the_checker() {
        let (p, _, _) = copy_program();
        let certs = infer_certificates(&p);
        let errs = check_cert_set(&p, &certs);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn perturbed_certificate_is_rejected() {
        let (p, f, cons) = copy_program();
        let mut certs = infer_certificates(&p);
        // The inferred alloc bound is 1·|xs.Cons|; claiming one less
        // must fail the checker.
        let alloc = certs.funs[f.0 as usize].worst[C_ALLOC].clone();
        let SymBound::Finite(e) = alloc else {
            panic!("expected finite alloc bound")
        };
        assert_eq!(
            e.terms
                .get(&Atom::Count {
                    param: 0,
                    ctor: cons
                })
                .copied(),
            Some(1)
        );
        let perturbed = e
            .sub(&LinExpr::atom(Atom::Count {
                param: 0,
                ctor: cons,
            }))
            .unwrap();
        certs.funs[f.0 as usize].worst[C_ALLOC] = SymBound::Finite(perturbed);
        assert!(check_fun_cert(&p, &certs, f, CostMode::Worst).is_err());
        // Constant perturbation of a claim whose constant is already
        // minimal must also fail.
        let mut certs2 = infer_certificates(&p);
        let SymBound::Finite(e2) = certs2.funs[f.0 as usize].worst[C_ALLOC].clone() else {
            panic!()
        };
        certs2.funs[f.0 as usize].worst[C_ALLOC] = SymBound::Finite(e2.add_k(-1).unwrap());
        assert!(check_fun_cert(&p, &certs2, f, CostMode::Worst).is_err());
    }

    #[test]
    fn bottom_set_is_trivially_valid() {
        let (p, _, _) = copy_program();
        let certs = CertSet::bottom(&p);
        assert!(check_cert_set(&p, &certs).is_empty());
    }

    #[test]
    fn json_and_human_rendering() {
        let (p, f, _) = copy_program();
        let certs = infer_certificates(&p);
        let json = certs.to_json(&p);
        assert!(json.contains("\"name\":\"copy\""));
        assert!(json.contains("\"recursive\":true"));
        assert!(json.contains("\"kind\":\"count\""));
        assert!(json.contains("\"ctor\":\"Cons\""));
        let human = certs.render_human(&p);
        assert!(human.contains("copy (recursive)"));
        assert!(human.contains("alloc ≤ |xs.Cons|"), "{human}");
        // ω rendering resolves through bound_human.
        assert_eq!(bound_human(&p, f, &SymBound::Omega), "ω");
        let _ = TypeTable::TRUE; // silence unused import on some cfgs
    }
}
