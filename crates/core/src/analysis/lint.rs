//! The lint layer: concrete, path-addressed diagnostics about RC
//! decisions the pipeline made (or has not made *yet* — lints are meant
//! to be diffed across stage snapshots, see [`crate::passes::Pipeline::analyze`]).
//!
//! | code | name | meaning |
//! |------|------|---------|
//! | `L1` | missed-reuse | a known-size cell is dropped/freed on a path that later allocates a same-size cell, and reuse analysis did not pair them |
//! | `L2` | unfused-dup-drop | a dup/drop pair `passes::fuse` would cancel is still present |
//! | `L3` | borrowable-param | `infer_borrows` would borrow a parameter the active config keeps owned |
//! | `L4` | non-fbip-recursion | a self-recursive function allocates fresh cells on its recursive path (not "functional but in-place", §2.4) |
//!
//! `L2` deliberately reimplements `passes::fuse`'s decision procedure
//! (maximal dup/drop prefixes, cancellation across interleaved dups
//! only, binder-dup push-down into `is-unique` branches) rather than an
//! approximation: that makes "L2 = 0 after the fuse stage" hold *by
//! construction*, which the stage-diff tests rely on.

use crate::ir::expr::Expr;
use crate::ir::program::{FunId, Program};
use crate::ir::var::Var;
use crate::passes::borrow::infer_borrows;

use super::report::{Diagnostic, Diagnostics, LintCode, Severity};

/// Runs every lint over the program.
pub fn lint_program(p: &Program) -> Diagnostics {
    let mut out = Diagnostics::default();
    let inferred = infer_borrows(p);
    for (i, f) in p.funs.iter().enumerate() {
        let fun = FunId(i as u32);
        let mut cx = FunCx {
            p,
            fun,
            fun_name: f.name.to_string(),
            out: &mut out,
        };
        cx.lint_missed_reuse(&f.body, &mut Vec::new(), &mut String::new());
        cx.lint_unfused(&f.body, Vec::new(), &mut String::new());
        cx.lint_borrowable(f, &inferred[i]);
        cx.lint_non_fbip(&f.body);
    }
    out
}

struct FunCx<'a> {
    p: &'a Program,
    fun: FunId,
    fun_name: String,
    out: &'a mut Diagnostics,
}

/// Mirrors `perceus_runtime::heap::NUM_SIZE_CLASSES` (core cannot
/// depend on the runtime crate): field counts `0..=15` each map to
/// their own exact free list, larger cells share the overflow class.
/// Public so a crate that depends on both (the suite) can assert the
/// two constants stay equal — drift would make L1 diagnostics report
/// wrong size classes.
pub const NUM_SIZE_CLASSES: usize = 16;

/// The allocator size class a cell of `arity` fields is served from,
/// rendered as the runtime's free-list label.
fn size_class_label(arity: usize) -> String {
    if arity < NUM_SIZE_CLASSES {
        format!("size class {arity}")
    } else {
        format!("overflow class (≥{NUM_SIZE_CLASSES} fields)")
    }
}

impl FunCx<'_> {
    fn emit(&mut self, code: LintCode, severity: Severity, path: &str, message: String) {
        self.out.push(Diagnostic {
            code,
            severity,
            fun: self.fun,
            fun_name: self.fun_name.clone(),
            path: path.to_string(),
            message,
            span: None,
        });
    }

    // ---- L1: missed reuse ------------------------------------------------

    /// `cells` maps in-scope variables known to hold a constructor cell
    /// to `(ctor name, arity)` — learned from enclosing match arms and
    /// `let`-bound constructors, exactly the knowledge `passes::reuse`
    /// works from.
    fn lint_missed_reuse(
        &mut self,
        e: &Expr,
        cells: &mut Vec<(Var, String, usize)>,
        path: &mut String,
    ) {
        match e {
            Expr::Drop(x, rest) | Expr::Free(x, rest) => {
                if let Some((_, ctor, arity)) = cells.iter().rev().find(|(v, _, _)| v == x).cloned()
                {
                    if let Some(found) = find_fresh_alloc(self.p, rest, arity) {
                        let verb = if matches!(e, Expr::Free(..)) {
                            "freed"
                        } else {
                            "dropped"
                        };
                        self.emit(
                            LintCode::MissedReuse,
                            Severity::Warning,
                            path,
                            format!(
                                "`{x}` ({ctor}, {arity} fields, {}) is {verb} on a path that \
                                 later allocates a fresh {arity}-field `{found}` cell from the \
                                 same free list; reuse analysis did not pair them",
                                size_class_label(arity)
                            ),
                        );
                    }
                }
                self.lint_missed_reuse(rest, cells, path);
            }
            Expr::Let { var, rhs, body } => {
                self.lint_missed_reuse(rhs, cells, path);
                let mut pushed = false;
                if let Expr::Con { ctor, .. } = rhs.as_ref() {
                    let info = self.p.types.ctor(*ctor);
                    if info.arity >= 1 {
                        cells.push((var.clone(), info.name.to_string(), info.arity));
                        pushed = true;
                    }
                }
                self.lint_missed_reuse(body, cells, path);
                if pushed {
                    cells.pop();
                }
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                for arm in arms {
                    let info = self.p.types.ctor(arm.ctor);
                    let seg = push_seg(path, &format!("match({scrutinee})/arm[{}]", info.name));
                    let mut pushed = false;
                    if info.arity >= 1 {
                        cells.push((scrutinee.clone(), info.name.to_string(), info.arity));
                        pushed = true;
                    }
                    self.lint_missed_reuse(&arm.body, cells, path);
                    if pushed {
                        cells.pop();
                    }
                    path.truncate(seg);
                }
                if let Some(d) = default {
                    let seg = push_seg(path, &format!("match({scrutinee})/default"));
                    self.lint_missed_reuse(d, cells, path);
                    path.truncate(seg);
                }
            }
            Expr::IsUnique { unique, shared, .. } => {
                let seg = push_seg(path, "is-unique:unique");
                self.lint_missed_reuse(unique, cells, path);
                path.truncate(seg);
                let seg = push_seg(path, "is-unique:shared");
                self.lint_missed_reuse(shared, cells, path);
                path.truncate(seg);
            }
            Expr::Lam(lam) => {
                let seg = push_seg(path, "lam");
                // A lambda body runs later: cell knowledge from the
                // definition site does not transfer.
                self.lint_missed_reuse(&lam.body, &mut Vec::new(), path);
                path.truncate(seg);
            }
            Expr::Seq(a, b) => {
                self.lint_missed_reuse(a, cells, path);
                self.lint_missed_reuse(b, cells, path);
            }
            Expr::App(f, args) => {
                self.lint_missed_reuse(f, cells, path);
                for a in args {
                    self.lint_missed_reuse(a, cells, path);
                }
            }
            Expr::Call(_, args) | Expr::Prim(_, args) | Expr::Con { args, .. } => {
                for a in args {
                    self.lint_missed_reuse(a, cells, path);
                }
            }
            Expr::Dup(_, rest) | Expr::DecRef(_, rest) | Expr::DropToken(_, rest) => {
                self.lint_missed_reuse(rest, cells, path);
            }
            // A drop-reuse *is* a paired reuse: nothing missed here.
            Expr::DropReuse { body, .. } => self.lint_missed_reuse(body, cells, path),
            Expr::Var(_)
            | Expr::Lit(_)
            | Expr::Global(_)
            | Expr::Abort(_)
            | Expr::TokenOf(_)
            | Expr::NullToken => {}
        }
    }

    // ---- L2: unfused dup/drop --------------------------------------------

    /// Mirrors `passes::fuse` exactly: peel the maximal dup/drop prefix
    /// (with `prefix` modelling binder dups pushed down from the
    /// enclosing scope), report every pair `cancel` would remove, then
    /// recurse the way `fuse` does.
    fn lint_unfused(&mut self, e: &Expr, prefix: Vec<RcOp>, path: &mut String) {
        let mut ops = prefix;
        let tail = peel_ref(e, &mut ops);
        for var in cancellable_pairs(&mut ops) {
            self.emit(
                LintCode::UnfusedDupDrop,
                Severity::Warning,
                path,
                format!("dup/drop pair on `{var}` that fusion would cancel is still present"),
            );
        }
        match tail {
            Expr::Seq(first, rest) if matches!(first.as_ref(), Expr::IsUnique { .. }) => {
                self.lint_unfused_push(first, &mut ops, path);
                self.lint_unfused(rest, Vec::new(), path);
            }
            Expr::Let { rhs, body, .. } if matches!(rhs.as_ref(), Expr::IsUnique { .. }) => {
                self.lint_unfused_push(rhs, &mut ops, path);
                self.lint_unfused(body, Vec::new(), path);
            }
            other => self.lint_unfused_descend(other, path),
        }
    }

    fn lint_unfused_push(&mut self, cond: &Expr, ops: &mut Vec<RcOp>, path: &mut String) {
        let Expr::IsUnique {
            var,
            binders,
            unique,
            shared,
        } = cond
        else {
            unreachable!("guarded by caller")
        };
        let mut pushed = Vec::new();
        ops.retain(|op| match op {
            RcOp::Dup(y) if binders.contains(y) && y != var => {
                pushed.push(RcOp::Dup(y.clone()));
                false
            }
            _ => true,
        });
        let seg = push_seg(path, &format!("is-unique({var}):unique"));
        self.lint_unfused(unique, pushed.clone(), path);
        path.truncate(seg);
        let seg = push_seg(path, &format!("is-unique({var}):shared"));
        self.lint_unfused(shared, pushed, path);
        path.truncate(seg);
    }

    fn lint_unfused_descend(&mut self, e: &Expr, path: &mut String) {
        match e {
            Expr::Let { var, rhs, body } => {
                self.lint_unfused(rhs, Vec::new(), path);
                let seg = push_seg(path, &format!("let({var})"));
                self.lint_unfused(body, Vec::new(), path);
                path.truncate(seg);
            }
            Expr::Seq(a, b) => {
                self.lint_unfused(a, Vec::new(), path);
                self.lint_unfused(b, Vec::new(), path);
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                for arm in arms {
                    let name = &self.p.types.ctor(arm.ctor).name;
                    let seg = push_seg(path, &format!("match({scrutinee})/arm[{name}]"));
                    self.lint_unfused(&arm.body, Vec::new(), path);
                    path.truncate(seg);
                }
                if let Some(d) = default {
                    let seg = push_seg(path, &format!("match({scrutinee})/default"));
                    self.lint_unfused(d, Vec::new(), path);
                    path.truncate(seg);
                }
            }
            Expr::Lam(lam) => {
                let seg = push_seg(path, "lam");
                self.lint_unfused(&lam.body, Vec::new(), path);
                path.truncate(seg);
            }
            Expr::IsUnique { unique, shared, .. } => {
                self.lint_unfused(unique, Vec::new(), path);
                self.lint_unfused(shared, Vec::new(), path);
            }
            Expr::DropReuse { body, .. } => self.lint_unfused(body, Vec::new(), path),
            Expr::Free(_, rest) | Expr::DecRef(_, rest) | Expr::DropToken(_, rest) => {
                self.lint_unfused(rest, Vec::new(), path);
            }
            Expr::App(f, args) => {
                self.lint_unfused(f, Vec::new(), path);
                for a in args {
                    self.lint_unfused(a, Vec::new(), path);
                }
            }
            Expr::Call(_, args) | Expr::Prim(_, args) | Expr::Con { args, .. } => {
                for a in args {
                    self.lint_unfused(a, Vec::new(), path);
                }
            }
            Expr::Dup(..) | Expr::Drop(..) => unreachable!("peeled by caller"),
            Expr::Var(_)
            | Expr::Lit(_)
            | Expr::Global(_)
            | Expr::Abort(_)
            | Expr::TokenOf(_)
            | Expr::NullToken => {}
        }
    }

    // ---- L3: borrowable parameter ----------------------------------------

    fn lint_borrowable(&mut self, f: &crate::ir::program::FunDef, inferred: &[bool]) {
        let active = self.p.borrows.get(self.fun.0 as usize);
        for (i, param) in f.params.iter().enumerate() {
            let would_borrow = inferred.get(i).copied().unwrap_or(false);
            let is_borrowed = active.and_then(|m| m.get(i)).copied().unwrap_or(false);
            if would_borrow && !is_borrowed {
                let saved = count_dup_drop(&f.body, param);
                self.emit(
                    LintCode::BorrowableParam,
                    Severity::Note,
                    "",
                    format!(
                        "parameter {i} (`{param}`) could be borrowed (§6): borrow inference \
                         proves it has no owning use, which would save {saved} dup/drop op(s) \
                         in this body under the current configuration"
                    ),
                );
            }
        }
    }

    // ---- L4: non-FBIP recursion ------------------------------------------

    fn lint_non_fbip(&mut self, body: &Expr) {
        // FBIP (§2.4) is a property of *transformers*: functions that
        // take a structure apart and rebuild it, where every allocation
        // could be paid for by a reuse token from a consumed cell. A
        // pure generator (recursively building a list/tree from
        // scalars) never destructures a cell, so it has no tokens to
        // reuse and is not an FBIP candidate — flagging it is noise.
        if !consumes_cells(self.p, body) {
            return;
        }
        let t = fbip_walk(self.p, self.fun, body);
        if t.bad {
            self.emit(
                LintCode::NonFbipRecursion,
                Severity::Note,
                "",
                format!(
                    "`{}` recurses and allocates fresh constructor cells on the same path \
                     with no reuse token — not functional-but-in-place (§2.4/§2.6)",
                    self.fun_name
                ),
            );
        }
    }
}

fn push_seg(path: &mut String, seg: &str) -> usize {
    let mark = path.len();
    if !path.is_empty() {
        path.push('/');
    }
    path.push_str(seg);
    mark
}

/// Does `e` contain a fresh (tokenless) constructor allocation of
/// `arity` fields, outside lambda bodies?
fn find_fresh_alloc<'a>(p: &'a Program, e: &Expr, arity: usize) -> Option<&'a str> {
    match e {
        Expr::Con {
            ctor, args, reuse, ..
        } => {
            if reuse.is_none() && p.types.ctor(*ctor).arity == arity {
                return Some(p.types.ctor(*ctor).name.as_ref());
            }
            args.iter().find_map(|a| find_fresh_alloc(p, a, arity))
        }
        // A lambda body allocates later, in a different extent.
        Expr::Lam(_) => None,
        Expr::App(f, args) => find_fresh_alloc(p, f, arity)
            .or_else(|| args.iter().find_map(|a| find_fresh_alloc(p, a, arity))),
        Expr::Call(_, args) | Expr::Prim(_, args) => {
            args.iter().find_map(|a| find_fresh_alloc(p, a, arity))
        }
        Expr::Let { rhs, body, .. } => {
            find_fresh_alloc(p, rhs, arity).or_else(|| find_fresh_alloc(p, body, arity))
        }
        Expr::Seq(a, b) => find_fresh_alloc(p, a, arity).or_else(|| find_fresh_alloc(p, b, arity)),
        Expr::Match { arms, default, .. } => arms
            .iter()
            .find_map(|arm| find_fresh_alloc(p, &arm.body, arity))
            .or_else(|| {
                default
                    .as_deref()
                    .and_then(|d| find_fresh_alloc(p, d, arity))
            }),
        Expr::Dup(_, rest)
        | Expr::Drop(_, rest)
        | Expr::Free(_, rest)
        | Expr::DecRef(_, rest)
        | Expr::DropToken(_, rest) => find_fresh_alloc(p, rest, arity),
        Expr::DropReuse { body, .. } => find_fresh_alloc(p, body, arity),
        Expr::IsUnique { unique, shared, .. } => {
            find_fresh_alloc(p, unique, arity).or_else(|| find_fresh_alloc(p, shared, arity))
        }
        Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => None,
    }
}

fn count_dup_drop(e: &Expr, var: &Var) -> usize {
    let mut n = 0;
    e.visit(&mut |e| match e {
        Expr::Dup(v, _) | Expr::Drop(v, _) if v == var => n += 1,
        _ => {}
    });
    n
}

/// One instruction of a dup/drop prefix (mirrors `passes::fuse::RcOp`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum RcOp {
    Dup(Var),
    Drop(Var),
}

/// Splits a maximal leading dup/drop run, appending to `ops`, and
/// returns the tail (by reference — the linter never rewrites).
fn peel_ref<'a>(mut e: &'a Expr, ops: &mut Vec<RcOp>) -> &'a Expr {
    loop {
        match e {
            Expr::Dup(v, rest) => {
                ops.push(RcOp::Dup(v.clone()));
                e = rest;
            }
            Expr::Drop(v, rest) => {
                ops.push(RcOp::Drop(v.clone()));
                e = rest;
            }
            other => return other,
        }
    }
}

/// The exact cancellation loop of `passes::fuse::cancel`, additionally
/// returning the variable of every pair removed.
fn cancellable_pairs(ops: &mut Vec<RcOp>) -> Vec<Var> {
    let mut pairs = Vec::new();
    loop {
        let mut cancelled = false;
        'scan: for j in 0..ops.len() {
            if let RcOp::Drop(x) = &ops[j] {
                for i in (0..j).rev() {
                    match &ops[i] {
                        RcOp::Dup(y) if y == x => {
                            pairs.push(x.clone());
                            ops.remove(j);
                            ops.remove(i);
                            cancelled = true;
                            break 'scan;
                        }
                        RcOp::Dup(_) => continue,
                        RcOp::Drop(_) => break,
                    }
                }
            }
        }
        if !cancelled {
            return pairs;
        }
    }
}

/// Per-path flags for the L4 walk: does a subexpression contain a
/// self-call, a fresh allocation, and do both occur on one path? The
/// triple is precise: a path crosses every operand of a `Seq`/`Let` but
/// exactly one arm of a `Match`.
#[derive(Clone, Copy, Default)]
struct FbipFlags {
    call: bool,
    alloc: bool,
    bad: bool,
}

impl FbipFlags {
    /// Sequential composition: both halves lie on every path.
    fn then(self, other: FbipFlags) -> FbipFlags {
        FbipFlags {
            call: self.call || other.call,
            alloc: self.alloc || other.alloc,
            bad: self.bad || other.bad || (self.call && other.alloc) || (self.alloc && other.call),
        }
    }

    /// Branch join: a path takes one side.
    fn join(self, other: FbipFlags) -> FbipFlags {
        FbipFlags {
            call: self.call || other.call,
            alloc: self.alloc || other.alloc,
            bad: self.bad || other.bad,
        }
    }
}

/// Does the body ever destructure a constructor cell (match an arm of
/// arity ≥ 1)? Only such functions can be "functional but in-place".
fn consumes_cells(p: &Program, body: &Expr) -> bool {
    let mut found = false;
    body.visit(&mut |e| {
        if let Expr::Match { arms, .. } = e {
            if arms.iter().any(|a| p.types.ctor(a.ctor).arity >= 1) {
                found = true;
            }
        }
    });
    found
}

fn fbip_walk(p: &Program, fun: FunId, e: &Expr) -> FbipFlags {
    match e {
        Expr::Call(fid, args) => {
            let mut t = FbipFlags::default();
            for a in args {
                t = t.then(fbip_walk(p, fun, a));
            }
            if *fid == fun {
                t = t.then(FbipFlags {
                    call: true,
                    ..Default::default()
                });
            }
            t
        }
        Expr::Con {
            ctor, args, reuse, ..
        } => {
            let mut t = FbipFlags::default();
            for a in args {
                t = t.then(fbip_walk(p, fun, a));
            }
            if reuse.is_none() && p.types.ctor(*ctor).arity >= 1 {
                t = t.then(FbipFlags {
                    alloc: true,
                    ..Default::default()
                });
            }
            t
        }
        Expr::Match { arms, default, .. } => {
            let mut t: Option<FbipFlags> = None;
            for arm in arms {
                let a = fbip_walk(p, fun, &arm.body);
                t = Some(match t {
                    Some(t) => t.join(a),
                    None => a,
                });
            }
            if let Some(d) = default {
                let a = fbip_walk(p, fun, d);
                t = Some(match t {
                    Some(t) => t.join(a),
                    None => a,
                });
            }
            t.unwrap_or_default()
        }
        Expr::IsUnique { unique, shared, .. } => {
            fbip_walk(p, fun, unique).join(fbip_walk(p, fun, shared))
        }
        Expr::Let { rhs, body, .. } => fbip_walk(p, fun, rhs).then(fbip_walk(p, fun, body)),
        Expr::Seq(a, b) => fbip_walk(p, fun, a).then(fbip_walk(p, fun, b)),
        Expr::App(f, args) => {
            let mut t = fbip_walk(p, fun, f);
            for a in args {
                t = t.then(fbip_walk(p, fun, a));
            }
            t
        }
        Expr::Prim(_, args) => {
            let mut t = FbipFlags::default();
            for a in args {
                t = t.then(fbip_walk(p, fun, a));
            }
            t
        }
        // A closure body runs in a different dynamic extent; recursion
        // through it is not the direct self-recursion L4 targets.
        Expr::Lam(_) => FbipFlags::default(),
        Expr::Dup(_, rest)
        | Expr::Drop(_, rest)
        | Expr::Free(_, rest)
        | Expr::DecRef(_, rest)
        | Expr::DropToken(_, rest) => fbip_walk(p, fun, rest),
        Expr::DropReuse { body, .. } => fbip_walk(p, fun, body),
        Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => FbipFlags::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};
    use crate::passes::fuse::fuse_program;

    #[test]
    fn l2_found_then_gone_after_fuse() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        pb.fun(
            "f",
            vec![x.clone()],
            Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::int(1))),
        );
        let mut p = pb.finish();
        assert_eq!(lint_program(&p).count(LintCode::UnfusedDupDrop), 1);
        fuse_program(&mut p);
        assert_eq!(lint_program(&p).count(LintCode::UnfusedDupDrop), 0);
    }

    #[test]
    fn l2_sees_through_binder_push_down() {
        // The Fig. 1c shape: dup x; if is-unique(xs) { drop x; free xs }
        // else { decref xs } — fusable only after pushing `dup x` into
        // the branches. The lint must flag it, and stop flagging once
        // fuse has run.
        let mut pb = ProgramBuilder::new();
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let body = Expr::dup(
            x.clone(),
            Expr::seq(
                Expr::IsUnique {
                    var: xs.clone(),
                    binders: vec![x.clone()],
                    unique: Box::new(Expr::drop_(
                        x.clone(),
                        Expr::Free(xs.clone(), Box::new(Expr::unit())),
                    )),
                    shared: Box::new(Expr::DecRef(xs.clone(), Box::new(Expr::unit()))),
                },
                Expr::int(7),
            ),
        );
        pb.fun("f", vec![xs, x], body);
        let mut p = pb.finish();
        let d = lint_program(&p);
        assert_eq!(d.count(LintCode::UnfusedDupDrop), 1);
        assert!(d.iter().any(|d| d.path.contains("is-unique")), "{d:?}");
        fuse_program(&mut p);
        assert_eq!(lint_program(&p).count(LintCode::UnfusedDupDrop), 0);
    }

    #[test]
    fn l1_flags_drop_then_same_size_alloc() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        // match xs { Cons(x,xx) -> drop xs; Cons(1, 2)  | Nil -> Nil }
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(
                    cons,
                    vec![x.clone(), xx.clone()],
                    Expr::drop_(xs.clone(), con(cons, vec![Expr::int(1), Expr::int(2)])),
                ),
                arm0(nil, con(nil, vec![])),
            ],
            default: None,
        };
        pb.fun("f", vec![xs], body);
        let p = pb.finish();
        let d = lint_program(&p);
        assert_eq!(d.count(LintCode::MissedReuse), 1);
        let l1 = d.iter().find(|d| d.code == LintCode::MissedReuse).unwrap();
        assert!(l1.path.contains("arm[Cons]"), "{}", l1.path);
        assert!(l1.message.contains("size class 2"), "{}", l1.message);
    }

    #[test]
    fn l1_silent_when_reuse_paired() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = cs[1];
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let ru = pb.fresh("_ru");
        let mut reuse_arm = arm(
            cons,
            vec![x.clone(), xx.clone()],
            Expr::DropReuse {
                var: xs.clone(),
                token: ru.clone(),
                body: Box::new(Expr::Con {
                    ctor: cons,
                    args: vec![Expr::int(1), Expr::int(2)],
                    reuse: Some(ru.clone()),
                    skip: vec![],
                }),
            },
        );
        reuse_arm.reuse_token = Some(ru);
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![reuse_arm],
            default: Some(Box::new(Expr::int(0))),
        };
        pb.fun("f", vec![xs], body);
        let p = pb.finish();
        assert_eq!(lint_program(&p).count(LintCode::MissedReuse), 0);
    }

    #[test]
    fn l3_flags_owned_param_inference_would_borrow() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        // len-like: only matches on xs, never consumes it.
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(cons, vec![x.clone(), xx.clone()], Expr::int(1)),
                arm0(nil, Expr::int(0)),
            ],
            default: None,
        };
        let f = pb.fun("len", vec![xs], body);
        let mut p = pb.finish();
        // Not the entry point, all params owned by default.
        assert!(p.entry.is_none());
        let d = lint_program(&p);
        assert_eq!(d.count(LintCode::BorrowableParam), 1);
        // Activating the inferred masks silences it.
        crate::passes::borrow::borrow_program(&mut p);
        assert!(p.borrow_mask(f).is_some());
        assert_eq!(lint_program(&p).count(LintCode::BorrowableParam), 0);
    }

    #[test]
    fn l4_flags_allocating_recursion_but_not_reuse() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let f = pb.declare("map1", vec![xs.clone()]);
        // map1(Cons(x,xx)) = Cons(x, map1(xx)) — fresh alloc on the
        // recursive path.
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm(
                        cons,
                        vec![x.clone(), xx.clone()],
                        con(
                            cons,
                            vec![
                                Expr::Var(x.clone()),
                                Expr::Call(f, vec![Expr::Var(xx.clone())]),
                            ],
                        ),
                    ),
                    arm0(nil, con(nil, vec![])),
                ],
                default: None,
            },
        );
        let p = pb.finish();
        assert_eq!(lint_program(&p).count(LintCode::NonFbipRecursion), 1);

        // Same shape but the allocation carries a reuse token: FBIP.
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let ru = pb.fresh("_ru");
        let f = pb.declare("map2", vec![xs.clone()]);
        let mut reuse_arm = arm(
            cons,
            vec![x.clone(), xx.clone()],
            Expr::DropReuse {
                var: xs.clone(),
                token: ru.clone(),
                body: Box::new(Expr::Con {
                    ctor: cons,
                    args: vec![
                        Expr::Var(x.clone()),
                        Expr::Call(f, vec![Expr::Var(xx.clone())]),
                    ],
                    reuse: Some(ru.clone()),
                    skip: vec![],
                }),
            },
        );
        reuse_arm.reuse_token = Some(ru);
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![reuse_arm, arm0(nil, con(nil, vec![]))],
                default: None,
            },
        );
        let p = pb.finish();
        assert_eq!(lint_program(&p).count(LintCode::NonFbipRecursion), 0);
    }
}
