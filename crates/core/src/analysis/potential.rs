//! Potential-based amortized cost analysis: linear symbolic bounds for
//! the RC counters (ROADMAP item 5, "Automatic Linear Resource Bound
//! Analysis" applied to λ¹).
//!
//! Where [`super::cost`] widens every recursive bound to ω, this module
//! infers per-function **affine bounds** over the [`Atom`]s of
//! [`super::linear`] — e.g. `alloc ≤ |xs.Cons|` for `map`, or
//! `alloc ≤ max(n − i, 0)` for a counting loop — and packages them as
//! [`FunCert`] certificates (see [`super::certificate`]).
//!
//! # How it works
//!
//! The engine is a *path-sensitive symbolic evaluator* plus a
//! *guess-and-check* inferencer:
//!
//! 1. A path evaluator enumerates the control-flow paths of a function
//!    body, tracking for each path (a) the accumulated cost in every
//!    counter as a [`SymBound`], (b) the [`Facts`] the path learned from
//!    comparison guards and match arms, and (c) an abstract value
//!    for the result. Calls are *not* unfolded: a call site
//!    charges the callee's certificate, instantiated by substituting the
//!    caller's abstract arguments into the callee's atoms. For a
//!    recursive function the certificate under test itself supplies the
//!    inductive hypothesis, so checking a certificate is checking a
//!    verification condition per path — induction over the call tree of
//!    terminating runs.
//! 2. Inference processes functions in reverse-topological SCC order.
//!    Non-recursive functions get the pointwise-max join of their path
//!    costs (always checker-valid). Self-recursive functions get a small
//!    candidate space — `base + d·measure` where measures come from the
//!    atoms the recursive paths destructure and from the positive parts
//!    of their guard facts — filtered through the checker, then
//!    *coordinate-minimized*: every coefficient is decremented while the
//!    certificate still checks, so any further downward perturbation is
//!    rejected by construction. Mutual recursion stays at ω.
//!
//! # Cost models
//!
//! Every certificate carries two bound vectors:
//!
//! * [`CostMode::Worst`] — unconditional worst case, mirroring
//!   [`super::cost`]'s per-instruction charges (a `Con@ru` may both
//!   allocate and reuse depending on the token; `is-unique` explores
//!   both branches). Sound against the runtime `Stats` on every run.
//! * [`CostMode::Fbip`] — the §2.4/Thm. 2 regime: every uniqueness test
//!   hits, every reuse token is valid. `Con@ru` never allocates fresh
//!   and `is-unique` takes only the unique branch. These bounds are
//!   *conditional*: the replay validator asserts them only for frames
//!   whose `unique_tests == unique_hits`.
//!
//! Abort-terminated paths are excluded from all claims: certificates
//! cover normally-completing runs (which is also exactly what the replay
//! validator measures).

use super::super::ir::expr::{Arm, Expr, Lambda, Lit, PrimOp};
use super::super::ir::program::{CtorId, FunId, Program, TypeTable};
use super::certificate::{CertSet, FunCert};
use super::linear::{Atom, Facts, LinExpr, RawExpr, SymBound};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Number of tracked cost counters (same set as [`super::cost`]).
pub const NCOUNTERS: usize = 8;

/// Counter names, index-aligned with the bound vectors in a
/// [`FunCert`] and with [`super::cost::COST_FIELDS`].
pub const COUNTERS: [&str; NCOUNTERS] = [
    "dup",
    "drop",
    "decref",
    "is_unique",
    "free",
    "drop_token",
    "alloc",
    "reuse_alloc",
];

pub(crate) const C_DUP: usize = 0;
pub(crate) const C_DROP: usize = 1;
pub(crate) const C_DECREF: usize = 2;
pub(crate) const C_IS_UNIQUE: usize = 3;
pub(crate) const C_FREE: usize = 4;
pub(crate) const C_DROP_TOKEN: usize = 5;
pub(crate) const C_ALLOC: usize = 6;
pub(crate) const C_REUSE: usize = 7;

/// Which cost model a bound vector describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMode {
    /// Unconditional worst case (sound on every run).
    Worst,
    /// First-class FBIP regime: all uniqueness tests hit, all reuse
    /// tokens valid. Conditional — see the module docs.
    Fbip,
}

/// Per-constructor cell-count bounds of an abstract value. Keys are
/// every arity ≥ 1 constructor of the program; [`SymBound::Omega`]
/// means unknown.
pub(crate) type Counts = BTreeMap<CtorId, SymBound>;

/// A known lambda value: the abstraction plus a snapshot of its
/// captured environment.
#[derive(Clone)]
pub(crate) struct LamVal {
    lam: Rc<Lambda>,
    captures: Vec<(u32, AbsVal)>,
}

/// Comparison provenance of a boolean value: raw facts that hold on the
/// true / false branches of a match on it.
#[derive(Clone, Default)]
pub(crate) struct GuardFacts {
    if_true: Vec<RawExpr>,
    if_false: Vec<RawExpr>,
}

/// The abstract value of the symbolic evaluator — a product of
/// independent views, each optional.
#[derive(Clone, Default)]
pub(crate) struct AbsVal {
    /// Exact affine raw integer value over the parameters.
    raw: Option<RawExpr>,
    /// Upper bounds on reachable constructor cells; `None` = unknown.
    counts: Option<Counts>,
    /// Known closure.
    lam: Option<LamVal>,
    /// Known top-level function used as a value.
    global: Option<FunId>,
    /// This value *is* parameter `i` (used to meter closure-parameter
    /// applications).
    param: Option<u32>,
    /// Comparison provenance (for guard facts at `match`).
    guard: Option<GuardFacts>,
    /// Known constructor arity (mirrors `cost.rs`'s arity tracking for
    /// `drop-reuse`).
    arity: Option<u64>,
    /// Reuse-token validity: `Some(true)` = definitely a claimed cell,
    /// `Some(false)` = definitely the null token, `None` = unknown.
    token_valid: Option<Option<bool>>,
}

impl AbsVal {
    fn unknown() -> AbsVal {
        AbsVal::default()
    }

    fn int(raw: RawExpr, zero: &Counts) -> AbsVal {
        AbsVal {
            raw: Some(raw),
            counts: Some(zero.clone()),
            ..AbsVal::default()
        }
    }
}

/// One fully-evaluated path through a function body.
pub(crate) struct PathOut {
    /// What the path knows (guards + match arms).
    pub(crate) facts: Facts,
    /// Accumulated cost per counter.
    pub(crate) cost: [SymBound; NCOUNTERS],
    /// Applications of each closure parameter.
    pub(crate) apps: Vec<SymBound>,
    /// Constructor-cell counts of the result value (`None` = unknown).
    pub(crate) ret: Option<Counts>,
    /// Number of self-calls on the path (measure collection).
    pub(crate) self_calls: u32,
}

/// Shared evaluation context.
struct Cx<'a> {
    p: &'a Program,
    certs: &'a CertSet,
    mode: CostMode,
    fun: FunId,
    nparams: usize,
    max_arity: u64,
    counted: Vec<CtorId>,
    path_cap: usize,
}

/// Mutable per-path evaluation state.
#[derive(Clone)]
struct State {
    env: HashMap<u32, AbsVal>,
    facts: Facts,
    cost: [SymBound; NCOUNTERS],
    apps: Vec<SymBound>,
    self_calls: u32,
    aborted: bool,
    /// Set when the path count overflowed and this state stands for
    /// "everything else" with ω costs.
    exploded: bool,
}

const PATH_CAP: usize = 512;
const MINIMIZE_CAP: usize = 256;

fn zero_cost() -> [SymBound; NCOUNTERS] {
    std::array::from_fn(|_| SymBound::zero())
}

impl State {
    fn charge(&mut self, slot: usize, amount: i64) {
        self.cost[slot] = self.cost[slot].add_k(amount);
    }

    fn charge_bound(&mut self, slot: usize, b: &SymBound) {
        self.cost[slot] = self.cost[slot].add(b);
    }

    fn explode(&mut self) {
        for c in &mut self.cost {
            *c = SymBound::Omega;
        }
        for a in &mut self.apps {
            *a = SymBound::Omega;
        }
        self.exploded = true;
    }
}

impl<'a> Cx<'a> {
    fn new(p: &'a Program, certs: &'a CertSet, fun: FunId, mode: CostMode) -> Cx<'a> {
        let counted: Vec<CtorId> = p
            .types
            .ctors()
            .filter(|(_, info)| info.arity >= 1)
            .map(|(id, _)| id)
            .collect();
        let max_arity = p
            .types
            .ctors()
            .map(|(_, info)| info.arity as u64)
            .max()
            .unwrap_or(0);
        Cx {
            p,
            certs,
            mode,
            fun,
            nparams: p.funs[fun.0 as usize].params.len(),
            max_arity,
            counted,
            path_cap: PATH_CAP,
        }
    }

    fn zero_counts(&self) -> Counts {
        self.counted
            .iter()
            .map(|&c| (c, SymBound::zero()))
            .collect()
    }

    fn param_val(&self, i: u32) -> AbsVal {
        let counts = self
            .counted
            .iter()
            .map(|&c| {
                (
                    c,
                    SymBound::Finite(LinExpr::atom(Atom::Count { param: i, ctor: c })),
                )
            })
            .collect();
        AbsVal {
            raw: Some(RawExpr::var(i)),
            counts: Some(counts),
            param: Some(i),
            ..AbsVal::default()
        }
    }
}

/// Instantiates a callee bound into the caller's space by substituting
/// the caller's abstract arguments for the callee's atoms. Negative
/// atom coefficients are dropped — the arguments only provide *upper*
/// bounds, so subtracting them is unsound, while dropping a negative
/// term only loosens the bound.
fn instantiate(b: &SymBound, args: &[AbsVal]) -> SymBound {
    let SymBound::Finite(e) = b else {
        return SymBound::Omega;
    };
    let mut out = SymBound::konst(e.k);
    for (atom, &c) in &e.terms {
        if c < 0 {
            continue;
        }
        let contrib = match atom {
            Atom::Count { param, ctor } => match args.get(*param as usize) {
                Some(a) => match &a.counts {
                    Some(cv) => cv.get(ctor).cloned().unwrap_or_else(SymBound::zero),
                    None => SymBound::Omega,
                },
                None => SymBound::Omega,
            },
            Atom::Pos(r) => {
                let subst = r.subst(|p| args.get(p as usize).and_then(|a| a.raw.clone()));
                match subst {
                    Some(r2) => match r2.as_const() {
                        Some(k) => SymBound::konst(k.max(0)),
                        None => SymBound::Finite(LinExpr::atom(Atom::Pos(r2))),
                    },
                    None => SymBound::Omega,
                }
            }
        };
        out = out.add(&contrib.scale(c));
    }
    out
}

/// Per-slot product `a · b`, finite only when one side is a constant.
fn mul_bounds(a: &SymBound, b: &SymBound) -> SymBound {
    if let Some(k) = a.as_const() {
        return b.scale(k.max(0));
    }
    if let Some(k) = b.as_const() {
        return a.scale(k.max(0));
    }
    SymBound::Omega
}

/// Evaluates every control-flow path of `fun`'s body under the given
/// certificate set (used for callee and self-call charges) and cost
/// mode. Aborting paths are dropped.
pub(crate) fn eval_fun_paths(
    p: &Program,
    certs: &CertSet,
    fun: FunId,
    mode: CostMode,
) -> Vec<PathOut> {
    let cx = Cx::new(p, certs, fun, mode);
    let f = &p.funs[fun.0 as usize];
    let mut env = HashMap::new();
    for (i, v) in f.params.iter().enumerate() {
        env.insert(v.id(), cx.param_val(i as u32));
    }
    let st = State {
        env,
        facts: Facts::default(),
        cost: zero_cost(),
        apps: vec![SymBound::zero(); cx.nparams],
        self_calls: 0,
        aborted: false,
        exploded: false,
    };
    let results = eval(&cx, &f.body, st);
    results
        .into_iter()
        .filter(|(st, _)| !st.aborted)
        .map(|(st, v)| PathOut {
            // An exploded state stands for every path beyond the cap
            // but evaluation continued with only path #0's environment
            // and value: its result counts and any facts learned after
            // the collapse describe a strict subset of the real paths.
            // Claim nothing, so every finite slot claim — ret included —
            // fails against this path in both inference and the
            // independent checker (costs and apps are already sticky-ω).
            ret: if st.exploded { None } else { v.counts },
            facts: if st.exploded {
                Facts::default()
            } else {
                st.facts
            },
            cost: st.cost,
            apps: st.apps,
            self_calls: st.self_calls,
        })
        .collect()
}

/// Sequential evaluation of an expression list (threading branching
/// states through each element).
fn eval_list(cx: &Cx, exprs: &[Expr], st: State) -> Vec<(State, Vec<AbsVal>)> {
    let mut acc: Vec<(State, Vec<AbsVal>)> = vec![(st, Vec::with_capacity(exprs.len()))];
    for e in exprs {
        let mut next = Vec::new();
        for (s, vals) in acc {
            if s.aborted {
                next.push((s, vals));
                continue;
            }
            for (s2, v) in eval(cx, e, s) {
                let mut vs = vals.clone();
                vs.push(v);
                next.push((s2, vs));
            }
        }
        acc = cap_paths(cx, next, |(s, _)| s);
    }
    acc
}

/// Enforces the path cap by collapsing an oversized path set into one
/// exploded (all-ω) state. The survivor keeps path #0's environment and
/// value only so evaluation can continue; the sticky `exploded` flag
/// marks everything derived from them as untrusted, and
/// [`eval_fun_paths`] strips the final value's counts and the
/// accumulated facts from exploded paths before they reach any claim
/// check.
fn cap_paths<T>(cx: &Cx, mut paths: Vec<T>, state_of: impl Fn(&mut T) -> &mut State) -> Vec<T> {
    if paths.len() <= cx.path_cap {
        return paths;
    }
    let mut first = paths.swap_remove(0);
    {
        let s = state_of(&mut first);
        s.explode();
        s.facts = Facts::default();
        s.aborted = false;
    }
    vec![first]
}

/// Charges a direct or indirect call of `callee` with abstract `args`
/// onto the state, returning the abstract result.
fn charge_call(cx: &Cx, st: &mut State, callee: FunId, args: &[AbsVal]) -> AbsVal {
    if callee == cx.fun {
        st.self_calls += 1;
    }
    let cert = &cx.certs.funs[callee.0 as usize];
    let bounds = match cx.mode {
        CostMode::Worst => &cert.worst,
        CostMode::Fbip => &cert.fbip,
    };
    for (slot, b) in bounds.iter().enumerate() {
        let contrib = instantiate(b, args);
        st.charge_bound(slot, &contrib);
    }
    // Closure-parameter applications inside the callee: each application
    // of argument j costs whatever applying that argument costs.
    for (j, arg) in args.iter().enumerate() {
        let apps_j = cert
            .apps
            .get(j)
            .map(|b| instantiate(b, args))
            .unwrap_or(SymBound::Omega);
        if apps_j.as_const() == Some(0) {
            continue;
        }
        if let Some(i) = arg.param {
            // Pass-through: our own closure parameter is applied by the
            // callee; meter it, our caller pays.
            st.apps[i as usize] = st.apps[i as usize].add(&apps_j);
        } else if let Some(lv) = &arg.lam {
            let per_app = lam_app_cost(cx, lv);
            for (slot, per) in per_app.iter().enumerate() {
                let c = mul_bounds(&apps_j, per);
                st.charge_bound(slot, &c);
            }
        } else if let Some(g) = arg.global {
            let gb = match cx.mode {
                CostMode::Worst => &cx.certs.funs[g.0 as usize].worst,
                CostMode::Fbip => &cx.certs.funs[g.0 as usize].fbip,
            };
            for (slot, b) in gb.iter().enumerate() {
                // Globals apply with zero (appᵣ) overhead — direct call.
                let per = instantiate(b, &[]);
                let c = mul_bounds(&apps_j, &per);
                st.charge_bound(slot, &c);
            }
        } else {
            // The callee may apply an argument we know nothing about.
            for c in &mut st.cost {
                *c = SymBound::Omega;
            }
        }
    }
    // Result: constructor counts from the callee's ret bounds.
    let counts: Counts = cx
        .counted
        .iter()
        .map(|&ct| {
            let b = cert
                .ret
                .get(&ct)
                .map(|b| instantiate(b, args))
                .unwrap_or(SymBound::Omega);
            (ct, b)
        })
        .collect();
    AbsVal {
        counts: Some(counts),
        ..AbsVal::default()
    }
}

/// The per-application cost of a known lambda: the (appᵣ) overhead —
/// one dup per capture, one drop of the closure — plus the joined cost
/// of the body with unknown parameters.
fn lam_app_cost(cx: &Cx, lv: &LamVal) -> [SymBound; NCOUNTERS] {
    let mut env = HashMap::new();
    for pvar in &lv.lam.params {
        env.insert(pvar.id(), AbsVal::unknown());
    }
    for (id, v) in &lv.captures {
        env.insert(*id, v.clone());
    }
    let st = State {
        env,
        facts: Facts::default(),
        cost: zero_cost(),
        apps: vec![SymBound::zero(); cx.nparams],
        self_calls: 0,
        aborted: false,
        exploded: false,
    };
    let mut out = zero_cost();
    out[C_DUP] = SymBound::konst(lv.lam.captures.len() as i64);
    out[C_DROP] = SymBound::konst(1);
    let mut body = zero_cost();
    let mut any = false;
    let mut apply_inside = false;
    for (s, _) in eval(cx, &lv.lam.body, st) {
        if s.aborted {
            continue;
        }
        for (slot, b) in body.iter_mut().enumerate() {
            *b = if any {
                b.join(&s.cost[slot])
            } else {
                s.cost[slot].clone()
            };
        }
        if s.apps.iter().any(|a| a.as_const() != Some(0)) {
            apply_inside = true;
        }
        any = true;
    }
    for slot in 0..NCOUNTERS {
        out[slot] = if apply_inside {
            SymBound::Omega
        } else {
            out[slot].add(&body[slot])
        };
    }
    out
}

/// Applies a value: direct (global), inline (known lambda), metered
/// (closure parameter), or unknown (ω).
fn apply_value(cx: &Cx, mut st: State, f: AbsVal, args: Vec<AbsVal>) -> Vec<(State, AbsVal)> {
    if let Some(g) = f.global {
        // `Value::Global` applies as a direct call: no closure, no RC
        // traffic (the machine's prepare_apply special case).
        let v = charge_call(cx, &mut st, g, &args);
        return vec![(st, v)];
    }
    if let Some(lv) = f.lam.clone() {
        if lv.lam.params.len() != args.len() {
            st.explode();
            return vec![(st, AbsVal::unknown())];
        }
        // (appᵣ): dup every capture, drop the closure, enter the body.
        st.charge(C_DUP, lv.lam.captures.len() as i64);
        st.charge(C_DROP, 1);
        let saved_env = st.env.clone();
        let mut env = HashMap::new();
        for (pvar, a) in lv.lam.params.iter().zip(args) {
            env.insert(pvar.id(), a);
        }
        for (id, v) in &lv.captures {
            env.insert(*id, v.clone());
        }
        st.env = env;
        let results = eval(cx, &lv.lam.body, st);
        return results
            .into_iter()
            .map(|(mut s, v)| {
                s.env = saved_env.clone();
                (s, v)
            })
            .collect();
    }
    if let Some(i) = f.param {
        // Applying our own closure parameter: meter it; the caller pays
        // the actual cost at instantiation time.
        st.apps[i as usize] = st.apps[i as usize].add_k(1);
        return vec![(st, AbsVal::unknown())];
    }
    // Unknown callee: no finite bound.
    st.explode();
    st.aborted = false;
    vec![(st, AbsVal::unknown())]
}

/// Comparison guard facts for a primitive, when both operands have raw
/// views. `Eq` true gives both directions; `Eq` false / `Ne` true are
/// non-convex and give nothing.
fn guard_of(op: PrimOp, a: &AbsVal, b: &AbsVal) -> Option<GuardFacts> {
    let (ra, rb) = (a.raw.as_ref()?, b.raw.as_ref()?);
    let lt = |x: &RawExpr, y: &RawExpr| y.sub(x)?.add_k(-1); // x < y ⟹ y − x − 1 ≥ 0
    let le = |x: &RawExpr, y: &RawExpr| y.sub(x); // x ≤ y ⟹ y − x ≥ 0
    let g = match op {
        PrimOp::Lt => GuardFacts {
            if_true: vec![lt(ra, rb)?],
            if_false: vec![le(rb, ra)?],
        },
        PrimOp::Le => GuardFacts {
            if_true: vec![le(ra, rb)?],
            if_false: vec![lt(rb, ra)?],
        },
        PrimOp::Gt => GuardFacts {
            if_true: vec![lt(rb, ra)?],
            if_false: vec![le(ra, rb)?],
        },
        PrimOp::Ge => GuardFacts {
            if_true: vec![le(rb, ra)?],
            if_false: vec![lt(ra, rb)?],
        },
        PrimOp::Eq => GuardFacts {
            if_true: vec![le(ra, rb)?, le(rb, ra)?],
            if_false: vec![],
        },
        PrimOp::Ne => GuardFacts {
            if_true: vec![],
            if_false: vec![le(ra, rb)?, le(rb, ra)?],
        },
        _ => return None,
    };
    Some(g)
}

/// The raw view of a primitive result, when computable exactly.
fn prim_raw(op: PrimOp, args: &[AbsVal]) -> Option<RawExpr> {
    let raw = |i: usize| args.get(i).and_then(|a| a.raw.as_ref());
    match op {
        PrimOp::Add => raw(0)?.add(raw(1)?),
        PrimOp::Sub => raw(0)?.sub(raw(1)?),
        PrimOp::Neg => raw(0)?.scale(-1),
        PrimOp::Mul => {
            let (a, b) = (raw(0)?, raw(1)?);
            if let Some(k) = a.as_const() {
                b.scale(k)
            } else if let Some(k) = b.as_const() {
                a.scale(k)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The core path-sensitive evaluator. Returns every resulting
/// (state, value) pair; aborted states carry no value of interest.
fn eval(cx: &Cx, e: &Expr, mut st: State) -> Vec<(State, AbsVal)> {
    if st.aborted {
        return vec![(st, AbsVal::unknown())];
    }
    match e {
        Expr::Var(v) => {
            let val = st.env.get(&v.id()).cloned().unwrap_or_else(AbsVal::unknown);
            vec![(st, val)]
        }
        Expr::Lit(Lit::Int(k)) => {
            let v = AbsVal::int(RawExpr::konst(*k), &cx.zero_counts());
            vec![(st, v)]
        }
        Expr::Lit(Lit::Unit) => {
            let v = AbsVal {
                counts: Some(cx.zero_counts()),
                ..AbsVal::default()
            };
            vec![(st, v)]
        }
        Expr::Global(g) => {
            let v = AbsVal {
                global: Some(*g),
                counts: Some(cx.zero_counts()),
                ..AbsVal::default()
            };
            vec![(st, v)]
        }
        Expr::Abort(_) => {
            st.aborted = true;
            vec![(st, AbsVal::unknown())]
        }
        Expr::Call(fid, args) => {
            let mut out = Vec::new();
            for (mut s, vals) in eval_list(cx, args, st) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                let v = charge_call(cx, &mut s, *fid, &vals);
                out.push((s, v));
            }
            out
        }
        Expr::App(f, args) => {
            let mut out = Vec::new();
            for (s, fv) in eval(cx, f, st) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                for (s2, vals) in eval_list(cx, args, s) {
                    if s2.aborted {
                        out.push((s2, AbsVal::unknown()));
                        continue;
                    }
                    out.extend(apply_value(cx, s2, fv.clone(), vals));
                }
            }
            cap_paths(cx, out, |(s, _)| s)
        }
        Expr::Prim(op, args) => {
            let mut out = Vec::new();
            for (mut s, vals) in eval_list(cx, args, st) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                // Internal RC traffic of the effectful primitives,
                // mirroring cost.rs::prim_cost.
                match op {
                    PrimOp::RefNew => s.charge(C_ALLOC, 1),
                    PrimOp::RefGet => {
                        s.charge(C_DUP, 1);
                        s.charge(C_DROP, 1);
                    }
                    PrimOp::RefSet => s.charge(C_DROP, 2),
                    PrimOp::TShare => s.charge(C_DROP, 1),
                    _ => {}
                }
                let raw = prim_raw(*op, &vals);
                let guard = match (vals.first(), vals.get(1)) {
                    (Some(a), Some(b)) => guard_of(*op, a, b),
                    _ => None,
                };
                let counts = match op {
                    // Value-typed results carry no cells; a ref read
                    // yields whatever was stored — unknown.
                    PrimOp::RefGet | PrimOp::RefNew => None,
                    _ => Some(cx.zero_counts()),
                };
                let v = AbsVal {
                    raw,
                    counts,
                    guard,
                    ..AbsVal::default()
                };
                out.push((s, v));
            }
            out
        }
        Expr::Lam(lam) => {
            // MkClosure: one fresh allocation, always.
            st.charge(C_ALLOC, 1);
            let captures = lam
                .captures
                .iter()
                .map(|c| {
                    (
                        c.id(),
                        st.env.get(&c.id()).cloned().unwrap_or_else(AbsVal::unknown),
                    )
                })
                .collect();
            let v = AbsVal {
                lam: Some(LamVal {
                    lam: Rc::new(lam.clone()),
                    captures,
                }),
                counts: Some(cx.zero_counts()),
                ..AbsVal::default()
            };
            vec![(st, v)]
        }
        Expr::Con {
            ctor,
            args,
            reuse,
            skip: _,
        } => {
            let arity = cx.p.types.ctor(*ctor).arity as u64;
            let mut out = Vec::new();
            for (mut s, vals) in eval_list(cx, args, st.clone()) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                if arity >= 1 {
                    match reuse {
                        None => s.charge(C_ALLOC, 1),
                        Some(tok) => {
                            let validity = s
                                .env
                                .get(&tok.id())
                                .and_then(|v| v.token_valid)
                                .unwrap_or(None);
                            match (cx.mode, validity) {
                                // Known-null token: always fresh.
                                (_, Some(false)) => s.charge(C_ALLOC, 1),
                                // Known-valid token: always reuse.
                                (_, Some(true)) => s.charge(C_REUSE, 1),
                                // Unknown token, worst case: may go
                                // either way — bound both counters.
                                (CostMode::Worst, None) => {
                                    s.charge(C_ALLOC, 1);
                                    s.charge(C_REUSE, 1);
                                }
                                // FBIP regime: tokens are valid.
                                (CostMode::Fbip, None) => s.charge(C_REUSE, 1),
                            }
                        }
                    }
                }
                let mut counts = Some(cx.zero_counts());
                for a in &vals {
                    counts = match (counts, &a.counts) {
                        (Some(acc), Some(ac)) => {
                            let mut m = acc;
                            for (c, b) in ac {
                                let e = m.entry(*c).or_insert_with(SymBound::zero);
                                *e = e.add(b);
                            }
                            Some(m)
                        }
                        _ => None,
                    };
                }
                if arity >= 1 {
                    if let Some(m) = &mut counts {
                        let e = m.entry(*ctor).or_insert_with(SymBound::zero);
                        *e = e.add_k(1);
                    }
                }
                let v = AbsVal {
                    counts,
                    arity: Some(arity),
                    ..AbsVal::default()
                };
                out.push((s, v));
            }
            out
        }
        Expr::Let { var, rhs, body } => {
            let mut out = Vec::new();
            for (mut s, v) in eval(cx, rhs, st) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                s.env.insert(var.id(), v);
                out.extend(eval(cx, body, s));
            }
            cap_paths(cx, out, |(s, _)| s)
        }
        Expr::Seq(a, b) => {
            let mut out = Vec::new();
            for (s, _) in eval(cx, a, st) {
                if s.aborted {
                    out.push((s, AbsVal::unknown()));
                    continue;
                }
                out.extend(eval(cx, b, s));
            }
            cap_paths(cx, out, |(s, _)| s)
        }
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            let sv = st
                .env
                .get(&scrutinee.id())
                .cloned()
                .unwrap_or_else(AbsVal::unknown);
            let mut out = Vec::new();
            for arm in arms {
                let s = arm_state(cx, &st, scrutinee.id(), &sv, arm);
                out.extend(eval(cx, &arm.body, s));
            }
            if let Some(d) = default {
                out.extend(eval(cx, d, st.clone()));
            }
            // No default and no matching arm: the machine aborts; the
            // implicit abort path carries no claim, so nothing to add.
            cap_paths(cx, out, |(s, _)| s)
        }
        // ---- reference-counting instructions ----
        Expr::Dup(_, e) => {
            st.charge(C_DUP, 1);
            eval(cx, e, st)
        }
        Expr::Drop(_, e) => {
            st.charge(C_DROP, 1);
            eval(cx, e, st)
        }
        Expr::Free(_, e) => {
            st.charge(C_FREE, 1);
            eval(cx, e, st)
        }
        Expr::DecRef(_, e) => {
            st.charge(C_DECREF, 1);
            eval(cx, e, st)
        }
        Expr::DropToken(_, e) => {
            st.charge(C_DROP_TOKEN, 1);
            eval(cx, e, st)
        }
        Expr::DropReuse { var, token, body } => {
            // Fig. 1e: one uniqueness test; if unique, the children are
            // dropped (≤ arity) and the cell claimed; if shared, one
            // decref. The FBIP regime assumes the unique outcome.
            st.charge(C_IS_UNIQUE, 1);
            let arity = st
                .env
                .get(&var.id())
                .and_then(|v| v.arity)
                .unwrap_or(cx.max_arity);
            st.charge(C_DROP, arity as i64);
            if cx.mode == CostMode::Worst {
                st.charge(C_DECREF, 1);
            }
            st.env.insert(
                token.id(),
                AbsVal {
                    token_valid: Some(None),
                    ..AbsVal::default()
                },
            );
            eval(cx, body, st)
        }
        Expr::IsUnique {
            var: _,
            binders: _,
            unique,
            shared,
        } => {
            st.charge(C_IS_UNIQUE, 1);
            match cx.mode {
                CostMode::Worst => {
                    let mut out = eval(cx, unique, st.clone());
                    out.extend(eval(cx, shared, st));
                    cap_paths(cx, out, |(s, _)| s)
                }
                CostMode::Fbip => eval(cx, unique, st),
            }
        }
        Expr::TokenOf(_) => {
            let v = AbsVal {
                token_valid: Some(Some(true)),
                ..AbsVal::default()
            };
            vec![(st, v)]
        }
        Expr::NullToken => {
            let v = AbsVal {
                token_valid: Some(Some(false)),
                ..AbsVal::default()
            };
            vec![(st, v)]
        }
    }
}

/// Builds the entry state of one match arm: records the match fact
/// (`count ≥ 1` for counted constructors; guard facts for booleans),
/// binds the binders with decremented counts, and tracks the
/// scrutinee's arity for `drop-reuse`.
fn arm_state(cx: &Cx, st: &State, scrut_id: u32, sv: &AbsVal, arm: &Arm) -> State {
    let mut s = st.clone();
    let info = cx.p.types.ctor(arm.ctor);
    let arity = info.arity as u64;
    // Boolean scrutinee with comparison provenance: guard facts.
    if let Some(g) = &sv.guard {
        let raws = if arm.ctor == TypeTable::TRUE {
            &g.if_true
        } else if arm.ctor == TypeTable::FALSE {
            &g.if_false
        } else {
            &g.if_true[0..0]
        };
        for r in raws {
            s.facts.push_raw(r.clone());
        }
    }
    // Matching an arity ≥ 1 constructor proves at least one such cell.
    let cv = sv.counts.as_ref();
    if arity >= 1 {
        if let Some(SymBound::Finite(e)) = cv.and_then(|m| m.get(&arm.ctor)) {
            if let Some(fact) = e.add_k(-1) {
                s.facts.push_lin(fact);
            }
        }
    }
    // Binder counts: each binder holds a sub-tree of the scrutinee, so
    // its per-constructor counts are bounded by the scrutinee's, minus
    // the matched cell itself.
    let binder_counts: Option<Counts> = cv.map(|m| {
        m.iter()
            .map(|(c, b)| {
                let b2 = if *c == arm.ctor && arity >= 1 {
                    match b {
                        SymBound::Finite(e) => match e.add_k(-1) {
                            Some(e2) => SymBound::Finite(e2),
                            None => SymBound::Omega,
                        },
                        SymBound::Omega => SymBound::Omega,
                    }
                } else {
                    b.clone()
                };
                (*c, b2)
            })
            .collect()
    });
    for b in arm.binders.iter().flatten() {
        s.env.insert(
            b.id(),
            AbsVal {
                counts: binder_counts.clone(),
                ..AbsVal::default()
            },
        );
    }
    // Track the scrutinee's arity for a drop-reuse inside the arm
    // (mirrors cost.rs's arity map).
    if let Some(v) = s.env.get_mut(&scrut_id) {
        v.arity = Some(arity);
    }
    s
}

// ---------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------

/// Infers a certificate for every function of the program, in
/// reverse-topological SCC order of the call graph. Singleton
/// non-recursive functions get joined path bounds; self-recursive
/// functions get guess-and-check bounds; mutual recursion stays at ω.
/// Every returned certificate passes
/// [`super::certificate::check_fun_cert`] and is coordinate-minimal:
/// decrementing any single coefficient makes the checker reject it.
pub fn infer_certificates(p: &Program) -> CertSet {
    let mut certs = CertSet::bottom(p);
    for scc in call_graph_sccs(p) {
        match scc.as_slice() {
            [f] => {
                let selfrec = calls_of(&p.funs[f.0 as usize].body).contains(f);
                if selfrec {
                    infer_recursive(p, &mut certs, *f);
                } else {
                    infer_direct(p, &mut certs, *f);
                }
                minimize(p, &mut certs, *f);
                degrade_until_valid(p, &mut certs, *f);
            }
            _ => {
                // Mutual recursion: no linear potential inferred; the
                // bottom (all-ω) certificates are already in place and
                // trivially valid.
            }
        }
    }
    certs
}

fn join_slot(paths: &[PathOut], slot: usize) -> SymBound {
    paths
        .iter()
        .map(|p| p.cost[slot].clone())
        .reduce(|a, b| a.join(&b))
        .unwrap_or_else(SymBound::zero)
}

fn join_apps(paths: &[PathOut], i: usize) -> SymBound {
    paths
        .iter()
        .map(|p| p.apps[i].clone())
        .reduce(|a, b| a.join(&b))
        .unwrap_or_else(SymBound::zero)
}

fn join_ret(paths: &[PathOut], ct: CtorId) -> SymBound {
    paths
        .iter()
        .map(|p| match &p.ret {
            Some(m) => m.get(&ct).cloned().unwrap_or_else(SymBound::zero),
            None => SymBound::Omega,
        })
        .reduce(|a, b| a.join(&b))
        .unwrap_or_else(SymBound::zero)
}

/// Non-recursive function: the pointwise-max join over its paths is a
/// valid certificate by construction.
fn infer_direct(p: &Program, certs: &mut CertSet, f: FunId) {
    let nparams = p.funs[f.0 as usize].params.len();
    let counted: Vec<CtorId> = certs.funs[f.0 as usize].ret.keys().copied().collect();
    let worst = eval_fun_paths(p, certs, f, CostMode::Worst);
    let fbip = eval_fun_paths(p, certs, f, CostMode::Fbip);
    let cert = &mut certs.funs[f.0 as usize];
    for slot in 0..NCOUNTERS {
        cert.worst[slot] = join_slot(&worst, slot);
        cert.fbip[slot] = join_slot(&fbip, slot);
    }
    for i in 0..nparams {
        cert.apps[i] = join_apps(&worst, i);
    }
    for ct in counted {
        cert.ret.insert(ct, join_ret(&worst, ct));
    }
    cert.recursive = false;
}

/// The candidate measures for a self-recursive function: every count
/// atom destructured on a recursive path, the positive part of every
/// raw guard fact on a recursive path (plus one — a strict guard means
/// at least one more iteration), per-constructor cross-parameter sums,
/// and the grand sum of everything.
fn collect_measures(paths: &[PathOut]) -> Vec<LinExpr> {
    let mut atoms: Vec<Atom> = Vec::new();
    for path in paths.iter().filter(|p| p.self_calls > 0) {
        for fact in &path.facts.lin {
            for a in fact.terms.keys() {
                if matches!(a, Atom::Count { .. }) && !atoms.contains(a) {
                    atoms.push(a.clone());
                }
            }
        }
        for r in &path.facts.raw {
            if let Some(r1) = r.add_k(1) {
                let a = Atom::Pos(r1);
                if !atoms.contains(&a) {
                    atoms.push(a);
                }
            }
        }
    }
    let mut measures: Vec<LinExpr> = atoms.iter().cloned().map(LinExpr::atom).collect();
    // Per-constructor sums across parameters (merge-style recursion
    // alternates which parameter shrinks).
    let mut by_ctor: BTreeMap<CtorId, Vec<Atom>> = BTreeMap::new();
    for a in &atoms {
        if let Atom::Count { ctor, .. } = a {
            by_ctor.entry(*ctor).or_default().push(a.clone());
        }
    }
    for group in by_ctor.values().filter(|g| g.len() > 1) {
        let mut e = LinExpr::konst(0);
        for a in group {
            if let Some(e2) = e.add(&LinExpr::atom(a.clone())) {
                e = e2;
            }
        }
        if !measures.contains(&e) {
            measures.push(e);
        }
    }
    // Grand sum of all collected atoms.
    if atoms.len() > 1 {
        let mut e = LinExpr::konst(0);
        for a in &atoms {
            if let Some(e2) = e.add(&LinExpr::atom(a.clone())) {
                e = e2;
            }
        }
        if !measures.contains(&e) {
            measures.push(e);
        }
    }
    measures
}

/// The slot coordinates of a certificate, for staged inference and
/// minimization.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Ret(CtorId),
    Apps(usize),
    Counter(CostMode, usize),
}

fn get_slot(cert: &FunCert, s: Slot) -> SymBound {
    match s {
        Slot::Ret(ct) => cert.ret.get(&ct).cloned().unwrap_or(SymBound::Omega),
        Slot::Apps(i) => cert.apps[i].clone(),
        Slot::Counter(CostMode::Worst, i) => cert.worst[i].clone(),
        Slot::Counter(CostMode::Fbip, i) => cert.fbip[i].clone(),
    }
}

fn set_slot(cert: &mut FunCert, s: Slot, b: SymBound) {
    match s {
        Slot::Ret(ct) => {
            cert.ret.insert(ct, b);
        }
        Slot::Apps(i) => cert.apps[i] = b,
        Slot::Counter(CostMode::Worst, i) => cert.worst[i] = b,
        Slot::Counter(CostMode::Fbip, i) => cert.fbip[i] = b,
    }
}

/// The cost mode whose path set a slot's claim must hold on. `ret` and
/// `apps` claims are verified on the worst-mode paths (a superset of
/// the FBIP ones).
fn slot_mode(s: Slot) -> CostMode {
    match s {
        Slot::Counter(m, _) => m,
        _ => CostMode::Worst,
    }
}

/// Verifies a claim for slot `s` against an already-evaluated path set.
fn check_claim_against(paths: &[PathOut], claim: &SymBound, s: Slot) -> bool {
    let SymBound::Finite(claim) = claim else {
        return true; // ω claims are trivially valid
    };
    for path in paths {
        let actual = match s {
            Slot::Ret(ct) => match &path.ret {
                Some(m) => m.get(&ct).cloned().unwrap_or_else(SymBound::zero),
                None => SymBound::Omega,
            },
            Slot::Apps(i) => path.apps[i].clone(),
            Slot::Counter(_, i) => path.cost[i].clone(),
        };
        let SymBound::Finite(actual) = actual else {
            return false;
        };
        let Some(goal) = claim.sub(&actual) else {
            return false;
        };
        if !path.facts.entails_nonneg(&goal) {
            return false;
        }
    }
    true
}

/// Cached worst/FBIP path sets for slot checking. Valid only while the
/// function's own certificate cannot influence its path costs — i.e.
/// for non-recursive functions (whose paths contain no self-calls).
struct PathCache {
    worst: Vec<PathOut>,
    fbip: Vec<PathOut>,
}

impl PathCache {
    fn build(p: &Program, certs: &CertSet, f: FunId) -> PathCache {
        PathCache {
            worst: eval_fun_paths(p, certs, f, CostMode::Worst),
            fbip: eval_fun_paths(p, certs, f, CostMode::Fbip),
        }
    }

    fn paths(&self, mode: CostMode) -> &[PathOut] {
        match mode {
            CostMode::Worst => &self.worst,
            CostMode::Fbip => &self.fbip,
        }
    }
}

/// Verifies one slot's claim under the current certificate set,
/// re-evaluating paths unless a cache is supplied.
fn check_slot(p: &Program, certs: &CertSet, f: FunId, s: Slot, cache: Option<&PathCache>) -> bool {
    let claim = get_slot(&certs.funs[f.0 as usize], s);
    if !claim.is_finite() {
        return true;
    }
    match cache {
        Some(c) => check_claim_against(c.paths(slot_mode(s)), &claim, s),
        None => {
            let paths = eval_fun_paths(p, certs, f, slot_mode(s));
            check_claim_against(&paths, &claim, s)
        }
    }
}

/// All slots of a function's certificate, in dependency order: ret and
/// apps claims feed counter claims through call-site instantiation.
fn all_slots(cert: &FunCert) -> Vec<Slot> {
    let mut out: Vec<Slot> = cert.ret.keys().map(|&c| Slot::Ret(c)).collect();
    out.extend((0..cert.apps.len()).map(Slot::Apps));
    for i in 0..NCOUNTERS {
        out.push(Slot::Counter(CostMode::Worst, i));
        out.push(Slot::Counter(CostMode::Fbip, i));
    }
    out
}

/// Self-recursive function: staged guess-and-check. Each slot is
/// seeded with the recursion-free join (self-contribution zeroed), then
/// grown by `d · measure` candidates until the checker accepts.
fn infer_recursive(p: &Program, certs: &mut CertSet, f: FunId) {
    certs.funs[f.0 as usize].recursive = true;
    // Stage 0: zero the self-certificate so the joins below see only
    // the recursion-free part. The candidate search then restores one
    // slot at a time. (Other slots stay ω — a sound inductive
    // hypothesis — until their own stage runs.)
    {
        let cert = &mut certs.funs[f.0 as usize];
        let cts: Vec<CtorId> = cert.ret.keys().copied().collect();
        for ct in cts {
            cert.ret.insert(ct, SymBound::zero());
        }
        for a in &mut cert.apps {
            *a = SymBound::zero();
        }
        for s in 0..NCOUNTERS {
            cert.worst[s] = SymBound::zero();
            cert.fbip[s] = SymBound::zero();
        }
    }
    let base_worst = eval_fun_paths(p, certs, f, CostMode::Worst);
    let base_fbip = eval_fun_paths(p, certs, f, CostMode::Fbip);
    let measures = collect_measures(&base_worst);
    // Reset to ω before staging: unproven slots must be ω hypotheses.
    {
        let cert = &mut certs.funs[f.0 as usize];
        let cts: Vec<CtorId> = cert.ret.keys().copied().collect();
        for ct in cts {
            cert.ret.insert(ct, SymBound::Omega);
        }
        for a in &mut cert.apps {
            *a = SymBound::Omega;
        }
        for s in 0..NCOUNTERS {
            cert.worst[s] = SymBound::Omega;
            cert.fbip[s] = SymBound::Omega;
        }
    }
    let rec_worst: Vec<&PathOut> = base_worst.iter().filter(|pa| pa.self_calls > 0).collect();
    let slot_seeds = |slot: Slot| -> (SymBound, SymBound) {
        // (recursion-free join, per-iteration fixed cost) for the slot.
        let (paths, rec_join): (&[PathOut], SymBound) = match slot {
            Slot::Counter(CostMode::Fbip, i) => {
                let rj = base_fbip
                    .iter()
                    .filter(|pa| pa.self_calls > 0)
                    .map(|pa| pa.cost[i].clone())
                    .reduce(|a, b| a.join(&b))
                    .unwrap_or_else(SymBound::zero);
                (&base_fbip, rj)
            }
            Slot::Counter(CostMode::Worst, i) => {
                let rj = rec_worst
                    .iter()
                    .map(|pa| pa.cost[i].clone())
                    .reduce(|a, b| a.join(&b))
                    .unwrap_or_else(SymBound::zero);
                (&base_worst, rj)
            }
            _ => (&base_worst, SymBound::zero()),
        };
        let base = match slot {
            Slot::Ret(ct) => join_ret(paths, ct),
            Slot::Apps(i) => join_apps(paths, i),
            Slot::Counter(_, i) => join_slot(paths, i),
        };
        (base, rec_join)
    };
    for slot in all_slots(&certs.funs[f.0 as usize].clone()) {
        let (base, rec_join) = slot_seeds(slot);
        let SymBound::Finite(base) = base else {
            continue; // stays ω
        };
        let mut d_cands: Vec<i64> = vec![1];
        if let Some(k) = rec_join.as_const() {
            for d in [k, k + 1] {
                if d > 0 && !d_cands.contains(&d) {
                    d_cands.push(d);
                }
            }
        }
        for d in [base.k, base.k + 1] {
            if d > 0 && !d_cands.contains(&d) {
                d_cands.push(d);
            }
        }
        // Candidate order: the recursion-free join alone (loops that
        // pay nothing per iteration), then base + d·measure.
        let mut candidates: Vec<LinExpr> = vec![base.clone()];
        for m in &measures {
            for &d in &d_cands {
                if let Some(grown) = m.scale(d).and_then(|g| base.add(&g)) {
                    if !candidates.contains(&grown) {
                        candidates.push(grown);
                    }
                }
            }
        }
        for cand in candidates {
            set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Finite(cand));
            if check_slot(p, certs, f, slot, None) {
                break;
            }
            set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Omega);
        }
    }
}

/// Greedy coordinate minimization: decrement every coefficient of every
/// finite slot while the slot still checks. At the fixpoint, any single
/// downward perturbation is rejected by the checker — which is exactly
/// what the certificate property test asserts. A slot whose coordinates
/// keep decrementing past a cap (possible only when no terminating path
/// constrains it) is degraded to ω rather than shipped non-minimal.
fn minimize(p: &Program, certs: &mut CertSet, f: FunId) {
    // Non-recursive functions: path costs cannot depend on the claims
    // under test, so one evaluation per mode serves every check below.
    let cache = if certs.funs[f.0 as usize].recursive {
        None
    } else {
        Some(PathCache::build(p, certs, f))
    };
    let slots = all_slots(&certs.funs[f.0 as usize]);
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 8 {
        changed = false;
        rounds += 1;
        for &slot in &slots {
            let SymBound::Finite(cur) = get_slot(&certs.funs[f.0 as usize], slot) else {
                continue;
            };
            // Coordinates: the constant, then each atom coefficient.
            let coords: Vec<Option<Atom>> = std::iter::once(None)
                .chain(cur.terms.keys().cloned().map(Some))
                .collect();
            for coord in coords {
                let mut steps = 0;
                while let SymBound::Finite(cur) = get_slot(&certs.funs[f.0 as usize], slot) {
                    let dec = match &coord {
                        None => cur.add_k(-1),
                        Some(a) => cur.sub(&LinExpr::atom(a.clone())),
                    };
                    let Some(dec) = dec else { break };
                    set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Finite(dec));
                    if !check_slot(p, certs, f, slot, cache.as_ref()) {
                        set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Finite(cur));
                        break;
                    }
                    changed = true;
                    steps += 1;
                    if steps > MINIMIZE_CAP {
                        set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Omega);
                        break;
                    }
                }
            }
        }
    }
}

/// Re-verifies every slot of a function's certificate and degrades any
/// failing slot to ω, looping until the whole certificate is valid
/// (termination: slots only move toward ω).
fn degrade_until_valid(p: &Program, certs: &mut CertSet, f: FunId) {
    loop {
        let cache = if certs.funs[f.0 as usize].recursive {
            None
        } else {
            Some(PathCache::build(p, certs, f))
        };
        let mut dirty = false;
        for slot in all_slots(&certs.funs[f.0 as usize]) {
            if !check_slot(p, certs, f, slot, cache.as_ref()) {
                set_slot(&mut certs.funs[f.0 as usize], slot, SymBound::Omega);
                dirty = true;
            }
        }
        if !dirty {
            return;
        }
    }
}

/// Every function id mentioned as a call or first-class global in an
/// expression.
fn calls_of(e: &Expr) -> Vec<FunId> {
    let mut out = Vec::new();
    e.visit(&mut |e| match e {
        Expr::Call(f, _) | Expr::Global(f) if !out.contains(f) => out.push(*f),
        _ => {}
    });
    out
}

/// Tarjan's SCC algorithm over the call graph. Components are emitted
/// callees-first (reverse topological order of the condensation).
fn call_graph_sccs(p: &Program) -> Vec<Vec<FunId>> {
    let n = p.funs.len();
    let edges: Vec<Vec<FunId>> = p.funs.iter().map(|f| calls_of(&f.body)).collect();
    struct T<'a> {
        edges: &'a [Vec<FunId>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<u32>,
        next: u32,
        out: Vec<Vec<FunId>>,
    }
    fn strong(t: &mut T, v: u32) {
        t.index[v as usize] = Some(t.next);
        t.low[v as usize] = t.next;
        t.next += 1;
        t.stack.push(v);
        t.on_stack[v as usize] = true;
        let succs: Vec<u32> = t.edges[v as usize].iter().map(|f| f.0).collect();
        for w in succs {
            if (w as usize) >= t.index.len() {
                continue;
            }
            if t.index[w as usize].is_none() {
                strong(t, w);
                t.low[v as usize] = t.low[v as usize].min(t.low[w as usize]);
            } else if t.on_stack[w as usize] {
                t.low[v as usize] = t.low[v as usize].min(t.index[w as usize].unwrap());
            }
        }
        if t.low[v as usize] == t.index[v as usize].unwrap() {
            let mut scc = Vec::new();
            loop {
                let w = t.stack.pop().unwrap();
                t.on_stack[w as usize] = false;
                scc.push(FunId(w));
                if w == v {
                    break;
                }
            }
            t.out.push(scc);
        }
    }
    let mut t = T {
        edges: &edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n as u32 {
        if t.index[v as usize].is_none() {
            strong(&mut t, v);
        }
    }
    t.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ite, ProgramBuilder};
    use crate::ir::expr::Expr;

    // The unit tests here exercise the plumbing; end-to-end inference
    // over real workloads is covered by the certificate tests and the
    // suite's certify integration tests.

    #[test]
    fn sccs_identify_self_recursion() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let f = pb.declare("loop", vec![x.clone()]);
        pb.set_body(f, Expr::Call(f, vec![Expr::Var(x)]));
        let p = pb.finish();
        let sccs = call_graph_sccs(&p);
        assert!(sccs.iter().any(|s| s == &vec![f]));
        assert!(calls_of(&p.funs[f.0 as usize].body).contains(&f));
    }

    #[test]
    fn non_recursive_constant_costs() {
        // fun pair(x) = Cons(x, Nil)  — one allocation, no RC traffic.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let x = pb.fresh("x");
        let f = pb.fun(
            "pair",
            vec![x.clone()],
            con(cons, vec![Expr::Var(x), con(nil, vec![])]),
        );
        let p = pb.finish();
        let certs = infer_certificates(&p);
        let cert = &certs.funs[f.0 as usize];
        assert_eq!(cert.worst[C_ALLOC].as_const(), Some(1));
        assert_eq!(cert.worst[C_DUP].as_const(), Some(0));
        assert!(!cert.recursive);
        // The result has exactly one Cons cell plus whatever x holds.
        let ret = cert.ret.get(&cons).unwrap().as_finite().unwrap();
        assert_eq!(ret.k, 1);
        assert_eq!(
            ret.terms
                .get(&Atom::Count {
                    param: 0,
                    ctor: cons
                })
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn recursive_list_walk_gets_constant_alloc() {
        // fun len(xs) = match xs { Nil -> 0; Cons(_, xx) -> 1 + len(xx) }
        // No allocations at all; alloc bound must be the constant 0.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let hd = pb.fresh("hd");
        let xx = pb.fresh("xx");
        let f = pb.declare("len", vec![xs.clone()]);
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm0(nil, Expr::int(0)),
                    arm(
                        cons,
                        vec![hd, xx.clone()],
                        Expr::Prim(
                            PrimOp::Add,
                            vec![Expr::int(1), Expr::Call(f, vec![Expr::Var(xx)])],
                        ),
                    ),
                ],
                default: None,
            },
        );
        let p = pb.finish();
        let certs = infer_certificates(&p);
        let cert = &certs.funs[f.0 as usize];
        assert!(cert.recursive);
        assert_eq!(cert.worst[C_ALLOC].as_const(), Some(0));
    }

    #[test]
    fn recursive_copy_gets_length_bound() {
        // fun copy(xs) = match xs { Nil -> Nil; Cons(x, xx) ->
        //   Cons(x, copy(xx)) } — allocates exactly |xs.Cons| + 1 cells
        //   (each Cons plus the final Nil is arity 0, so just |xs.Cons|).
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let f = pb.declare("copy", vec![xs.clone()]);
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm0(nil, con(nil, vec![])),
                    arm(
                        cons,
                        vec![x.clone(), xx.clone()],
                        con(cons, vec![Expr::Var(x), Expr::Call(f, vec![Expr::Var(xx)])]),
                    ),
                ],
                default: None,
            },
        );
        let p = pb.finish();
        let certs = infer_certificates(&p);
        let cert = &certs.funs[f.0 as usize];
        let alloc = cert.worst[C_ALLOC].as_finite().expect("finite alloc bound");
        // Exactly 1·|xs.Cons| + 0 after minimization.
        assert_eq!(alloc.k, 0);
        assert_eq!(
            alloc
                .terms
                .get(&Atom::Count {
                    param: 0,
                    ctor: cons
                })
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn path_cap_collapse_claims_nothing() {
        // fun wide(b0, …, b9) =
        //   let t0 = if b0 then 0 else 0 in … let t8 = … in
        //   if b9 then Nil else Cons(0, Nil)
        // 2^10 = 1024 > PATH_CAP paths, so evaluation collapses to the
        // exploded all-True path #0 — which returns Nil, while the
        // paths the collapse swallowed return one Cons cell. The
        // collapsed path must claim nothing: inference may not ship a
        // finite ret bound derived from path #0, and the independent
        // checker must reject an understated hand-written one.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let params: Vec<_> = (0..10).map(|i| pb.fresh(&format!("b{i}"))).collect();
        let f = pb.declare("wide", params.clone());
        let mut body = ite(
            params[9].clone(),
            con(nil, vec![]),
            con(cons, vec![Expr::int(0), con(nil, vec![])]),
        );
        for j in (0..9).rev() {
            let t = pb.fresh("t");
            body = Expr::let_(t, ite(params[j].clone(), Expr::int(0), Expr::int(0)), body);
        }
        pb.set_body(f, body);
        let p = pb.finish();
        assert!(1 << params.len() > PATH_CAP);
        let certs = infer_certificates(&p);
        let cert = &certs.funs[f.0 as usize];
        assert!(!cert.ret.get(&cons).unwrap().is_finite());
        assert!(!cert.worst[C_ALLOC].is_finite());
        let mut bad = certs.clone();
        bad.funs[f.0 as usize].ret.insert(cons, SymBound::konst(0));
        assert!(
            crate::analysis::certificate::check_fun_cert(&p, &bad, f, CostMode::Worst).is_err(),
            "checker accepted a ret claim true only on the collapsed path #0"
        );
    }

    #[test]
    fn counting_loop_gets_pos_bound() {
        // fun build(i, n) = if i < n then Cons(i, build(i + 1, n))
        //                   else Nil — allocates max(n − i, 0) cells.
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (ctors[0], ctors[1]);
        let i = pb.fresh("i");
        let n = pb.fresh("n");
        let g = pb.fresh("g");
        let f = pb.declare("build", vec![i.clone(), n.clone()]);
        let rec = con(
            cons,
            vec![
                Expr::Var(i.clone()),
                Expr::Call(
                    f,
                    vec![
                        Expr::Prim(PrimOp::Add, vec![Expr::Var(i.clone()), Expr::int(1)]),
                        Expr::Var(n.clone()),
                    ],
                ),
            ],
        );
        pb.set_body(
            f,
            Expr::let_(
                g.clone(),
                Expr::Prim(PrimOp::Lt, vec![Expr::Var(i.clone()), Expr::Var(n.clone())]),
                ite(g, rec, con(nil, vec![])),
            ),
        );
        let p = pb.finish();
        let certs = infer_certificates(&p);
        let cert = &certs.funs[f.0 as usize];
        let alloc = cert.worst[C_ALLOC].as_finite().expect("finite alloc bound");
        assert_eq!(alloc.k, 0);
        // The single term is max(n − i, 0) with coefficient 1.
        assert_eq!(alloc.terms.len(), 1);
        let (atom, &c) = alloc.terms.iter().next().unwrap();
        assert_eq!(c, 1);
        let Atom::Pos(r) = atom else {
            panic!("expected a Pos atom, got {atom:?}")
        };
        assert_eq!(r.coeffs.get(&0), Some(&-1)); // −i
        assert_eq!(r.coeffs.get(&1), Some(&1)); // +n
        assert_eq!(r.k, 0);
    }
}
