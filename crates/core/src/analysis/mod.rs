//! Static RC-cost analysis and lints over λ¹ programs.
//!
//! Perceus makes its reference-counting and reuse decisions statically;
//! this module makes them *visible*. It has two layers:
//!
//! * [`cost`] — an abstract interpreter computing, per function and per
//!   match arm, how many `dup`/`drop`/`alloc`/reuse/free operations a
//!   call pays, as best/worst-case intervals over control-flow paths
//!   with a call-graph fixpoint for recursion (worst cases widen to ω).
//!   The worst case is a sound upper bound on the runtime `Stats`
//!   counters; the integration tests check exactly that against the
//!   Fig. 9 workloads.
//! * [`lint`] — concrete diagnostics (`L1` missed reuse, `L2` unfused
//!   dup/drop, `L3` borrowable parameter, `L4` non-FBIP recursion),
//!   each addressed by function and IR path, designed to be *diffed
//!   across pipeline stages* via [`crate::passes::Pipeline::analyze`]:
//!   e.g. L2 is nonzero after drop specialization and provably zero
//!   after fusion.
//!
//! Reports render human-readable or as JSON ([`report`]); the schema is
//! documented in `docs/ANALYSIS.md` and served by `perceus-suite
//! analyze`.

pub mod certificate;
pub mod cost;
pub mod linear;
pub mod lint;
pub mod potential;
pub mod report;

pub use certificate::{check_cert_set, check_fun_cert, CertError, CertSet, FunCert};
pub use cost::{ArmSummary, Bound, CostInterval, CostVector, FunSummary};
pub use linear::{Atom, Facts, LinExpr, RawExpr, SymBound};
pub use potential::{infer_certificates, CostMode, COUNTERS, NCOUNTERS};
pub use report::{Diagnostic, Diagnostics, LintCode, Severity};

use crate::ir::program::{FunId, Program};
use std::fmt::Write as _;

/// The result of analyzing one program (normally one pipeline stage
/// snapshot).
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-function cost summaries, indexed by [`FunId`].
    pub functions: Vec<FunSummary>,
    /// Lint diagnostics.
    pub diagnostics: Diagnostics,
    /// The program's entry point, if any (its summary bounds a whole
    /// run).
    pub entry: Option<FunId>,
}

/// Runs the cost interpreter and every lint over a program.
pub fn analyze_program(p: &Program) -> Analysis {
    Analysis {
        functions: cost::cost_summaries(p),
        diagnostics: lint::lint_program(p),
        entry: p.entry,
    }
}

impl Analysis {
    /// The entry function's summary, if the program has an entry point.
    pub fn entry_summary(&self) -> Option<&FunSummary> {
        self.entry.and_then(|id| self.functions.get(id.0 as usize))
    }

    /// The summary of the function named `name`.
    pub fn fun_summary(&self, name: &str) -> Option<&FunSummary> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Renders the whole analysis for humans: a cost table plus the
    /// diagnostics.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            let entry_mark = if Some(f.fun) == self.entry {
                " (entry)"
            } else {
                ""
            };
            let abort_mark = if f.may_abort { " [may abort]" } else { "" };
            let _ = writeln!(
                out,
                "  {}{entry_mark}: {}{abort_mark}",
                f.name,
                report::cost_vector_human(&f.cost)
            );
            for a in &f.arms {
                let _ = writeln!(
                    out,
                    "    {}: {}",
                    a.path,
                    report::cost_vector_human(&a.cost)
                );
            }
        }
        out.push_str(&self.diagnostics.render_human());
        out
    }

    /// JSON object: `{"functions": […], "diagnostics": […]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"entry\":");
        match self.entry {
            Some(id) => {
                let _ = write!(out, "{}", id.0);
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"functions\":[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&report::fun_summary_json(f));
        }
        let _ = write!(out, "],\"diagnostics\":{}", self.diagnostics.to_json());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::ProgramBuilder;
    use crate::ir::expr::Expr;

    #[test]
    fn analysis_end_to_end_on_a_tiny_program() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let f = pb.fun(
            "f",
            vec![x.clone()],
            Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::int(1))),
        );
        pb.entry(f);
        let p = pb.finish();
        let a = analyze_program(&p);
        assert_eq!(a.entry_summary().unwrap().name, "f");
        assert_eq!(a.fun_summary("f").unwrap().cost.dup, CostInterval::exact(1));
        assert_eq!(a.diagnostics.count(LintCode::UnfusedDupDrop), 1);
        let json = a.to_json();
        assert!(json.contains("\"entry\":0"));
        assert!(json.contains("\"dup\":{\"min\":1,\"max\":1}"));
        assert!(json.contains("\"code\":\"L2\""));
        let human = a.render_human();
        assert!(human.contains("f (entry): dup=[1,1] drop=[1,1]"));
    }
}
