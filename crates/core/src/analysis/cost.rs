//! The RC-cost abstract interpreter: per-function symbolic best/worst
//! case counts of the dynamic operations a λ¹ program pays at runtime.
//!
//! Every instruction form of the IR has a known dynamic cost signature
//! (how many `dup`s, `drop`s, allocations, … the machine executes for
//! it), mirrored from `perceus-runtime`'s counter discipline:
//!
//! * `dup x` / `drop x` — one op each (the runtime only *counts* the op
//!   when the value is a counted block, so the static count is an upper
//!   bound on the runtime counter by construction).
//! * `drop-reuse` (unspecialized) — one uniqueness test, then either up
//!   to *arity* child drops (unique path) or one `decref` (shared
//!   path). The arity is taken from the enclosing match arm when the
//!   variable is a known cell, else bounded by the largest constructor.
//! * `Con(args)` of arity ≥ 1 — one fresh allocation; `Con@ru` — a
//!   reuse-token allocation that falls back to a fresh one when the
//!   token is null at runtime, so it contributes `[0,1]` to both.
//! * `ref`/`!r`/`r := v`/`tshare` — the §2.7 primitives' internal
//!   retain/release traffic (read dups the content and releases the
//!   ref, write releases the old content and the ref, …).
//! * Indirect application — the callee is unknown, so every counter's
//!   worst case becomes ω (this also covers the capture dups and the
//!   closure release the machine performs per rule *(appᵣ)*).
//!
//! Costs compose by interval addition along a path and interval join
//! (`[min, max]`) across match/`is-unique` branches. Paths that *abort*
//! (runtime failure, explicit `Abort`, division by zero, a possible
//! match fall-through) are tracked separately so that code after an
//! abort is not charged to the aborting path; a function summary joins
//! both. Recursion is resolved by a Kleene fixpoint over the call
//! graph, starting from ⊥, with widening to ω for any bound still
//! growing after `|funs| + 2` rounds — so best cases stay sound lower
//! bounds (every round under-approximates every complete execution) and
//! worst cases stay sound upper bounds (the widened fixpoint is a
//! post-fixpoint).

use crate::ir::expr::{Expr, PrimOp};
use crate::ir::program::{FunId, Program};
use crate::ir::var::Var;
use std::collections::HashMap;
use std::fmt;

/// A worst-case count: finite, or unbounded (ω — recursion or an
/// unknown callee).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Exactly `n` in the worst case.
    Finite(u64),
    /// No static bound (rendered as `ω`).
    Unbounded,
}

impl Bound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded => None,
        }
    }

    /// Is an observed dynamic count within this bound?
    pub fn covers(self, observed: u64) -> bool {
        match self {
            Bound::Finite(n) => observed <= n,
            Bound::Unbounded => true,
        }
    }

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Unbounded,
        }
    }

    /// `self > other` in the ω-topped order (used by widening).
    fn exceeds(self, other: Bound) -> bool {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => a > b,
            (Bound::Unbounded, Bound::Finite(_)) => true,
            (_, Bound::Unbounded) => false,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => f.write_str("ω"),
        }
    }
}

/// A best/worst-case interval `[lo, hi]` over the control-flow paths of
/// a call (including everything the call transitively executes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostInterval {
    /// Cheapest complete path (a sound lower bound on every execution).
    pub lo: u64,
    /// Most expensive path (ω when recursion makes it unbounded).
    pub hi: Bound,
}

impl CostInterval {
    /// The zero interval.
    pub const ZERO: CostInterval = CostInterval {
        lo: 0,
        hi: Bound::Finite(0),
    };

    /// `[n, n]`.
    pub fn exact(n: u64) -> CostInterval {
        CostInterval {
            lo: n,
            hi: Bound::Finite(n),
        }
    }

    /// `[0, n]`.
    pub fn up_to(n: u64) -> CostInterval {
        CostInterval {
            lo: 0,
            hi: Bound::Finite(n),
        }
    }

    /// `[0, ω]` — an unknown callee's contribution.
    pub const UNKNOWN: CostInterval = CostInterval {
        lo: 0,
        hi: Bound::Unbounded,
    };

    /// Branch join: either cost is paid.
    pub fn join(self, other: CostInterval) -> CostInterval {
        CostInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Does an observed dynamic count fall under the worst case?
    pub fn covers(self, observed: u64) -> bool {
        self.hi.covers(observed)
    }
}

/// Sequential composition: both costs are paid.
impl std::ops::Add for CostInterval {
    type Output = CostInterval;

    fn add(self, other: CostInterval) -> CostInterval {
        CostInterval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.add(other.hi),
        }
    }
}

impl Default for CostInterval {
    fn default() -> Self {
        CostInterval::ZERO
    }
}

impl fmt::Display for CostInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

/// One interval per dynamic operation kind. All counts are *executed
/// instruction* counts (see the module docs for how each maps onto the
/// runtime's `Stats` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostVector {
    /// `dup` instructions (plus the content retain of `!r`).
    pub dup: CostInterval,
    /// `drop` instructions (plus unspecialized `drop-reuse` child drops
    /// and the releases inside `!r`, `:=` and `tshare`).
    pub drop: CostInterval,
    /// `decref` fast decrements.
    pub decref: CostInterval,
    /// `is-unique` tests (specialized or inside `drop-reuse`).
    pub is_unique: CostInterval,
    /// `free` of a cell whose children were transferred out.
    pub free: CostInterval,
    /// `drop-token` releases of unused reuse tokens.
    pub drop_token: CostInterval,
    /// Fresh heap allocations (constructors of arity ≥ 1, closures,
    /// `ref` cells; singleton constructors are immediates).
    pub alloc: CostInterval,
    /// Allocations served in place from a reuse token (§2.4).
    pub reuse_alloc: CostInterval,
}

/// Projects one interval out of a [`CostVector`] (see [`COST_FIELDS`]).
pub type CostField = fn(&CostVector) -> CostInterval;

/// The operation kinds of a [`CostVector`], for uniform iteration.
pub const COST_FIELDS: [(&str, CostField); 8] = [
    ("dup", |c| c.dup),
    ("drop", |c| c.drop),
    ("decref", |c| c.decref),
    ("is_unique", |c| c.is_unique),
    ("free", |c| c.free),
    ("drop_token", |c| c.drop_token),
    ("alloc", |c| c.alloc),
    ("reuse_alloc", |c| c.reuse_alloc),
];

impl CostVector {
    /// The zero vector.
    pub const ZERO: CostVector = CostVector {
        dup: CostInterval::ZERO,
        drop: CostInterval::ZERO,
        decref: CostInterval::ZERO,
        is_unique: CostInterval::ZERO,
        free: CostInterval::ZERO,
        drop_token: CostInterval::ZERO,
        alloc: CostInterval::ZERO,
        reuse_alloc: CostInterval::ZERO,
    };

    /// `[0, ω]` everywhere — an indirect call's contribution.
    pub const UNKNOWN: CostVector = CostVector {
        dup: CostInterval::UNKNOWN,
        drop: CostInterval::UNKNOWN,
        decref: CostInterval::UNKNOWN,
        is_unique: CostInterval::UNKNOWN,
        free: CostInterval::UNKNOWN,
        drop_token: CostInterval::UNKNOWN,
        alloc: CostInterval::UNKNOWN,
        reuse_alloc: CostInterval::UNKNOWN,
    };

    fn map2(self, other: CostVector, f: fn(CostInterval, CostInterval) -> CostInterval) -> Self {
        CostVector {
            dup: f(self.dup, other.dup),
            drop: f(self.drop, other.drop),
            decref: f(self.decref, other.decref),
            is_unique: f(self.is_unique, other.is_unique),
            free: f(self.free, other.free),
            drop_token: f(self.drop_token, other.drop_token),
            alloc: f(self.alloc, other.alloc),
            reuse_alloc: f(self.reuse_alloc, other.reuse_alloc),
        }
    }

    /// Branch join.
    pub fn join(self, other: CostVector) -> CostVector {
        self.map2(other, CostInterval::join)
    }

    /// Total reference-count operations (`dup + drop + decref +
    /// is-unique`) — the quantity §2 of the paper says the cost of
    /// reference counting is linear in.
    pub fn rc_ops(&self) -> CostInterval {
        self.dup + self.drop + self.decref + self.is_unique
    }

    /// `dup + drop` — the churn borrow inference exists to remove.
    pub fn dup_drop(&self) -> CostInterval {
        self.dup + self.drop
    }

    /// All constructions by either path (compare against the runtime's
    /// `allocations + reuses`). Interval addition cannot express that a
    /// `Con@ru` takes *either* the fresh or the reuse route, so each
    /// token-carrying allocation contributes `[0,2]` here rather than
    /// `[1,1]` — a sound (if slack) upper bound.
    pub fn total_allocs(&self) -> CostInterval {
        self.alloc + self.reuse_alloc
    }

    /// Widening: any worst case that grew past `prev` jumps to ω; best
    /// cases are frozen at `prev` (they have already been proven sound
    /// lower bounds for every complete execution).
    fn widen_against(self, prev: CostVector) -> CostVector {
        self.map2(prev, |new, old| CostInterval {
            lo: old.lo,
            hi: if new.hi.exceeds(old.hi) {
                Bound::Unbounded
            } else {
                new.hi.max(old.hi)
            },
        })
    }
}

/// Sequential composition, pointwise.
impl std::ops::Add for CostVector {
    type Output = CostVector;

    fn add(self, other: CostVector) -> CostVector {
        self.map2(other, |a, b| a + b)
    }
}

/// The cost of one call split by how the path ends: completing normally
/// vs aborting mid-way (runtime failure). `None` means no such path is
/// known (⊥ during the fixpoint; "cannot happen" at it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathCost {
    /// Paths that run to completion.
    pub normal: Option<CostVector>,
    /// Paths that abort (costs paid *up to* the abort).
    pub abort: Option<CostVector>,
}

impl PathCost {
    const BOTTOM: PathCost = PathCost {
        normal: None,
        abort: None,
    };

    fn pure(v: CostVector) -> PathCost {
        PathCost {
            normal: Some(v),
            abort: None,
        }
    }

    /// Sequential composition: `b` runs only on `a`'s normal paths.
    fn then(self, b: PathCost) -> PathCost {
        let via = |x: Option<CostVector>| match (self.normal, x) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        PathCost {
            normal: via(b.normal),
            abort: join_opt(self.abort, via(b.abort)),
        }
    }

    /// Branch join.
    fn join(self, other: PathCost) -> PathCost {
        PathCost {
            normal: join_opt(self.normal, other.normal),
            abort: join_opt(self.abort, other.abort),
        }
    }

    /// All paths joined together (what a summary reports).
    pub fn merged(&self) -> CostVector {
        match (self.normal, self.abort) {
            (Some(a), Some(b)) => a.join(b),
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => CostVector::ZERO,
        }
    }

    fn widen_against(self, prev: PathCost) -> PathCost {
        let w = |new: Option<CostVector>, old: Option<CostVector>| match (new, old) {
            (Some(n), Some(o)) => Some(n.widen_against(o)),
            (n, None) => n,
            (None, o) => o,
        };
        PathCost {
            normal: w(self.normal, prev.normal),
            abort: w(self.abort, prev.abort),
        }
    }
}

fn join_opt(a: Option<CostVector>, b: Option<CostVector>) -> Option<CostVector> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.join(b)),
        (x, None) | (None, x) => x,
    }
}

/// Per-match-arm cost record (for the lint/report layer).
#[derive(Debug, Clone)]
pub struct ArmSummary {
    /// IR path of the arm, e.g. `match(xs)/arm[Cons]`.
    pub path: String,
    /// Constructor name (or `default`).
    pub ctor: String,
    /// Cost of the arm body (including calls), all paths joined.
    pub cost: CostVector,
}

/// The cost summary of one top-level function.
#[derive(Debug, Clone)]
pub struct FunSummary {
    /// The function.
    pub fun: FunId,
    /// Its source name.
    pub name: String,
    /// Per-call cost (including transitive calls), all paths joined.
    pub cost: CostVector,
    /// True when some path can abort at runtime.
    pub may_abort: bool,
    /// One record per match arm anywhere in the body, pre-order.
    pub arms: Vec<ArmSummary>,
}

struct Ctx<'a> {
    p: &'a Program,
    summaries: &'a [PathCost],
    /// Largest constructor arity — the fallback child-drop bound for an
    /// unspecialized `drop-reuse` of a cell of unknown shape.
    max_arity: u64,
}

/// Computes the per-function cost summaries of a whole program.
pub fn cost_summaries(p: &Program) -> Vec<FunSummary> {
    let max_arity = p
        .types
        .ctors()
        .map(|(_, c)| c.arity as u64)
        .max()
        .unwrap_or(0);
    let mut summaries = vec![PathCost::BOTTOM; p.funs.len()];
    let cap = p.funs.len() + 2;

    // Kleene ascent from ⊥ …
    for _ in 0..cap {
        let mut changed = false;
        for (i, f) in p.funs.iter().enumerate() {
            let cx = Ctx {
                p,
                summaries: &summaries,
                max_arity,
            };
            let new = eval(&cx, &f.body, &mut HashMap::new());
            if new != summaries[i] {
                summaries[i] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // … then widen any bound still growing (recursion) to ω and iterate
    // to a post-fixpoint; ω absorbs, so this stabilizes in at most one
    // pass per call-graph level.
    for _ in 0..cap {
        let mut changed = false;
        for (i, f) in p.funs.iter().enumerate() {
            let cx = Ctx {
                p,
                summaries: &summaries,
                max_arity,
            };
            let new = eval(&cx, &f.body, &mut HashMap::new()).widen_against(summaries[i]);
            if new != summaries[i] {
                summaries[i] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let cx = Ctx {
        p,
        summaries: &summaries,
        max_arity,
    };
    p.funs
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut arms = Vec::new();
            collect_arms(
                &cx,
                &f.body,
                &mut String::new(),
                &mut HashMap::new(),
                &mut arms,
            );
            FunSummary {
                fun: FunId(i as u32),
                name: f.name.to_string(),
                cost: summaries[i].merged(),
                may_abort: summaries[i].abort.is_some(),
                arms,
            }
        })
        .collect()
}

/// The direct cost vector of one primitive (the machine's internal
/// retain/release traffic for the §2.7 effectful primitives).
fn prim_cost(op: PrimOp) -> CostVector {
    let mut c = CostVector::ZERO;
    match op {
        PrimOp::RefNew => c.alloc = CostInterval::exact(1),
        PrimOp::RefGet => {
            c.dup = CostInterval::exact(1);
            c.drop = CostInterval::exact(1);
        }
        PrimOp::RefSet => c.drop = CostInterval::exact(2),
        PrimOp::TShare => c.drop = CostInterval::exact(1),
        _ => {}
    }
    c
}

fn prim_may_abort(op: PrimOp) -> bool {
    matches!(
        op,
        PrimOp::Div | PrimOp::Rem | PrimOp::RefGet | PrimOp::RefSet | PrimOp::TShare
    )
}

/// The `drop-reuse` cost for a cell whose arity may be known from the
/// enclosing match arm.
fn drop_reuse_cost(cx: &Ctx, var: &Var, arities: &HashMap<Var, u64>) -> CostVector {
    let arity = arities.get(var).copied().unwrap_or(cx.max_arity);
    CostVector {
        is_unique: CostInterval::exact(1),
        drop: CostInterval::up_to(arity),
        decref: CostInterval::up_to(1),
        ..CostVector::ZERO
    }
}

fn eval(cx: &Ctx, e: &Expr, arities: &mut HashMap<Var, u64>) -> PathCost {
    match e {
        Expr::Var(_) | Expr::Lit(_) | Expr::Global(_) | Expr::TokenOf(_) | Expr::NullToken => {
            PathCost::pure(CostVector::ZERO)
        }
        Expr::Abort(_) => PathCost {
            normal: None,
            abort: Some(CostVector::ZERO),
        },
        Expr::App(f, args) => {
            let mut acc = eval(cx, f, arities);
            for a in args {
                acc = acc.then(eval(cx, a, arities));
            }
            // Unknown callee: everything the callee does — including the
            // machine's per-(appᵣ) capture dups and closure release — is
            // bounded only by ω, and it may fail.
            acc.then(PathCost {
                normal: Some(CostVector::UNKNOWN),
                abort: Some(CostVector::UNKNOWN),
            })
        }
        Expr::Call(fid, args) => {
            let mut acc = PathCost::pure(CostVector::ZERO);
            for a in args {
                acc = acc.then(eval(cx, a, arities));
            }
            let callee = cx
                .summaries
                .get(fid.0 as usize)
                .copied()
                .unwrap_or(PathCost::BOTTOM);
            acc.then(callee)
        }
        Expr::Prim(op, args) => {
            let mut acc = PathCost::pure(CostVector::ZERO);
            for a in args {
                acc = acc.then(eval(cx, a, arities));
            }
            let c = prim_cost(*op);
            acc.then(PathCost {
                normal: Some(c),
                abort: prim_may_abort(*op).then_some(c),
            })
        }
        Expr::Lam(_) => {
            // One closure allocation; the body's cost is paid at the
            // (indirect) application sites, which charge ω.
            PathCost::pure(CostVector {
                alloc: CostInterval::exact(1),
                ..CostVector::ZERO
            })
        }
        Expr::Con {
            ctor, args, reuse, ..
        } => {
            let mut acc = PathCost::pure(CostVector::ZERO);
            for a in args {
                acc = acc.then(eval(cx, a, arities));
            }
            let arity = cx.p.types.ctor(*ctor).arity;
            let mut c = CostVector::ZERO;
            if arity >= 1 {
                if reuse.is_some() {
                    // Served from the token when it is valid, fresh when
                    // it is null — [0,1] on both, [1,1] in total.
                    c.alloc = CostInterval::up_to(1);
                    c.reuse_alloc = CostInterval::up_to(1);
                } else {
                    c.alloc = CostInterval::exact(1);
                }
            }
            acc.then(PathCost::pure(c))
        }
        Expr::Let { var, rhs, body } => {
            let rhs_cost = eval(cx, rhs, arities);
            let saved = arities.get(var).copied();
            if let Expr::Con { ctor, .. } = rhs.as_ref() {
                let arity = cx.p.types.ctor(*ctor).arity as u64;
                if arity >= 1 {
                    arities.insert(var.clone(), arity);
                }
            }
            let body_cost = eval(cx, body, arities);
            restore(arities, var, saved);
            rhs_cost.then(body_cost)
        }
        Expr::Seq(a, b) => eval(cx, a, arities).then(eval(cx, b, arities)),
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            let mut joined: Option<PathCost> = None;
            for arm in arms {
                let arity = cx.p.types.ctor(arm.ctor).arity as u64;
                let saved = arities.get(scrutinee).copied();
                if arity >= 1 {
                    arities.insert(scrutinee.clone(), arity);
                } else {
                    arities.remove(scrutinee);
                }
                let c = eval(cx, &arm.body, arities);
                restore(arities, scrutinee, saved);
                joined = Some(match joined {
                    Some(j) => j.join(c),
                    None => c,
                });
            }
            if let Some(d) = default {
                let c = eval(cx, d, arities);
                joined = Some(match joined {
                    Some(j) => j.join(c),
                    None => c,
                });
            } else {
                // No default: the match can fall through at runtime
                // (conservatively — exhaustiveness is not re-proven here).
                joined = Some(match joined {
                    Some(j) => j.join(PathCost {
                        normal: None,
                        abort: Some(CostVector::ZERO),
                    }),
                    None => PathCost {
                        normal: None,
                        abort: Some(CostVector::ZERO),
                    },
                });
            }
            joined.unwrap_or(PathCost::BOTTOM)
        }
        Expr::Dup(_, rest) => op_then(cx, rest, arities, |c| c.dup = CostInterval::exact(1)),
        Expr::Drop(_, rest) => op_then(cx, rest, arities, |c| c.drop = CostInterval::exact(1)),
        Expr::Free(_, rest) => op_then(cx, rest, arities, |c| c.free = CostInterval::exact(1)),
        Expr::DecRef(_, rest) => op_then(cx, rest, arities, |c| c.decref = CostInterval::exact(1)),
        Expr::DropToken(_, rest) => {
            op_then(cx, rest, arities, |c| c.drop_token = CostInterval::exact(1))
        }
        Expr::DropReuse { var, body, .. } => {
            let c = drop_reuse_cost(cx, var, arities);
            PathCost::pure(c).then(eval(cx, body, arities))
        }
        Expr::IsUnique { unique, shared, .. } => {
            let test = CostVector {
                is_unique: CostInterval::exact(1),
                ..CostVector::ZERO
            };
            let branches = eval(cx, unique, arities).join(eval(cx, shared, arities));
            PathCost::pure(test).then(branches)
        }
    }
}

fn op_then(
    cx: &Ctx,
    rest: &Expr,
    arities: &mut HashMap<Var, u64>,
    set: fn(&mut CostVector),
) -> PathCost {
    let mut c = CostVector::ZERO;
    set(&mut c);
    PathCost::pure(c).then(eval(cx, rest, arities))
}

fn restore(arities: &mut HashMap<Var, u64>, var: &Var, saved: Option<u64>) {
    match saved {
        Some(a) => {
            arities.insert(var.clone(), a);
        }
        None => {
            arities.remove(var);
        }
    }
}

/// Collects per-arm cost records, pre-order, with IR paths.
fn collect_arms(
    cx: &Ctx,
    e: &Expr,
    path: &mut String,
    arities: &mut HashMap<Var, u64>,
    out: &mut Vec<ArmSummary>,
) {
    match e {
        Expr::Match {
            scrutinee,
            arms,
            default,
        } => {
            for arm in arms {
                let ctor = cx.p.types.ctor(arm.ctor).name.to_string();
                let seg_len = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(&format!(
                    "match({scrutinee})/arm[{ctor}]",
                    scrutinee = scrutinee
                ));
                let arity = cx.p.types.ctor(arm.ctor).arity as u64;
                let saved = arities.get(scrutinee).copied();
                if arity >= 1 {
                    arities.insert(scrutinee.clone(), arity);
                }
                let cost = eval(cx, &arm.body, arities).merged();
                out.push(ArmSummary {
                    path: path.clone(),
                    ctor,
                    cost,
                });
                collect_arms(cx, &arm.body, path, arities, out);
                restore(arities, scrutinee, saved);
                path.truncate(seg_len);
            }
            if let Some(d) = default {
                let seg_len = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(&format!("match({scrutinee})/default"));
                let cost = eval(cx, d, arities).merged();
                out.push(ArmSummary {
                    path: path.clone(),
                    ctor: "default".to_string(),
                    cost,
                });
                collect_arms(cx, d, path, arities, out);
                path.truncate(seg_len);
            }
        }
        Expr::Let { rhs, body, .. } => {
            collect_arms(cx, rhs, path, arities, out);
            collect_arms(cx, body, path, arities, out);
        }
        Expr::Seq(a, b) => {
            collect_arms(cx, a, path, arities, out);
            collect_arms(cx, b, path, arities, out);
        }
        Expr::App(f, args) => {
            collect_arms(cx, f, path, arities, out);
            for a in args {
                collect_arms(cx, a, path, arities, out);
            }
        }
        Expr::Call(_, args) | Expr::Prim(_, args) => {
            for a in args {
                collect_arms(cx, a, path, arities, out);
            }
        }
        Expr::Con { args, .. } => {
            for a in args {
                collect_arms(cx, a, path, arities, out);
            }
        }
        Expr::Lam(lam) => {
            let seg_len = path.len();
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str("lam");
            collect_arms(cx, &lam.body, path, arities, out);
            path.truncate(seg_len);
        }
        Expr::Dup(_, rest)
        | Expr::Drop(_, rest)
        | Expr::Free(_, rest)
        | Expr::DecRef(_, rest)
        | Expr::DropToken(_, rest) => collect_arms(cx, rest, path, arities, out),
        Expr::DropReuse { body, .. } => collect_arms(cx, body, path, arities, out),
        Expr::IsUnique { unique, shared, .. } => {
            collect_arms(cx, unique, path, arities, out);
            collect_arms(cx, shared, path, arities, out);
        }
        Expr::Var(_)
        | Expr::Lit(_)
        | Expr::Global(_)
        | Expr::Abort(_)
        | Expr::TokenOf(_)
        | Expr::NullToken => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{arm, arm0, con, ProgramBuilder};

    #[test]
    fn straight_line_costs_are_exact() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let f = pb.fun(
            "f",
            vec![x.clone()],
            Expr::dup(x.clone(), Expr::drop_(x.clone(), Expr::unit())),
        );
        let p = pb.finish();
        let s = cost_summaries(&p);
        assert_eq!(s[f.0 as usize].cost.dup, CostInterval::exact(1));
        assert_eq!(s[f.0 as usize].cost.drop, CostInterval::exact(1));
        assert_eq!(s[f.0 as usize].cost.alloc, CostInterval::ZERO);
        assert!(!s[f.0 as usize].may_abort);
    }

    #[test]
    fn branches_join_into_intervals() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        // One arm drops twice and allocates, the other does nothing.
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm(
                    cons,
                    vec![x.clone(), xx.clone()],
                    Expr::drop_(
                        x.clone(),
                        Expr::drop_(xx.clone(), con(cons, vec![Expr::int(1), Expr::int(2)])),
                    ),
                ),
                arm0(nil, con(nil, vec![])),
            ],
            default: None,
        };
        let f = pb.fun("f", vec![xs], body);
        let p = pb.finish();
        let s = &cost_summaries(&p)[f.0 as usize];
        assert_eq!(s.cost.drop, CostInterval::up_to(2));
        assert_eq!(s.cost.alloc, CostInterval::up_to(1));
        // Missing default ⇒ a possible runtime fall-through.
        assert!(s.may_abort);
        assert_eq!(s.arms.len(), 2);
        assert_eq!(s.arms[0].ctor, "Cons");
        assert_eq!(s.arms[0].cost.drop, CostInterval::exact(2));
    }

    #[test]
    fn recursion_widens_to_unbounded() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let f = pb.declare("walk", vec![xs.clone()]);
        pb.set_body(
            f,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm(
                        cons,
                        vec![x.clone(), xx.clone()],
                        Expr::dup(x.clone(), Expr::Call(f, vec![Expr::Var(xx.clone())])),
                    ),
                    arm0(nil, Expr::int(0)),
                ],
                default: None,
            },
        );
        let p = pb.finish();
        let s = &cost_summaries(&p)[f.0 as usize];
        // Best case: the Nil path does no dup. Worst case: unbounded.
        assert_eq!(s.cost.dup.lo, 0);
        assert_eq!(s.cost.dup.hi, Bound::Unbounded);
        assert!(s.cost.dup.covers(1_000_000));
    }

    #[test]
    fn indirect_application_is_unknown() {
        let mut pb = ProgramBuilder::new();
        let f = pb.fresh("f");
        let g = pb.fun(
            "apply",
            vec![f.clone()],
            Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::int(1)]),
        );
        let p = pb.finish();
        let s = &cost_summaries(&p)[g.0 as usize];
        assert_eq!(s.cost.dup.hi, Bound::Unbounded);
        assert_eq!(s.cost.dup.lo, 0);
        assert!(s.may_abort);
    }

    #[test]
    fn abort_paths_do_not_charge_the_continuation() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let c = pb.fresh("c");
        // if c { abort } else { () }; dup x — the abort path pays no dup.
        let body = Expr::seq(
            crate::ir::builder::ite(c.clone(), Expr::Abort("boom".into()), Expr::unit()),
            Expr::dup(x.clone(), Expr::unit()),
        );
        let f = pb.fun("f", vec![x, c], body);
        let p = pb.finish();
        let s = &cost_summaries(&p)[f.0 as usize];
        assert!(s.may_abort);
        // Joined over normal ([1,1]) and abort ([0,0]) paths.
        assert_eq!(s.cost.dup, CostInterval::up_to(1));
    }

    #[test]
    fn reuse_paired_constructor_splits_alloc() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let cons = cs[1];
        let t = pb.fresh("ru");
        let f = pb.fun(
            "f",
            vec![t.clone()],
            Expr::Con {
                ctor: cons,
                args: vec![Expr::int(1), Expr::int(2)],
                reuse: Some(t.clone()),
                skip: vec![],
            },
        );
        let p = pb.finish();
        let s = &cost_summaries(&p)[f.0 as usize];
        assert_eq!(s.cost.alloc, CostInterval::up_to(1));
        assert_eq!(s.cost.reuse_alloc, CostInterval::up_to(1));
        // Either/or, so the joint total is really 1 — the interval sum
        // keeps a sound [0,2] over-approximation.
        assert_eq!(s.cost.total_allocs(), CostInterval::up_to(2));
        assert!(s.cost.total_allocs().covers(1));
    }

    #[test]
    fn interval_display() {
        assert_eq!(CostInterval::exact(3).to_string(), "[3,3]");
        assert_eq!(CostInterval::UNKNOWN.to_string(), "[0,ω]");
        assert!(CostInterval::UNKNOWN.covers(u64::MAX));
        assert!(!CostInterval::exact(3).covers(4));
    }
}
