//! Diagnostics and renderers for the analysis layer.
//!
//! Reports render two ways: a human format (one line per diagnostic,
//! `rustc`-ish) and a JSON format documented in `docs/ANALYSIS.md`. The
//! JSON is hand-rolled — the workspace is dependency-free by design —
//! and the escaping helper is shared with `perceus-suite`'s other JSON
//! emitters.

use crate::ir::program::FunId;
use std::fmt::Write as _;

use super::cost::{Bound, CostInterval, CostVector, FunSummary, COST_FIELDS};

/// Stable lint codes (`--deny` keys; see `docs/ANALYSIS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// L1: a dropped/freed cell and a same-size fresh allocation on one
    /// path that reuse analysis (§2.4) did not pair.
    MissedReuse,
    /// L2: a dup/drop pair that fusion (§2.3, Fig. 1d) would cancel.
    UnfusedDupDrop,
    /// L3: a parameter borrow inference (§6) would borrow but the
    /// active configuration keeps owned.
    BorrowableParam,
    /// L4: self-recursion that allocates fresh cells on the recursive
    /// path — not functional-but-in-place (§2.4/§2.6).
    NonFbipRecursion,
}

impl LintCode {
    /// All codes, in order.
    pub const ALL: [LintCode; 4] = [
        LintCode::MissedReuse,
        LintCode::UnfusedDupDrop,
        LintCode::BorrowableParam,
        LintCode::NonFbipRecursion,
    ];

    /// The stable short code (`L1` … `L4`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::MissedReuse => "L1",
            LintCode::UnfusedDupDrop => "L2",
            LintCode::BorrowableParam => "L3",
            LintCode::NonFbipRecursion => "L4",
        }
    }

    /// The human name of the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::MissedReuse => "missed-reuse",
            LintCode::UnfusedDupDrop => "unfused-dup-drop",
            LintCode::BorrowableParam => "borrowable-param",
            LintCode::NonFbipRecursion => "non-fbip-recursion",
        }
    }

    /// Parses either the short code (`L2`) or the name
    /// (`unfused-dup-drop`), case-insensitively.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name().eq_ignore_ascii_case(s))
    }
}

/// How serious a diagnostic is (lints are advisory; `--deny` upgrades
/// selected codes to errors at the CLI boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// An opportunity or observation.
    Note,
    /// A likely missed optimization.
    Warning,
}

impl Severity {
    /// Lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic, addressed to a function and an IR path inside it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Advisory severity.
    pub severity: Severity,
    /// Owning function.
    pub fun: FunId,
    /// Its source name.
    pub fun_name: String,
    /// Slash-separated IR path (`match(xs)/arm[Cons]/…`); empty for a
    /// function-level diagnostic.
    pub path: String,
    /// Human message.
    pub message: String,
    /// Source byte span of the owning function, when the program came
    /// through `perceus-lang` (attached by the CLI via
    /// [`Diagnostics::attach_fun_spans`]).
    pub span: Option<(u32, u32)>,
}

impl Diagnostic {
    fn render(&self, out: &mut String) {
        let _ = write!(
            out,
            "{}[{}/{}] {}",
            self.severity.label(),
            self.code.code(),
            self.code.name(),
            self.fun_name
        );
        if let Some((start, end)) = self.span {
            let _ = write!(out, " @{start}..{end}");
        }
        if !self.path.is_empty() {
            let _ = write!(out, " at {}", self.path);
        }
        let _ = write!(out, ": {}", self.message);
    }

    fn to_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"fun\":{},\"fun_name\":\"{}\",\"path\":\"{}\",\"message\":\"{}\",\"span\":",
            self.code.code(),
            self.code.name(),
            self.severity.label(),
            self.fun.0,
            json_escape(&self.fun_name),
            json_escape(&self.path),
            json_escape(&self.message),
        );
        match self.span {
            Some((start, end)) => {
                let _ = write!(out, "{{\"start\":{start},\"end\":{end}}}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics, in emission order (function order, pre-order
    /// paths within a function).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no lint fired.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// How many diagnostics carry `code`.
    pub fn count(&self, code: LintCode) -> usize {
        self.items.iter().filter(|d| d.code == code).count()
    }

    /// Attaches source spans by function id (`spans[f]` is the byte span
    /// of function `f`'s definition, as produced by
    /// `perceus_lang::compile_str_with_spans`).
    pub fn attach_fun_spans(&mut self, spans: &[(u32, u32)]) {
        for d in &mut self.items {
            if let Some(span) = spans.get(d.fun.0 as usize) {
                d.span = Some(*span);
            }
        }
    }

    /// One line per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            d.render(&mut out);
            out.push('\n');
        }
        let counts: Vec<String> = LintCode::ALL
            .into_iter()
            .filter_map(|c| {
                let n = self.count(c);
                (n > 0).then(|| format!("{} {}×{n}", c.code(), c.name()))
            })
            .collect();
        if counts.is_empty() {
            out.push_str("no lints\n");
        } else {
            let _ = writeln!(out, "{} lint(s): {}", self.len(), counts.join(", "));
        }
        out
    }

    /// JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.to_json(&mut out);
        }
        out.push(']');
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal. Shared by
/// every hand-rolled JSON emitter in the workspace.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn bound_json(b: Bound) -> String {
    match b {
        Bound::Finite(n) => n.to_string(),
        Bound::Unbounded => "null".to_string(),
    }
}

fn interval_json(c: CostInterval) -> String {
    format!("{{\"min\":{},\"max\":{}}}", c.lo, bound_json(c.hi))
}

/// JSON object for one cost vector (field names are stable schema).
pub fn cost_vector_json(c: &CostVector) -> String {
    let mut out = String::from("{");
    for (i, (name, get)) in COST_FIELDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{}", interval_json(get(c)));
    }
    let _ = write!(out, ",\"rc_ops\":{}", interval_json(c.rc_ops()));
    let _ = write!(out, ",\"total_allocs\":{}", interval_json(c.total_allocs()));
    out.push('}');
    out
}

/// Human one-liner for a cost vector: only the nonzero fields.
pub fn cost_vector_human(c: &CostVector) -> String {
    let parts: Vec<String> = COST_FIELDS
        .iter()
        .filter_map(|(name, get)| {
            let iv = get(c);
            (iv != CostInterval::ZERO).then(|| format!("{name}={iv}"))
        })
        .collect();
    if parts.is_empty() {
        "rc-free".to_string()
    } else {
        parts.join(" ")
    }
}

/// JSON object for one function summary.
pub fn fun_summary_json(s: &FunSummary) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"fun\":{},\"name\":\"{}\",\"may_abort\":{},\"cost\":{},\"arms\":[",
        s.fun.0,
        json_escape(&s.name),
        s.may_abort,
        cost_vector_json(&s.cost)
    );
    for (i, a) in s.arms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"ctor\":\"{}\",\"cost\":{}}}",
            json_escape(&a.path),
            json_escape(&a.ctor),
            cost_vector_json(&a.cost)
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_codes_round_trip() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
            assert_eq!(LintCode::parse(&c.code().to_lowercase()), Some(c));
        }
        assert_eq!(LintCode::parse("L9"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diagnostics_render_and_count() {
        let mut d = Diagnostics::default();
        assert!(d.is_empty());
        d.push(Diagnostic {
            code: LintCode::UnfusedDupDrop,
            severity: Severity::Warning,
            fun: FunId(0),
            fun_name: "map".into(),
            path: "match(xs)/arm[Cons]".into(),
            message: "dup/drop pair on `x`".into(),
            span: None,
        });
        assert_eq!(d.count(LintCode::UnfusedDupDrop), 1);
        assert_eq!(d.count(LintCode::MissedReuse), 0);
        let human = d.render_human();
        assert!(human.contains("warning[L2/unfused-dup-drop] map"));
        assert!(human.contains("match(xs)/arm[Cons]"));
        let json = d.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"code\":\"L2\""));
        assert!(json.contains("\"span\":null"));
        d.attach_fun_spans(&[(10, 42)]);
        assert!(d.to_json().contains("\"span\":{\"start\":10,\"end\":42}"));
        assert!(d.render_human().contains("@10..42"));
    }
}
