//! The shared linear-constraint language of the potential-based cost
//! analysis (ROADMAP item 5).
//!
//! Everything the potential domain manipulates — candidate bounds,
//! per-path costs, and the facts a path learns from guards and match
//! arms — is expressed in one small affine language over two kinds of
//! *atoms*:
//!
//! * [`Atom::Count`]`{param, ctor}` — the number of heap cells with
//!   constructor `ctor` (arity ≥ 1 only; nullary constructors occupy no
//!   cell) transitively reachable from parameter `param`. This is the
//!   classic per-constructor potential of automatic amortized resource
//!   analysis: `|xs.Cons|` is the length of a list, `|t.Node|` the
//!   interior size of a tree.
//! * [`Atom::Pos`]`(r)` — `max(r, 0)` for an affine expression `r` over
//!   the *raw integer values* of parameters ([`RawExpr`]). This is what
//!   makes counting loops like `build(i, n)` (which allocates
//!   `max(n − i, 0)` cells) expressible without assuming inputs are
//!   non-negative.
//!
//! Both atom kinds are non-negative by construction, which is what makes
//! joining bounds by *pointwise coefficient max* sound and lets the
//! entailment checker drop positively-weighted terms.
//!
//! [`Facts`] collects what a single evaluation path knows: raw affine
//! expressions proved ≥ 0 (from comparison guards) and linear
//! expressions over atoms proved ≥ 0 (from match arms: matching `Cons`
//! proves `|xs.Cons| − 1 ≥ 0`). [`Facts::entails_nonneg`] is the one
//! inference engine both the bound inferencer and the independent
//! certificate checker share: a small, complete-enough decision
//! procedure built from sound rewrites (exact `Pos` elimination,
//! Farkas-style cancellation against one or two raw facts with
//! non-negative rational multipliers, and lower-bound boosting for
//! atoms) — the "hand-rolled LP" of the issue, deliberately tiny and
//! offline.

use super::super::ir::CtorId;
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `k + Σ coeffs[p]·param_p` over the raw integer
/// values of function parameters. Parameters are identified by index.
///
/// Raw expressions are *exact* (not bounds): the evaluator only tracks a
/// `RawExpr` for a value when it equals that affine function of the
/// parameters on every run reaching the program point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RawExpr {
    /// Constant term.
    pub k: i64,
    /// Per-parameter coefficients; absent means 0.
    pub coeffs: BTreeMap<u32, i64>,
}

impl RawExpr {
    /// The constant expression `k`.
    pub fn konst(k: i64) -> Self {
        RawExpr {
            k,
            coeffs: BTreeMap::new(),
        }
    }

    /// The expression `param_p`.
    pub fn var(p: u32) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(p, 1);
        RawExpr { k: 0, coeffs }
    }

    /// True when the expression is a constant.
    pub fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The constant value, when [`is_const`](Self::is_const).
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.k)
    }

    /// `self + other`.
    pub fn add(&self, other: &RawExpr) -> Option<RawExpr> {
        let mut out = self.clone();
        out.k = out.k.checked_add(other.k)?;
        for (&p, &c) in &other.coeffs {
            let e = out.coeffs.entry(p).or_insert(0);
            *e = e.checked_add(c)?;
        }
        out.normalize();
        Some(out)
    }

    /// `self − other`.
    pub fn sub(&self, other: &RawExpr) -> Option<RawExpr> {
        self.add(&other.scale(-1)?)
    }

    /// `c · self`. Saturates to `None` on overflow.
    pub fn scale(&self, c: i64) -> Option<RawExpr> {
        let mut out = RawExpr {
            k: self.k.checked_mul(c)?,
            coeffs: BTreeMap::new(),
        };
        for (&p, &v) in &self.coeffs {
            out.coeffs.insert(p, v.checked_mul(c)?);
        }
        out.normalize();
        Some(out)
    }

    /// `self + k`.
    pub fn add_k(&self, k: i64) -> Option<RawExpr> {
        let mut out = self.clone();
        out.k = out.k.checked_add(k)?;
        Some(out)
    }

    fn normalize(&mut self) {
        self.coeffs.retain(|_, c| *c != 0);
    }

    /// Substitutes each parameter with the given affine expression.
    /// Returns `None` when any occurring parameter has no substitute (or
    /// on overflow).
    pub fn subst(&self, lookup: impl Fn(u32) -> Option<RawExpr>) -> Option<RawExpr> {
        let mut out = RawExpr::konst(self.k);
        for (&p, &c) in &self.coeffs {
            let rep = lookup(p)?;
            out = out.add(&rep.scale(c)?)?;
        }
        Some(out)
    }

    /// Renders the expression with parameter names from `name`.
    pub fn render(&self, name: &impl Fn(u32) -> String) -> String {
        let mut s = String::new();
        for (&p, &c) in &self.coeffs {
            let n = name(p);
            if s.is_empty() {
                match c {
                    1 => s = n,
                    -1 => s = format!("-{n}"),
                    _ => s = format!("{c}*{n}"),
                }
            } else if c >= 0 {
                if c == 1 {
                    s.push_str(&format!(" + {n}"));
                } else {
                    s.push_str(&format!(" + {c}*{n}"));
                }
            } else if c == -1 {
                s.push_str(&format!(" - {n}"));
            } else {
                s.push_str(&format!(" - {}*{n}", -c));
            }
        }
        if s.is_empty() {
            return self.k.to_string();
        }
        if self.k > 0 {
            s.push_str(&format!(" + {}", self.k));
        } else if self.k < 0 {
            s.push_str(&format!(" - {}", -self.k));
        }
        s
    }
}

/// A non-negative measure of the inputs: either a per-constructor cell
/// count of one parameter, or the positive part of a raw affine
/// expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// Number of `ctor` cells (arity ≥ 1) transitively reachable from
    /// parameter `param`.
    Count { param: u32, ctor: CtorId },
    /// `max(expr, 0)` over raw integer parameter values.
    Pos(RawExpr),
}

/// A linear expression `k + Σ terms[a]·a` over [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Constant term.
    pub k: i64,
    /// Per-atom coefficients; absent means 0.
    pub terms: BTreeMap<Atom, i64>,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn konst(k: i64) -> Self {
        LinExpr {
            k,
            terms: BTreeMap::new(),
        }
    }

    /// The expression `1·a`.
    pub fn atom(a: Atom) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(a, 1);
        LinExpr { k: 0, terms }
    }

    /// True when the expression is the constant `k`.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, when [`is_const`](Self::is_const).
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.k)
    }

    /// `self + other`, saturating to `None` on i64 overflow.
    pub fn add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        out.k = out.k.checked_add(other.k)?;
        for (a, &c) in &other.terms {
            let e = out.terms.entry(a.clone()).or_insert(0);
            *e = e.checked_add(c)?;
        }
        out.normalize();
        Some(out)
    }

    /// `self − other`.
    pub fn sub(&self, other: &LinExpr) -> Option<LinExpr> {
        self.add(&other.scale(-1)?)
    }

    /// `c · self`.
    pub fn scale(&self, c: i64) -> Option<LinExpr> {
        let mut out = LinExpr {
            k: self.k.checked_mul(c)?,
            terms: BTreeMap::new(),
        };
        for (a, &v) in &self.terms {
            out.terms.insert(a.clone(), v.checked_mul(c)?);
        }
        out.normalize();
        Some(out)
    }

    /// `self + k`.
    pub fn add_k(&self, k: i64) -> Option<LinExpr> {
        let mut out = self.clone();
        out.k = out.k.checked_add(k)?;
        Some(out)
    }

    fn normalize(&mut self) {
        self.terms.retain(|_, c| *c != 0);
    }

    /// Pointwise maximum of coefficients and constants. Because every
    /// atom denotes a non-negative quantity, `max(Σaᵢxᵢ + b, Σcᵢxᵢ + d) ≤
    /// Σmax(aᵢ,cᵢ)xᵢ + max(b,d)` for all xᵢ ≥ 0 — so this is a sound
    /// upper bound of both arguments.
    pub fn join(&self, other: &LinExpr) -> LinExpr {
        let mut out = LinExpr {
            k: self.k.max(other.k),
            terms: self.terms.clone(),
        };
        for (a, &c) in &other.terms {
            let e = out.terms.entry(a.clone()).or_insert(0);
            *e = (*e).max(c);
        }
        // A term present on one side only still joins against 0.
        for (a, c) in out.terms.iter_mut() {
            if !other.terms.contains_key(a) || !self.terms.contains_key(a) {
                *c = (*c).max(0);
            }
        }
        out.normalize();
        out
    }

    /// Renders the expression with the supplied atom printer.
    pub fn render(&self, atom: &impl Fn(&Atom) -> String) -> String {
        let mut s = String::new();
        for (a, &c) in &self.terms {
            let n = atom(a);
            if s.is_empty() {
                match c {
                    1 => s = n,
                    -1 => s = format!("-{n}"),
                    _ => s = format!("{c}*{n}"),
                }
            } else if c >= 0 {
                if c == 1 {
                    s.push_str(&format!(" + {n}"));
                } else {
                    s.push_str(&format!(" + {c}*{n}"));
                }
            } else if c == -1 {
                s.push_str(&format!(" - {n}"));
            } else {
                s.push_str(&format!(" - {}*{n}", -c));
            }
        }
        if s.is_empty() {
            return self.k.to_string();
        }
        if self.k > 0 {
            s.push_str(&format!(" + {}", self.k));
        } else if self.k < 0 {
            s.push_str(&format!(" - {}", -self.k));
        }
        s
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let printer = |a: &Atom| match a {
            Atom::Count { param, ctor } => format!("|p{param}.c{}|", ctor.0),
            Atom::Pos(r) => format!("max({}, 0)", r.render(&|p| format!("p{p}"))),
        };
        f.write_str(&self.render(&printer))
    }
}

/// A symbolic upper bound: a linear expression over atoms, or ω (no
/// linear bound exists / analysis gave up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymBound {
    /// A finite affine bound.
    Finite(LinExpr),
    /// Unbounded.
    Omega,
}

impl SymBound {
    /// The zero bound.
    pub fn zero() -> Self {
        SymBound::Finite(LinExpr::konst(0))
    }

    /// The constant bound `k`.
    pub fn konst(k: i64) -> Self {
        SymBound::Finite(LinExpr::konst(k))
    }

    /// True when the bound is finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, SymBound::Finite(_))
    }

    /// The inner expression of a finite bound.
    pub fn as_finite(&self) -> Option<&LinExpr> {
        match self {
            SymBound::Finite(e) => Some(e),
            SymBound::Omega => None,
        }
    }

    /// True when the bound is a finite constant (the `O(1)` case).
    pub fn as_const(&self) -> Option<i64> {
        self.as_finite().and_then(|e| e.as_const())
    }

    /// `self + other`; ω absorbs.
    pub fn add(&self, other: &SymBound) -> SymBound {
        match (self, other) {
            (SymBound::Finite(a), SymBound::Finite(b)) => match a.add(b) {
                Some(e) => SymBound::Finite(e),
                None => SymBound::Omega,
            },
            _ => SymBound::Omega,
        }
    }

    /// `self + k`.
    pub fn add_k(&self, k: i64) -> SymBound {
        self.add(&SymBound::konst(k))
    }

    /// `c · self` for `c ≥ 0`; ω absorbs (and `0·ω = 0`).
    pub fn scale(&self, c: i64) -> SymBound {
        debug_assert!(c >= 0, "scaling a bound by a negative factor is unsound");
        if c == 0 {
            return SymBound::zero();
        }
        match self {
            SymBound::Finite(e) => match e.scale(c) {
                Some(e) => SymBound::Finite(e),
                None => SymBound::Omega,
            },
            SymBound::Omega => SymBound::Omega,
        }
    }

    /// Pointwise-max join; ω absorbs.
    pub fn join(&self, other: &SymBound) -> SymBound {
        match (self, other) {
            (SymBound::Finite(a), SymBound::Finite(b)) => SymBound::Finite(a.join(b)),
            _ => SymBound::Omega,
        }
    }
}

impl fmt::Display for SymBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymBound::Finite(e) => write!(f, "{e}"),
            SymBound::Omega => f.write_str("ω"),
        }
    }
}

/// What one evaluation path knows. Every entry denotes `expr ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct Facts {
    /// Raw affine expressions over parameter values proved non-negative
    /// (from comparison guards: `i < n` on the true branch yields
    /// `n − i − 1 ≥ 0`).
    pub raw: Vec<RawExpr>,
    /// Linear expressions over atoms proved non-negative (from match
    /// arms: matching `Cons` against a scrutinee with `Cons`-count `e`
    /// yields `e − 1 ≥ 0`).
    pub lin: Vec<LinExpr>,
}

/// Caps for the entailment search so pathological inputs stay cheap.
const MAX_POS_REWRITES: usize = 16;
const MAX_FACTS_USED: usize = 24;

impl Facts {
    /// Records a raw fact `r ≥ 0`.
    pub fn push_raw(&mut self, r: RawExpr) {
        if r.is_const() && r.k >= 0 {
            return; // trivially true, no information
        }
        if self.raw.len() < MAX_FACTS_USED && !self.raw.contains(&r) {
            self.raw.push(r);
        }
    }

    /// Records a linear fact `e ≥ 0`.
    pub fn push_lin(&mut self, e: LinExpr) {
        if e.is_const() && e.k >= 0 {
            return;
        }
        if self.lin.len() < MAX_FACTS_USED && !self.lin.contains(&e) {
            self.lin.push(e);
        }
    }

    /// Decides (soundly, incompletely) whether the facts entail
    /// `r ≥ 0` for a raw affine expression: either `r` is a non-negative
    /// constant, or `r − λ·f` is a non-negative constant for some single
    /// fact `f` and rational `λ ≥ 0`, or likewise against a non-negative
    /// combination `λ₁·f₁ + λ₂·f₂` of two facts (2×2 rational solve).
    pub fn raw_nonneg(&self, r: &RawExpr) -> bool {
        if r.is_const() {
            return r.k >= 0;
        }
        // Single-fact cancellation: pick λ from the first variable.
        for f in &self.raw {
            if single_fact_covers(r, f) {
                return true;
            }
        }
        // Two-fact cancellation with non-negative rational multipliers.
        for (i, f1) in self.raw.iter().enumerate() {
            for f2 in self.raw.iter().skip(i + 1) {
                if pair_fact_covers(r, f1, f2) {
                    return true;
                }
            }
        }
        false
    }

    /// Decides (soundly, incompletely) whether the facts entail
    /// `e ≥ 0` for a linear expression over atoms. The goal is normalized
    /// into an internal polynomial form and discharged by a bounded
    /// search over sound rewrites; see the module docs.
    pub fn entails_nonneg(&self, e: &LinExpr) -> bool {
        let Some(poly) = Poly::of(e) else {
            return false;
        };
        self.search(poly, MAX_POS_REWRITES)
    }

    fn search(&self, poly: Poly, fuel: usize) -> bool {
        if fuel == 0 {
            return false;
        }
        // Pick the first Pos atom still present and eliminate it.
        let Some((r, c)) = poly.pos.iter().next().map(|(r, &c)| (r.clone(), c)) else {
            return self.base_check(poly);
        };
        // Exact rewrites first: if the sign of r is known, Pos(r) is
        // exactly r or exactly 0 — always sound and never loses
        // precision, so commit without branching.
        if self.raw_nonneg(&r) {
            let mut p = poly;
            p.pos.remove(&r);
            return match p.fold_raw(&r, c) {
                Some(p) => self.search(p, fuel - 1),
                None => false,
            };
        }
        if let Some(neg) = r.scale(-1) {
            if self.raw_nonneg(&neg) {
                let mut p = poly;
                p.pos.remove(&r);
                return self.search(p, fuel - 1);
            }
        }
        if c > 0 {
            // Pos(r) ≥ 0: dropping a positive term only lowers the goal,
            // so proving the rest proves the whole.
            let mut p = poly.clone();
            p.pos.remove(&r);
            if self.search(p, fuel - 1) {
                return true;
            }
            // Pos(r) ≥ r: lower-bounding by the raw expression.
            let mut p = poly;
            p.pos.remove(&r);
            match p.fold_raw(&r, c) {
                Some(p) => self.search(p, fuel - 1),
                None => false,
            }
        } else {
            // Negative coefficient: we owe −c·Pos(r). Pay it from a
            // positively-weighted Pos(r') that dominates it pointwise on
            // this path (facts ⊨ r' − r ≥ 0 ⟹ Pos(r') − Pos(r) ≥ 0 …
            // provided also facts ⊨ r' ≥ 0 ∨ r ≤ 0; we use the sound
            // special case r' ≥ r ∧ (r' ≥ 0 known or both arbitrary —
            // max is monotone, so Pos(r') ≥ Pos(r) always).
            let candidates: Vec<RawExpr> = poly
                .pos
                .iter()
                .filter(|(r2, &c2)| c2 > 0 && *r2 != &r)
                .map(|(r2, _)| r2.clone())
                .collect();
            for r2 in candidates {
                let Some(diff) = r2.sub(&r) else { continue };
                if !self.raw_nonneg(&diff) {
                    continue;
                }
                let c2 = poly.pos[&r2];
                let pay = c2.min(-c);
                let mut p = poly.clone();
                *p.pos.get_mut(&r2).unwrap() -= pay;
                let e = p.pos.get_mut(&r).unwrap();
                *e += pay;
                p.normalize();
                if self.search(p, fuel - 1) {
                    return true;
                }
            }
            false
        }
    }

    /// Discharges a Pos-free goal: cancel the raw part against the raw
    /// facts, require count-atom coefficients non-negative (boosting the
    /// constant with per-atom lower bounds from the linear facts), and
    /// check the remaining constant.
    fn base_check(&self, mut poly: Poly) -> bool {
        // Count atoms: negative coefficients cannot be repaired (counts
        // are unbounded above); positive coefficients are safely ≥ 0 and
        // may contribute via single-atom lower-bound facts.
        let atoms: Vec<Atom> = poly.counts.keys().cloned().collect();
        for a in atoms {
            let c = poly.counts[&a];
            if c < 0 {
                return false;
            }
            // Lower bound b for atom a: a linear fact m·a + k ≥ 0 with
            // m > 0 gives a ≥ ⌈−k/m⌉; combined with a ≥ 0.
            let mut lb: i64 = 0;
            for f in &self.lin {
                if f.terms.len() == 1 {
                    if let Some(&m) = f.terms.get(&a) {
                        if m > 0 {
                            let b = (-f.k).div_euclid(m) + i64::from((-f.k).rem_euclid(m) != 0);
                            lb = lb.max(b);
                        }
                    }
                }
            }
            let Some(boost) = c.checked_mul(lb) else {
                return false;
            };
            let Some(k) = poly.k.checked_add(boost) else {
                return false;
            };
            poly.k = k;
            poly.counts.remove(&a);
        }
        let raw = RawExpr {
            k: poly.k,
            coeffs: poly.raw,
        };
        self.raw_nonneg(&raw)
    }
}

/// Internal normal form for entailment goals: constant + raw part +
/// count-atom part + Pos-atom part.
#[derive(Debug, Clone)]
struct Poly {
    k: i64,
    raw: BTreeMap<u32, i64>,
    counts: BTreeMap<Atom, i64>,
    pos: BTreeMap<RawExpr, i64>,
}

impl Poly {
    fn of(e: &LinExpr) -> Option<Poly> {
        let mut p = Poly {
            k: e.k,
            raw: BTreeMap::new(),
            counts: BTreeMap::new(),
            pos: BTreeMap::new(),
        };
        for (a, &c) in &e.terms {
            match a {
                Atom::Count { .. } => {
                    p.counts.insert(a.clone(), c);
                }
                Atom::Pos(r) => {
                    p.pos.insert(r.clone(), c);
                }
            }
        }
        Some(p)
    }

    /// Adds `c · r` into the raw part.
    fn fold_raw(mut self, r: &RawExpr, c: i64) -> Option<Poly> {
        self.k = self.k.checked_add(r.k.checked_mul(c)?)?;
        for (&pvar, &pc) in &r.coeffs {
            let e = self.raw.entry(pvar).or_insert(0);
            *e = e.checked_add(pc.checked_mul(c)?)?;
        }
        self.normalize();
        Some(self)
    }

    fn normalize(&mut self) {
        self.raw.retain(|_, c| *c != 0);
        self.counts.retain(|_, c| *c != 0);
        self.pos.retain(|_, c| *c != 0);
    }
}

/// Is `r − λ·f` a non-negative constant for some rational `λ ≥ 0`?
fn single_fact_covers(r: &RawExpr, f: &RawExpr) -> bool {
    // λ is forced by any variable of r: λ = r[v]/f[v].
    let Some((&v, &rv)) = r.coeffs.iter().next() else {
        return r.k >= 0;
    };
    let Some(&fv) = f.coeffs.get(&v) else {
        return false;
    };
    let (p, q) = (rv as i128, fv as i128); // λ = p/q
    if p.checked_mul(q).is_none_or(|x| x < 0) {
        return false; // λ < 0
    }
    // All coefficients must cancel: r[w]·q == f[w]·p for every w.
    for w in r.coeffs.keys().chain(f.coeffs.keys()) {
        let rw = *r.coeffs.get(w).unwrap_or(&0) as i128;
        let fw = *f.coeffs.get(w).unwrap_or(&0) as i128;
        if rw * q != fw * p {
            return false;
        }
    }
    // Residual constant: r.k − λ·f.k ≥ 0 ⟺ sign(q)·(r.k·q − p·f.k) ≥ 0.
    let resid = (r.k as i128) * q - p * (f.k as i128);
    if q >= 0 {
        resid >= 0
    } else {
        resid <= 0
    }
}

/// Is `r − λ₁·f₁ − λ₂·f₂` a non-negative constant for rationals
/// `λ₁, λ₂ ≥ 0`? Solves the 2×2 system fixed by the first two variables
/// of the union support, then verifies every coordinate.
fn pair_fact_covers(r: &RawExpr, f1: &RawExpr, f2: &RawExpr) -> bool {
    let mut vars: Vec<u32> = r.coeffs.keys().copied().collect();
    for w in f1.coeffs.keys().chain(f2.coeffs.keys()) {
        if !vars.contains(w) {
            vars.push(*w);
        }
    }
    if vars.len() < 2 {
        return false; // single-fact path already covers this
    }
    let c = |e: &RawExpr, v: u32| *e.coeffs.get(&v).unwrap_or(&0) as i128;
    let (v1, v2) = (vars[0], vars[1]);
    // Solve [f1(v1) f2(v1); f1(v2) f2(v2)] · [λ1; λ2] = [r(v1); r(v2)].
    let det = c(f1, v1) * c(f2, v2) - c(f2, v1) * c(f1, v2);
    if det == 0 {
        return false;
    }
    // λ1 = n1/det, λ2 = n2/det by Cramer's rule.
    let n1 = c(r, v1) * c(f2, v2) - c(f2, v1) * c(r, v2);
    let n2 = c(f1, v1) * c(r, v2) - c(r, v1) * c(f1, v2);
    // λi ≥ 0 ⟺ ni·det ≥ 0.
    if n1.checked_mul(det).is_none_or(|x| x < 0) || n2.checked_mul(det).is_none_or(|x| x < 0) {
        return false;
    }
    // Verify all coordinates: r[w]·det == f1[w]·n1 + f2[w]·n2.
    for &w in &vars {
        if c(r, w) * det != c(f1, w) * n1 + c(f2, w) * n2 {
            return false;
        }
    }
    // Residual constant ≥ 0: (r.k·det − f1.k·n1 − f2.k·n2) / det ≥ 0.
    let resid = (r.k as i128) * det - (f1.k as i128) * n1 - (f2.k as i128) * n2;
    if det >= 0 {
        resid >= 0
    } else {
        resid <= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctor(i: u32) -> CtorId {
        CtorId(i)
    }

    fn count(p: u32, c: u32) -> Atom {
        Atom::Count {
            param: p,
            ctor: ctor(c),
        }
    }

    #[test]
    fn raw_algebra() {
        let n = RawExpr::var(1);
        let i = RawExpr::var(0);
        let e = n.sub(&i).unwrap().add_k(-1).unwrap(); // n − i − 1
        assert_eq!(e.k, -1);
        assert_eq!(e.coeffs[&1], 1);
        assert_eq!(e.coeffs[&0], -1);
        let s = e
            .subst(|p| Some(RawExpr::konst(if p == 0 { 3 } else { 10 })))
            .unwrap();
        assert_eq!(s.as_const(), Some(6));
        assert!(e.sub(&e).unwrap().is_const());
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = LinExpr::atom(count(0, 1))
            .scale(2)
            .unwrap()
            .add_k(1)
            .unwrap();
        let b = LinExpr::atom(count(0, 1)).add_k(5).unwrap();
        let j = a.join(&b);
        assert_eq!(j.terms[&count(0, 1)], 2);
        assert_eq!(j.k, 5);
        // Joining against a missing term clamps at 0, never negative.
        let neg = LinExpr::atom(count(0, 2)).scale(-3).unwrap();
        let j2 = neg.join(&LinExpr::konst(0));
        assert!(j2.terms.is_empty());
    }

    #[test]
    fn raw_entailment_single_fact() {
        let mut facts = Facts::default();
        // n − i − 1 ≥ 0
        let f = RawExpr::var(1)
            .sub(&RawExpr::var(0))
            .unwrap()
            .add_k(-1)
            .unwrap();
        facts.push_raw(f);
        // ⊨ n − i ≥ 0 (λ = 1, residual 1)
        let g = RawExpr::var(1).sub(&RawExpr::var(0)).unwrap();
        assert!(facts.raw_nonneg(&g));
        // ⊨ 2n − 2i ≥ 0 (λ = 2)
        assert!(facts.raw_nonneg(&g.scale(2).unwrap()));
        // ⊭ i − n ≥ 0
        assert!(!facts.raw_nonneg(&g.scale(-1).unwrap()));
        // ⊭ n ≥ 0 alone (coefficients don't cancel)
        assert!(!facts.raw_nonneg(&RawExpr::var(1)));
    }

    #[test]
    fn raw_entailment_two_facts() {
        let mut facts = Facts::default();
        facts.push_raw(RawExpr::var(0).add_k(-1).unwrap()); // a − 1 ≥ 0
        facts.push_raw(RawExpr::var(1)); // b ≥ 0
                                         // ⊨ a + b − 1 ≥ 0
        let g = RawExpr::var(0)
            .add(&RawExpr::var(1))
            .unwrap()
            .add_k(-1)
            .unwrap();
        assert!(facts.raw_nonneg(&g));
        // ⊭ a − b ≥ 0
        let g2 = RawExpr::var(0).sub(&RawExpr::var(1)).unwrap();
        assert!(!facts.raw_nonneg(&g2));
    }

    #[test]
    fn pos_elimination_build_style() {
        // The inductive step of build(i, n): under fact n − i − 1 ≥ 0,
        // Pos(n − i) − Pos(n − i − 1) − 1 ≥ 0 (both Pos exact).
        let mut facts = Facts::default();
        let nmi1 = RawExpr::var(1)
            .sub(&RawExpr::var(0))
            .unwrap()
            .add_k(-1)
            .unwrap();
        facts.push_raw(nmi1.clone());
        let nmi = RawExpr::var(1).sub(&RawExpr::var(0)).unwrap();
        let goal = LinExpr::atom(Atom::Pos(nmi))
            .sub(&LinExpr::atom(Atom::Pos(nmi1)))
            .unwrap()
            .add_k(-1)
            .unwrap();
        assert!(facts.entails_nonneg(&goal));
        // Without the guard fact the same goal must be rejected.
        assert!(!Facts::default().entails_nonneg(&goal));
    }

    #[test]
    fn pos_base_case_via_negative_sign() {
        // Base case of build: under fact i − n ≥ 0, Pos(n − i) ≥ 0 − and
        // in fact Pos(n − i) − 0 ≥ 0 with the Pos rewritten to 0.
        let mut facts = Facts::default();
        facts.push_raw(RawExpr::var(0).sub(&RawExpr::var(1)).unwrap());
        let goal = LinExpr::atom(Atom::Pos(RawExpr::var(1).sub(&RawExpr::var(0)).unwrap()));
        assert!(facts.entails_nonneg(&goal));
    }

    #[test]
    fn count_atoms_and_match_facts() {
        // Claim |xs.Cons| − 1 ≥ 0 holds exactly on a Cons arm.
        let mut facts = Facts::default();
        facts.push_lin(LinExpr::atom(count(0, 1)).add_k(-1).unwrap());
        assert!(facts.entails_nonneg(&LinExpr::atom(count(0, 1)).add_k(-1).unwrap()));
        // 2·|xs.Cons| − 2 ≥ 0 via the lower bound boost.
        assert!(facts.entails_nonneg(
            &LinExpr::atom(count(0, 1))
                .scale(2)
                .unwrap()
                .add_k(-2)
                .unwrap()
        ));
        // Negative count coefficients are never entailed.
        assert!(!facts.entails_nonneg(&LinExpr::atom(count(0, 1)).scale(-1).unwrap()));
        // Plain non-negative coefficients need no facts at all.
        assert!(Facts::default().entails_nonneg(&LinExpr::atom(count(0, 1))));
    }

    #[test]
    fn map_style_inductive_step() {
        // claim c·|xs.Cons|; cost 1 + c·(|xs.Cons| − 1) with c = 1:
        // goal = |xs| − 1 − (|xs| − 1) = 0 ≥ 0 — pure cancellation.
        let xs = count(0, 1);
        let claim = LinExpr::atom(xs.clone());
        let cost = LinExpr::atom(xs.clone()); // 1 + (|xs| − 1)
        let goal = claim.sub(&cost).unwrap();
        assert!(Facts::default().entails_nonneg(&goal));
    }

    #[test]
    fn sym_bound_lattice() {
        let a = SymBound::konst(3);
        let b = SymBound::Finite(LinExpr::atom(count(0, 1)));
        assert_eq!(a.join(&SymBound::Omega), SymBound::Omega);
        assert!(a.join(&b).is_finite());
        assert_eq!(SymBound::Omega.scale(0), SymBound::zero());
        assert_eq!(a.add(&a).as_const(), Some(6));
        assert_eq!(a.scale(2).as_const(), Some(6));
    }

    #[test]
    fn display_rendering() {
        let e = LinExpr::atom(count(0, 1))
            .scale(2)
            .unwrap()
            .add_k(3)
            .unwrap();
        assert_eq!(format!("{e}"), "2*|p0.c1| + 3");
        assert_eq!(format!("{}", SymBound::Omega), "ω");
        let r = RawExpr::var(1).sub(&RawExpr::var(0)).unwrap();
        assert_eq!(r.render(&|p| format!("p{p}")), "-p0 + p1");
    }
}
