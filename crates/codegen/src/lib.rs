//! # perceus-codegen
//!
//! The native backend: translates a [`Compiled`] λ¹ program into a
//! standalone Rust module — one Rust function per λ¹ function, with the
//! abstract machine's instruction stream written out as straight-line
//! code. Every `dup`/`drop`/`alloc`/`alloc_into`/`is_unique` the
//! machine would execute appears as an explicit call against the *same*
//! [`perceus_runtime::Heap`], in the same order, and every machine step
//! is counted — so a native run produces **bit-identical**
//! [`perceus_runtime::Stats`] schedule counters
//! ([`perceus_runtime::SCHEDULE_KEYS`]) to an interpreted run. What
//! changes is only the execution engine: interpreter dispatch (the
//! `step_loop` match) is compiled away, which is how Perceus itself is
//! evaluated (Koka compiles to C; "Counting Immutable Beans" compiles
//! the same discipline into Lean's native runtime).
//!
//! The pipeline is *emit → compile → run*:
//!
//! 1. [`emit_batch`] renders any number of compiled programs into one
//!    Rust source file (a `main.rs` with a fixed runtime shim and one
//!    module per program);
//! 2. [`build_programs`] writes it as a tiny cargo project under
//!    `target/native/` (path-dependencies on `perceus-runtime` and
//!    `perceus-core`, built `--offline`) and compiles it with the
//!    already-installed toolchain, caching the binary by a content hash
//!    of the generated source *and* the runtime/core crate sources;
//! 3. [`NativeBin::run`] executes one program in a subprocess and
//!    parses its single-line JSON report (result value, `println`
//!    output, the 18 schedule counters, leaked blocks, wall time).
//!
//! Batching matters: the machine-vs-native differential gate runs 13
//! workloads plus a 100-program fuzz leg, and each batch costs exactly
//! one `cargo build`.
//!
//! ## What the native backend does not do
//!
//! By design (documented limits, see `docs/CODEGEN.md`):
//!
//! * **No mid-run suspension.** The machine's resumable
//!   [`perceus_runtime::Execution`] checkpoints its explicit frame
//!   stack; native frames live on the Rust call stack and cannot be
//!   parked. Budgeted/resumable execution must use the machine —
//!   drivers reject it with [`NativeError::Unsupported`].
//! * **Reference-counting heaps only.** The tracing-GC mode needs root
//!   enumeration of the machine's environments, and the arena mode is a
//!   leak baseline; both stay interpreter-only.
//! * **Single-threaded.** One subprocess, one heap, no shared segment.

mod emit;
mod project;
mod report;
mod shim;

pub use emit::{emit_batch, emit_module};
pub use project::{build_programs, build_source, native_workdir, NativeBin};
pub use report::NativeReport;
pub use shim::SHIM_SOURCE;

use perceus_runtime::code::Compiled;
use std::fmt;

/// An error from the native backend's emit/compile/run pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NativeError {
    /// The program's executable IR contains something the emitter
    /// cannot translate (an internal invariant violation — the pass
    /// pipeline never produces these).
    Emit(String),
    /// A feature the native backend rejects by design (suspension,
    /// non-RC reclaim modes); the machine supports it, use that.
    Unsupported(String),
    /// `cargo build` of the generated project failed.
    Build(String),
    /// The generated executor subprocess failed to run or died.
    Subprocess(String),
    /// The subprocess report could not be parsed.
    Report(String),
    /// Filesystem trouble while writing the generated project.
    Io(String),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::Emit(m) => write!(f, "codegen emit: {m}"),
            NativeError::Unsupported(m) => write!(f, "native backend: {m}"),
            NativeError::Build(m) => write!(f, "native build: {m}"),
            NativeError::Subprocess(m) => write!(f, "native executor: {m}"),
            NativeError::Report(m) => write!(f, "native report: {m}"),
            NativeError::Io(m) => write!(f, "native io: {m}"),
        }
    }
}

impl std::error::Error for NativeError {}

impl From<std::io::Error> for NativeError {
    fn from(e: std::io::Error) -> Self {
        NativeError::Io(e.to_string())
    }
}

/// Emits and compiles a batch of programs, returning the executor
/// binary. The names must be unique; each becomes the `--prog` key the
/// subprocess dispatches on.
pub fn build(programs: &[(String, &Compiled)]) -> Result<NativeBin, NativeError> {
    build_programs(programs)
}
