//! The fixed runtime shim embedded at the top of every generated
//! executor. It owns the *non-program* halves of the machine that
//! generated code still needs — the heap handle, the primitive
//! operations of `eval_prim`, constructor dispatch, result rendering
//! (the machine's `DeepValue` display), and the subprocess `main` that
//! prints one JSON report line on stdout.
//!
//! Everything here is a verbatim mirror of `perceus-runtime`'s machine:
//! same heap calls in the same order, same error messages, same
//! `run → render → drop result → read stats` sequence as the suite's
//! `run_workload`. The only machine feature deliberately absent is the
//! resumable frame stack (budgeted suspension) — generated code runs on
//! the Rust call stack and cannot park.

/// Source of the `mod shim { ... }` block, spliced into every generated
/// `main.rs` by [`crate::emit_batch`].
pub const SHIM_SOURCE: &str = r##"/// Fixed runtime bridge: heap handle, primitives, dispatch helpers,
/// result rendering, and the subprocess driver.
mod shim {
    pub use perceus_runtime::heap::{BlockTag, Heap, LamId, ReclaimMode};
    pub use perceus_runtime::value::{Addr, Value};
    pub use perceus_runtime::{RuntimeError, SCHEDULE_KEYS};
    use perceus_core::ir::TypeTable;
    pub use perceus_core::ir::{CtorId, FunId};

    /// One generated program, as registered in the executor binary.
    pub struct Program {
        pub name: &'static str,
        pub run: fn(&mut Rt, &[Value]) -> Result<Value, RuntimeError>,
        pub ctor_names: &'static [&'static str],
    }

    /// The per-run state generated functions thread through: the same
    /// `Heap` the interpreter uses, plus the `println` output stream.
    pub struct Rt {
        pub heap: Heap,
        pub output: Vec<i64>,
    }

    impl Rt {
        pub fn new() -> Rt {
            Rt {
                heap: Heap::new(ReclaimMode::Rc),
                output: Vec::new(),
            }
        }

        /// One abstract-machine step. The interpreter charges exactly
        /// one per `step_loop` iteration; generated code charges one at
        /// every cur-position node, which is the same thing.
        #[inline(always)]
        pub fn step(&mut self) {
            self.heap.stats.steps += 1;
        }
    }

    // ---- primitives (verbatim mirrors of the machine's eval_prim) --

    fn int(v: &Value) -> Result<i64, RuntimeError> {
        v.as_int()
            .ok_or_else(|| RuntimeError::TypeMismatch(format!("expected an integer, got {v}")))
    }

    fn boolean(b: bool) -> Value {
        Value::Enum(if b { TypeTable::TRUE } else { TypeTable::FALSE })
    }

    fn value_eq(a: &Value, b: &Value) -> Result<bool, RuntimeError> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(x == y),
            (Value::Enum(x), Value::Enum(y)) => Ok(x == y),
            (Value::Unit, Value::Unit) => Ok(true),
            _ => Err(RuntimeError::TypeMismatch(format!(
                "== on non-primitive values {a} and {b}"
            ))),
        }
    }

    fn ref_addr(v: &Value) -> Result<Addr, RuntimeError> {
        v.addr()
            .ok_or_else(|| RuntimeError::TypeMismatch(format!("expected a reference, got {v}")))
    }

    pub fn prim_add(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.wrapping_add(int(&b)?)))
    }

    pub fn prim_sub(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.wrapping_sub(int(&b)?)))
    }

    pub fn prim_mul(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.wrapping_mul(int(&b)?)))
    }

    pub fn prim_div(a: Value, b: Value) -> Result<Value, RuntimeError> {
        // Divisor first: the machine reports division-by-zero even when
        // the numerator is not an integer.
        let d = int(&b)?;
        if d == 0 {
            return Err(RuntimeError::DivisionByZero);
        }
        Ok(Value::Int(int(&a)?.wrapping_div(d)))
    }

    pub fn prim_rem(a: Value, b: Value) -> Result<Value, RuntimeError> {
        let d = int(&b)?;
        if d == 0 {
            return Err(RuntimeError::DivisionByZero);
        }
        Ok(Value::Int(int(&a)?.wrapping_rem(d)))
    }

    pub fn prim_neg(a: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.wrapping_neg()))
    }

    pub fn prim_lt(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(int(&a)? < int(&b)?))
    }

    pub fn prim_le(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(int(&a)? <= int(&b)?))
    }

    pub fn prim_gt(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(int(&a)? > int(&b)?))
    }

    pub fn prim_ge(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(int(&a)? >= int(&b)?))
    }

    pub fn prim_eq(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(value_eq(&a, &b)?))
    }

    pub fn prim_ne(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(boolean(!value_eq(&a, &b)?))
    }

    pub fn prim_min(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.min(int(&b)?)))
    }

    pub fn prim_max(a: Value, b: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Int(int(&a)?.max(int(&b)?)))
    }

    pub fn prim_ref_new(rt: &mut Rt, v: Value) -> Result<Value, RuntimeError> {
        Ok(Value::Ref(rt.heap.alloc_slice(BlockTag::MutRef, &[v])))
    }

    pub fn prim_ref_get(rt: &mut Rt, r: Value) -> Result<Value, RuntimeError> {
        // §2.7.3: read, retain the content, release the ref.
        let addr = ref_addr(&r)?;
        let content = rt.heap.view(addr)?.fields[0];
        rt.heap.dup(content)?;
        rt.heap.drop_value(r)?;
        Ok(content)
    }

    pub fn prim_ref_set(rt: &mut Rt, r: Value, v: Value) -> Result<Value, RuntimeError> {
        let addr = ref_addr(&r)?;
        let block = rt.heap.block_mut(addr)?;
        if block.tag != BlockTag::MutRef {
            return Err(RuntimeError::TypeMismatch(":= on a non-ref".into()));
        }
        let old = std::mem::replace(&mut block.fields[0], v);
        rt.heap.drop_value(old)?;
        rt.heap.drop_value(r)?;
        Ok(Value::Unit)
    }

    pub fn prim_tshare(rt: &mut Rt, v: Value) -> Result<Value, RuntimeError> {
        rt.heap.tshare(v)?;
        rt.heap.drop_value(v)?;
        Ok(Value::Unit)
    }

    pub fn prim_println(rt: &mut Rt, v: Value) -> Result<Value, RuntimeError> {
        let n = match v {
            Value::Int(i) => i,
            Value::Unit => 0,
            other => {
                return Err(RuntimeError::TypeMismatch(format!(
                    "println of non-integer {other}"
                )))
            }
        };
        rt.output.push(n);
        Ok(Value::Unit)
    }

    // ---- dispatch helpers (select_arm / prepare_* error paths) -----

    /// Constructor dispatch for `match` — the scrutinee half of the
    /// machine's `select_arm`.
    pub fn ctor_of(heap: &Heap, v: Value) -> Result<(u32, Option<Addr>), RuntimeError> {
        match v {
            Value::Enum(c) => Ok((c.0, None)),
            Value::Ref(a) => {
                let block = heap.view(a)?;
                match block.tag {
                    BlockTag::Ctor(c) => Ok((c.0, Some(a))),
                    _ => Err(RuntimeError::TypeMismatch(
                        "match on a non-constructor block".into(),
                    )),
                }
            }
            other => Err(RuntimeError::TypeMismatch(format!(
                "match on non-constructor value {other}"
            ))),
        }
    }

    pub fn fun_arity(name: &str, want: usize, got: usize) -> RuntimeError {
        RuntimeError::TypeMismatch(format!("{name} expects {want} arguments, got {got}"))
    }

    pub fn closure_arity(want: usize, got: usize) -> RuntimeError {
        RuntimeError::TypeMismatch(format!("closure expects {want} arguments, got {got}"))
    }

    pub fn non_function_block() -> RuntimeError {
        RuntimeError::TypeMismatch("application of a non-function block".into())
    }

    pub fn apply_non_function(v: Value) -> RuntimeError {
        RuntimeError::TypeMismatch(format!("application of non-function value {v}"))
    }

    pub fn bad_reuse_token(v: Value) -> RuntimeError {
        RuntimeError::TypeMismatch(format!("constructor reuse argument is not a token: {v}"))
    }

    pub fn no_arm(names: &[&str], ctor: u32) -> RuntimeError {
        RuntimeError::MatchFailure(format!(
            "no arm for constructor {} ({:?})",
            names.get(ctor as usize).copied().unwrap_or("?"),
            CtorId(ctor)
        ))
    }

    pub fn unknown_fun(g: u32) -> RuntimeError {
        RuntimeError::Internal(format!("unknown function id {g}"))
    }

    pub fn unknown_lam(l: u32) -> RuntimeError {
        RuntimeError::Internal(format!("unknown lambda id {l}"))
    }

    // ---- result rendering (the machine's DeepValue display) --------

    fn ctor_name<'a>(names: &'a [&'a str], c: CtorId) -> &'a str {
        names.get(c.0 as usize).copied().unwrap_or("?")
    }

    /// Renders a result exactly as `DeepValue`'s `Display` would after
    /// `read_back`: `()`, integers, `Name(f1, f2)` (no parens when
    /// nullary), `<fun>` for closures and globals, `ref(v)`, `<weak>`.
    pub fn render(heap: &Heap, names: &[&str], v: Value) -> Result<String, RuntimeError> {
        let mut out = String::new();
        render_into(heap, names, v, &mut out)?;
        Ok(out)
    }

    fn render_into(
        heap: &Heap,
        names: &[&str],
        v: Value,
        out: &mut String,
    ) -> Result<(), RuntimeError> {
        match v {
            Value::Unit | Value::Token(_) => out.push_str("()"),
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::Enum(c) => out.push_str(ctor_name(names, c)),
            Value::Global(_) => out.push_str("<fun>"),
            Value::Weak(_) => out.push_str("<weak>"),
            Value::Ref(a) => {
                let b = heap.view(a)?;
                match b.tag {
                    BlockTag::Ctor(c) => {
                        out.push_str(ctor_name(names, c));
                        if !b.fields.is_empty() {
                            out.push('(');
                            for (i, f) in b.fields.iter().enumerate() {
                                if i > 0 {
                                    out.push_str(", ");
                                }
                                render_into(heap, names, *f, out)?;
                            }
                            out.push(')');
                        }
                    }
                    BlockTag::Closure(_) => out.push_str("<fun>"),
                    BlockTag::MutRef => {
                        out.push_str("ref(");
                        render_into(heap, names, b.fields[0], out)?;
                        out.push(')');
                    }
                }
            }
        }
        Ok(())
    }

    // ---- JSON report -----------------------------------------------

    fn escape_json(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn push_output(out: &mut String, output: &[i64]) {
        out.push_str("\"output\":[");
        for (i, n) in output.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str("],");
    }

    /// Counters, leaked blocks, wall time — shared tail of success and
    /// error reports (errors carry counters too: the differential fuzz
    /// leg compares schedules even on failing programs).
    fn push_tail(out: &mut String, rt: &Rt, wall_ns: u64) {
        out.push_str("\"counters\":{");
        let vals = rt.heap.stats.schedule_values();
        for (i, (k, v)) in SCHEDULE_KEYS.iter().zip(vals.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str(&format!(
            "}},\"leaked_blocks\":{},\"wall_ns\":{}}}",
            rt.heap.live_blocks(),
            wall_ns
        ));
    }

    fn error_json(rt: &Rt, e: &RuntimeError, wall_ns: u64) -> String {
        let mut out = format!(
            "{{\"ok\":false,\"error\":\"{}\",\"code\":\"{}\",",
            escape_json(&e.to_string()),
            e.code()
        );
        push_output(&mut out, &rt.output);
        push_tail(&mut out, rt, wall_ns);
        out
    }

    /// Runs one program and renders its report. Mirrors the suite
    /// driver's order: run, render the value, drop the result (which
    /// moves the schedule counters), then read stats and leak count.
    fn execute(p: &Program, n: i64) -> String {
        let mut rt = Rt::new();
        let start = std::time::Instant::now();
        let result = (p.run)(&mut rt, &[Value::Int(n)]);
        let wall_ns = start.elapsed().as_nanos() as u64;
        match result {
            Ok(v) => {
                let value = match render(&rt.heap, p.ctor_names, v) {
                    Ok(s) => s,
                    Err(e) => return error_json(&rt, &e, wall_ns),
                };
                if let Err(e) = rt.heap.drop_value(v) {
                    return error_json(&rt, &e, wall_ns);
                }
                let mut out = format!("{{\"ok\":true,\"value\":\"{}\",", escape_json(&value));
                push_output(&mut out, &rt.output);
                push_tail(&mut out, &rt, wall_ns);
                out
            }
            Err(e) => error_json(&rt, &e, wall_ns),
        }
    }

    /// The executor entry point: `--prog NAME --n INT` (and `--list`).
    /// Runs on a 512 MiB stack — generated code recurses on the Rust
    /// stack where the machine grew its frame vector.
    pub fn main_with(programs: &'static [Program]) -> i32 {
        let mut prog: Option<String> = None;
        let mut n: i64 = 0;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--prog" => prog = args.next(),
                "--n" => {
                    let Some(v) = args.next().and_then(|s| s.parse::<i64>().ok()) else {
                        eprintln!("--n needs an integer");
                        return 2;
                    };
                    n = v;
                }
                "--list" => {
                    for p in programs {
                        println!("{}", p.name);
                    }
                    return 0;
                }
                other => {
                    eprintln!("unknown argument `{other}`");
                    return 2;
                }
            }
        }
        let Some(name) = prog else {
            eprintln!("--prog is required");
            return 2;
        };
        let Some(p) = programs.iter().find(|p| p.name == name) else {
            eprintln!("unknown program `{name}`; try --list");
            return 2;
        };
        let handle = std::thread::Builder::new()
            .stack_size(512 << 20)
            .spawn(move || execute(p, n))
            .expect("spawn executor thread");
        match handle.join() {
            Ok(json) => {
                println!("{json}");
                0
            }
            Err(_) => {
                eprintln!("executor thread panicked");
                1
            }
        }
    }
}
"##;
