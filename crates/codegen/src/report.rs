//! Parser for the executor's single-line JSON report (hand-rolled, as
//! elsewhere in this workspace — the bench counter gate and the serving
//! layer already parse their own JSON without a dependency).

use crate::NativeError;

/// One program's report from the native executor subprocess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeReport {
    /// Whether the run finished with a value.
    pub ok: bool,
    /// Rendered result value (the machine's `DeepValue` display) when
    /// `ok`.
    pub value: Option<String>,
    /// Error display when not `ok`.
    pub error: Option<String>,
    /// Stable error code (`RuntimeError::code`) when not `ok`.
    pub code: Option<String>,
    /// The `println` output stream.
    pub output: Vec<i64>,
    /// The 18 schedule counters, in report order (the shim writes them
    /// in `SCHEDULE_KEYS` order).
    pub counters: Vec<(String, u64)>,
    /// Live blocks left after dropping the result (0 = garbage-free).
    pub leaked_blocks: u64,
    /// Wall time of the run itself (excludes render/drop/report).
    pub wall_ns: u64,
}

impl NativeReport {
    /// The counters as a fixed array, in the order they were reported.
    /// Errors if the report did not carry exactly 18.
    pub fn counter_values(&self) -> Result<[u64; 18], NativeError> {
        if self.counters.len() != 18 {
            return Err(NativeError::Report(format!(
                "expected 18 counters, got {}",
                self.counters.len()
            )));
        }
        let mut out = [0u64; 18];
        for (slot, (_, v)) in out.iter_mut().zip(self.counters.iter()) {
            *slot = *v;
        }
        Ok(out)
    }
}

/// Parses one report line.
pub fn parse_report(line: &str) -> Result<NativeReport, NativeError> {
    let mut p = Parser::new(line);
    let mut report = NativeReport {
        ok: false,
        value: None,
        error: None,
        code: None,
        output: Vec::new(),
        counters: Vec::new(),
        leaked_blocks: 0,
        wall_ns: 0,
    };
    p.expect('{')?;
    let mut first = true;
    loop {
        p.skip_ws();
        if p.peek() == Some('}') {
            p.next();
            break;
        }
        if !first {
            p.expect(',')?;
        }
        first = false;
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "ok" => report.ok = p.boolean()?,
            "value" => report.value = Some(p.string()?),
            "error" => report.error = Some(p.string()?),
            "code" => report.code = Some(p.string()?),
            "output" => report.output = p.int_array()?,
            "counters" => report.counters = p.counter_object()?,
            "leaked_blocks" => report.leaked_blocks = p.uint()?,
            "wall_ns" => report.wall_ns = p.uint()?,
            other => {
                return Err(NativeError::Report(format!(
                    "unknown report field `{other}`"
                )))
            }
        }
    }
    Ok(report)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().peekable(),
            src,
        }
    }

    fn fail(&self, what: &str) -> NativeError {
        NativeError::Report(format!("{what} in report {:?}", self.src))
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), NativeError> {
        self.skip_ws();
        if self.next() == Some(c) {
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{c}`")))
        }
    }

    fn string(&mut self) -> Result<String, NativeError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.fail("bad escape")),
                },
                Some(c) => out.push(c),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn boolean(&mut self) -> Result<bool, NativeError> {
        match self.peek() {
            Some('t') => {
                for expected in "true".chars() {
                    if self.next() != Some(expected) {
                        return Err(self.fail("expected `true`"));
                    }
                }
                Ok(true)
            }
            Some('f') => {
                for expected in "false".chars() {
                    if self.next() != Some(expected) {
                        return Err(self.fail("expected `false`"));
                    }
                }
                Ok(false)
            }
            _ => Err(self.fail("expected a boolean")),
        }
    }

    fn int(&mut self) -> Result<i64, NativeError> {
        self.skip_ws();
        let mut s = String::new();
        if self.peek() == Some('-') {
            s.push('-');
            self.next();
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.next().unwrap());
        }
        s.parse().map_err(|_| self.fail("expected an integer"))
    }

    fn uint(&mut self) -> Result<u64, NativeError> {
        self.skip_ws();
        let mut s = String::new();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.next().unwrap());
        }
        s.parse()
            .map_err(|_| self.fail("expected an unsigned integer"))
    }

    fn int_array(&mut self) -> Result<Vec<i64>, NativeError> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.next();
            return Ok(out);
        }
        loop {
            out.push(self.int()?);
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some(']') => return Ok(out),
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn counter_object(&mut self) -> Result<Vec<(String, u64)>, NativeError> {
        self.expect('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.next();
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let v = self.uint()?;
            out.push((key, v));
            self.skip_ws();
            match self.next() {
                Some(',') => continue,
                Some('}') => return Ok(out),
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_success_report() {
        let r = parse_report(
            r#"{"ok":true,"value":"Cons(1, Nil)","output":[1,-2,3],"counters":{"allocations":10,"steps":42},"leaked_blocks":0,"wall_ns":12345}"#,
        )
        .unwrap();
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some("Cons(1, Nil)"));
        assert_eq!(r.output, vec![1, -2, 3]);
        assert_eq!(
            r.counters,
            vec![("allocations".into(), 10), ("steps".into(), 42)]
        );
        assert_eq!(r.leaked_blocks, 0);
        assert_eq!(r.wall_ns, 12345);
    }

    #[test]
    fn parses_error_report_with_escapes() {
        let r = parse_report(
            r#"{"ok":false,"error":"abort: \"boom\"","code":"abort","output":[],"counters":{},"leaked_blocks":3,"wall_ns":7}"#,
        )
        .unwrap();
        assert!(!r.ok);
        assert_eq!(r.error.as_deref(), Some("abort: \"boom\""));
        assert_eq!(r.code.as_deref(), Some("abort"));
        assert_eq!(r.leaked_blocks, 3);
    }

    #[test]
    fn counter_values_requires_all_18() {
        let r = parse_report(
            r#"{"ok":true,"value":"()","output":[],"counters":{"a":1},"leaked_blocks":0,"wall_ns":0}"#,
        )
        .unwrap();
        assert!(r.counter_values().is_err());
    }

    #[test]
    fn rejects_unknown_fields_and_junk() {
        assert!(parse_report(r#"{"nope":1}"#).is_err());
        assert!(parse_report("not json").is_err());
    }
}
