//! The build driver: wraps emitted source in a minimal cargo project
//! under `target/native/` and compiles it with the workspace's own
//! toolchain, entirely offline (the only dependencies are path deps on
//! `perceus-runtime` and `perceus-core`).
//!
//! Binaries are **content-addressed**: the package name embeds a hash
//! of the emitted source, the generated manifest, and every source file
//! of the runtime and core crates. The last part matters in CI, where
//! `target/` is cached across pushes keyed only on `Cargo.toml` hashes
//! — a runtime change must roll the native binary's identity or a stale
//! executor could answer the differential gate.
//!
//! The generated project sets `CARGO_TARGET_DIR=target/native` (its own
//! lock file, so building from inside an outer `cargo test` cannot
//! deadlock on the workspace target-dir lock) and carries an empty
//! `[workspace]` table (so cargo does not claim it for the enclosing
//! workspace).

use crate::emit::emit_batch;
use crate::report::{parse_report, NativeReport};
use crate::NativeError;
use perceus_runtime::code::Compiled;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A compiled executor binary holding one or more generated programs.
#[derive(Debug, Clone)]
pub struct NativeBin {
    path: PathBuf,
}

impl NativeBin {
    /// Path of the executor binary (content-addressed under
    /// `target/native/release/`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Runs one program (`--prog name --n arg`) in a subprocess and
    /// parses its JSON report.
    pub fn run(&self, prog: &str, n: i64) -> Result<NativeReport, NativeError> {
        let out = Command::new(&self.path)
            .args(["--prog", prog, "--n", &n.to_string()])
            .output()
            .map_err(|e| NativeError::Subprocess(format!("spawn {}: {e}", self.path.display())))?;
        if !out.status.success() {
            return Err(NativeError::Subprocess(format!(
                "executor exited with {}: {}",
                out.status,
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with('{'))
            .ok_or_else(|| NativeError::Report(format!("no JSON report on stdout: {stdout:?}")))?;
        parse_report(line)
    }

    /// The program names the executor knows (`--list`).
    pub fn list(&self) -> Result<Vec<String>, NativeError> {
        let out = Command::new(&self.path)
            .arg("--list")
            .output()
            .map_err(|e| NativeError::Subprocess(format!("spawn {}: {e}", self.path.display())))?;
        Ok(String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(str::to_string)
            .collect())
    }
}

/// Emits, writes, and compiles a batch of programs; returns the cached
/// binary if an identical batch (and identical runtime/core sources)
/// was built before.
pub fn build_programs(programs: &[(String, &Compiled)]) -> Result<NativeBin, NativeError> {
    let source = emit_batch(programs)?;
    build_source(&source)
}

/// Compiles already-emitted executor source (see [`emit_batch`]).
pub fn build_source(source: &str) -> Result<NativeBin, NativeError> {
    let root = repo_root();
    let nroot = native_workdir();

    let manifest = manifest_for("PKG", &root); // hashed with a placeholder name
    let mut h = Fnv::new();
    h.update(source.as_bytes());
    h.update(manifest.as_bytes());
    hash_crate_sources(&mut h, &root.join("crates").join("core"))?;
    hash_crate_sources(&mut h, &root.join("crates").join("runtime"))?;
    let pkg = format!("pnative_{:012x}", h.finish() & 0xffff_ffff_ffff);

    let bin = nroot.join("release").join(&pkg);
    if bin.is_file() {
        return Ok(NativeBin { path: bin });
    }

    let proj = nroot.join("gen").join(&pkg);
    fs::create_dir_all(proj.join("src"))?;
    fs::write(proj.join("Cargo.toml"), manifest_for(&pkg, &root))?;
    fs::write(proj.join("src").join("main.rs"), source)?;

    let out = Command::new("cargo")
        .args(["build", "--release", "--offline", "--quiet"])
        .current_dir(&proj)
        .env("CARGO_TARGET_DIR", &nroot)
        .output()
        .map_err(|e| NativeError::Build(format!("spawn cargo: {e}")))?;
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        let tail: Vec<&str> = stderr.lines().rev().take(40).collect();
        let tail: Vec<&str> = tail.into_iter().rev().collect();
        return Err(NativeError::Build(format!(
            "cargo build failed for {} ({}):\n{}",
            pkg,
            proj.display(),
            tail.join("\n")
        )));
    }
    if !bin.is_file() {
        return Err(NativeError::Build(format!(
            "cargo build succeeded but {} is missing",
            bin.display()
        )));
    }
    Ok(NativeBin { path: bin })
}

/// Where generated projects and their artifacts live:
/// `<repo>/target/native` (its own cargo target dir and lock).
pub fn native_workdir() -> PathBuf {
    repo_root().join("target").join("native")
}

fn repo_root() -> PathBuf {
    // crates/codegen/../.. — the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("codegen crate lives two levels under the workspace root")
        .to_path_buf()
}

fn manifest_for(pkg: &str, root: &Path) -> String {
    let runtime = root.join("crates").join("runtime");
    let core = root.join("crates").join("core");
    format!(
        "[package]\n\
         name = \"{pkg}\"\n\
         version = \"0.0.0\"\n\
         edition = \"2021\"\n\
         publish = false\n\
         \n\
         # Standalone: do not join the enclosing workspace.\n\
         [workspace]\n\
         \n\
         [dependencies]\n\
         perceus-runtime = {{ path = \"{}\" }}\n\
         perceus-core = {{ path = \"{}\" }}\n\
         \n\
         [profile.release]\n\
         debug = false\n",
        runtime.display(),
        core.display()
    )
}

/// Hashes a dependency crate's manifest and every `.rs` file under its
/// `src/`, in sorted path order.
fn hash_crate_sources(h: &mut Fnv, krate: &Path) -> Result<(), NativeError> {
    let manifest = krate.join("Cargo.toml");
    h.update(manifest.to_string_lossy().as_bytes());
    h.update(&fs::read(&manifest)?);
    let mut files = Vec::new();
    collect_rs(&krate.join("src"), &mut files)?;
    files.sort();
    for f in files {
        h.update(f.to_string_lossy().as_bytes());
        h.update(&fs::read(&f)?);
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), NativeError> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// FNV-1a 64 — tiny, deterministic, dependency-free. Collision risk is
/// irrelevant here: a collision only means reusing a binary built from
/// different source, and the gen dir keeps the source for inspection.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
