//! End-to-end differential tests: emit → cargo build → run the native
//! executor as a subprocess → compare against the abstract machine.
//!
//! These are the in-repo version of the CI `codegen-gate` job, scoped
//! down to stay fast under `cargo test`: two workloads plus a small
//! fuzz batch instead of all thirteen and 100 programs. The executor's
//! own build uses `CARGO_TARGET_DIR=target/native` (its own lock), so
//! nesting a cargo build inside the outer `cargo test` cannot
//! deadlock.

use perceus_suite::native::{fuzz_native, NativeHarness};
use perceus_suite::Strategy;

/// Value, println output, leak count, and all 18 schedule counters
/// bit-identical on a reuse-heavy workload and an error-path workload.
#[test]
fn workloads_are_bit_identical() {
    let harness = NativeHarness::for_workloads(&["map", "exn"], Strategy::Perceus).expect("build");
    for name in ["map", "exn"] {
        let n = perceus_suite::workload(name).unwrap().test_n;
        let check = harness.check(name, n).expect("run");
        assert!(
            check.passed(),
            "{name} diverged:\n  {}",
            check.mismatches.join("\n  ")
        );
        assert!(check.machine.ok, "{name} machine run failed");
        assert_eq!(check.native.leaked_blocks, 0, "{name} leaked");
    }
}

/// The no-opt schedule (no reuse, no specialization — far more RC
/// traffic) is also reproduced exactly: the gate covers the translation
/// of the *unoptimized* instruction stream too.
#[test]
fn no_opt_schedule_is_bit_identical() {
    let harness = NativeHarness::for_workloads(&["map"], Strategy::PerceusNoOpt).expect("build");
    let check = harness.check("map", 100).expect("run");
    assert!(
        check.passed(),
        "map (no-opt) diverged:\n  {}",
        check.mismatches.join("\n  ")
    );
}

/// A small differential fuzz batch: generated programs (including ones
/// that abort or error at runtime) agree with the machine on outcome,
/// error code, and counters-at-failure.
#[test]
fn generated_programs_are_bit_identical() {
    let report = fuzz_native(0xC0DE6E, 8, 28, 5).expect("fuzz");
    assert!(
        report.failures.is_empty(),
        "{} of {} generated programs diverged; first:\n  {}",
        report.failures.len(),
        report.iters,
        report.failures[0].mismatches.join("\n  ")
    );
}
