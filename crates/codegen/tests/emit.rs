//! Unit tests of the emitter's translation decisions: reuse-token
//! placement, skip masks, drop-specialization arms, tail loops, and
//! the rejection paths. These inspect the emitted *text*; the e2e
//! differential tests (`tests/native_exec.rs`) prove the behaviour.

use perceus_codegen::{emit_batch, emit_module, NativeError};
use perceus_suite::{compile_workload, workload, Strategy};

fn emit_as(name: &str, strategy: Strategy) -> String {
    let w = workload(name).expect("registered workload");
    let compiled = compile_workload(w.source, strategy).expect("compiles");
    emit_module(0, name, &compiled).expect("emits")
}

fn emit(name: &str) -> String {
    emit_as(name, Strategy::Perceus)
}

/// Reuse tokens (§2.4) survive into the generated code: the paired
/// constructor becomes a three-arm match on the token — `alloc_into`
/// when a cell was reclaimed, a fresh allocation when the token is
/// null, an error on a non-token value. Under full Perceus, drop
/// specialization turns the drop site into `is_unique`/`claim`
/// branches; with reuse on but drop specialization off, the raw
/// `DropReuse` instruction survives and must lower to `drop_reuse`.
#[test]
fn reuse_tokens_are_emitted() {
    let src = emit("map");
    assert!(
        src.contains("rt.heap.claim("),
        "specialized token claim:\n{src}"
    );
    assert!(src.contains("rt.heap.alloc_into("), "reuse alloc:\n{src}");
    assert!(
        src.contains("Value::Token(None) =>"),
        "null-token fallback to a fresh allocation:\n{src}"
    );
    assert!(
        src.contains("shim::bad_reuse_token"),
        "non-token rejection arm:\n{src}"
    );

    let config =
        perceus_core::passes::PassConfig::for_strategy(perceus_core::passes::RcStrategy::Perceus)
            .with_drop_spec(false);
    let w = workload("map").unwrap();
    let compiled = perceus_suite::compile_with_config(w.source, config).unwrap();
    let unspecialized = emit_module(0, "map", &compiled).unwrap();
    assert!(
        unspecialized.contains("rt.heap.drop_reuse("),
        "unspecialized DropReuse lowers to drop_reuse:\n{unspecialized}"
    );
}

/// Reuse *specialization* (§2.5) skip masks become static tables passed
/// to `alloc_into`, so the native executor skips (and counts) exactly
/// the same field writes as the machine.
#[test]
fn skip_masks_become_static_tables() {
    let src = emit("rbtree");
    assert!(
        src.contains("static SKIP_0: [bool;"),
        "deduplicated skip mask statics:\n{src}"
    );
    assert!(
        src.contains("&SKIP_0)?"),
        "mask passed to alloc_into:\n{src}"
    );
}

/// Drop specialization lowers `drop` into `IsUnique`/`Free`/`DecRef`
/// arms; each becomes the matching direct heap call so the counter
/// stream (`unique_tests`, `frees`, `decrefs`) is preserved.
#[test]
fn drop_specialization_arms_are_direct_heap_calls() {
    let src = emit("exn");
    assert!(src.contains("rt.heap.is_unique("), "IsUnique test:\n{src}");
    assert!(src.contains("rt.heap.free_cell("), "Free arm:\n{src}");
    assert!(src.contains("rt.heap.decref("), "DecRef arm:\n{src}");
}

/// Self-tail-calls compile to a `'tail` loop (env reset + continue),
/// not a Rust call — recursion depth stays O(1) where the machine's
/// frame replacement does the same.
#[test]
fn self_tail_calls_loop() {
    let src = emit("map");
    assert!(src.contains("'tail: loop {"), "loop header:\n{src}");
    assert!(src.contains("continue 'tail;"), "tail jump:\n{src}");
}

/// A program with no entry point cannot be an executor.
#[test]
fn missing_entry_is_rejected() {
    let w = workload("map").unwrap();
    let mut compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    compiled.entry = None;
    let err = emit_module(0, "map", &compiled).unwrap_err();
    assert!(matches!(err, NativeError::Emit(_)), "{err}");
    assert!(err.to_string().contains("entry"), "{err}");
}

/// Batch emission dispatches by name, so duplicates are ambiguous.
#[test]
fn duplicate_names_are_rejected() {
    let w = workload("map").unwrap();
    let compiled = compile_workload(w.source, Strategy::Perceus).unwrap();
    let err =
        emit_batch(&[("m".to_string(), &compiled), ("m".to_string(), &compiled)]).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}
