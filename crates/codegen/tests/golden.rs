//! Golden-file snapshot tests of the emitted Rust.
//!
//! The emitted module for a workload is a pure function of the compiled
//! program, so its exact text is a reviewable artifact: any emitter
//! change shows up as a diff against `tests/golden/*.rs.golden`. When a
//! change is intentional, regenerate with
//!
//! ```text
//! BLESS=1 cargo test -p perceus-codegen --test golden
//! ```
//!
//! and review the golden diff alongside the emitter diff. (The e2e
//! differential tests prove the *behaviour* is right; these prove the
//! *shape* of the code only changes when someone means it to.)

use perceus_codegen::emit_module;
use perceus_suite::{compile_workload, workload, Strategy};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.rs.golden"))
}

fn check_golden(name: &str) {
    let w = workload(name).expect("registered workload");
    let compiled = compile_workload(w.source, Strategy::Perceus).expect("compiles");
    let emitted = emit_module(0, name, &compiled).expect("emits");
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &emitted).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; run with BLESS=1 to create",
            path.display()
        )
    });
    assert_eq!(
        emitted,
        expected,
        "emitted Rust for `{name}` drifted from {}; if intentional, \
         regenerate with BLESS=1 and review the diff",
        path.display()
    );
}

/// `map` exercises the core translation: cons-list construction with
/// reuse tokens, skip masks from reuse specialization, and a
/// self-tail-recursive loop.
#[test]
fn map_module_matches_golden() {
    check_golden("map");
}

/// `exn` exercises the error path (`Abort`), `Match` arms over a
/// mixed-arity type, and drop specialization.
#[test]
fn exn_module_matches_golden() {
    check_golden("exn");
}
